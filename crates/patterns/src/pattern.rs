//! Functional test patterns — bounded sequences of vector cycles.

use crate::vector::{MemOp, TestVector};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Minimum pattern length in vector cycles.
///
/// §3 of the paper: "we define small test sequences in between 100 to 1000
/// vector cycles for each characterization measurement of a single trip
/// point", so that worst-case sequences can be pin-pointed precisely.
pub const MIN_PATTERN_LEN: usize = 100;

/// Maximum pattern length in vector cycles (see [`MIN_PATTERN_LEN`]).
pub const MAX_PATTERN_LEN: usize = 1000;

/// Error constructing a [`Pattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// The vector sequence was outside the 100–1000 cycle window of §3.
    Length(usize),
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::Length(n) => write!(
                f,
                "pattern has {n} cycles, outside the {MIN_PATTERN_LEN}..={MAX_PATTERN_LEN} window"
            ),
        }
    }
}

impl Error for PatternError {}

/// A functional test pattern: 100–1000 [`TestVector`] cycles.
///
/// Patterns are immutable once built; the device model and the feature
/// extractor both walk the same vector stream, which is what makes the
/// "trip point is test dependent" premise observable.
///
/// # Examples
///
/// ```
/// use cichar_patterns::{MemOp, Pattern, TestVector};
///
/// let vectors: Vec<TestVector> = (0..200u16)
///     .map(|i| TestVector::write(i, i.wrapping_mul(3)))
///     .collect();
/// let pattern = Pattern::new(vectors)?;
/// assert_eq!(pattern.len(), 200);
/// assert_eq!(pattern.count_of(MemOp::Write), 200);
/// # Ok::<(), cichar_patterns::PatternError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    vectors: Vec<TestVector>,
}

impl Pattern {
    /// Builds a pattern from a vector sequence.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::Length`] if the sequence is shorter than
    /// [`MIN_PATTERN_LEN`] or longer than [`MAX_PATTERN_LEN`].
    pub fn new(vectors: Vec<TestVector>) -> Result<Self, PatternError> {
        if !(MIN_PATTERN_LEN..=MAX_PATTERN_LEN).contains(&vectors.len()) {
            return Err(PatternError::Length(vectors.len()));
        }
        Ok(Self { vectors })
    }

    /// Builds a pattern, padding with NOP cycles up to [`MIN_PATTERN_LEN`]
    /// and truncating beyond [`MAX_PATTERN_LEN`].
    ///
    /// Generators use this so every recipe expands to a legal pattern.
    pub fn new_clamped(mut vectors: Vec<TestVector>) -> Self {
        vectors.truncate(MAX_PATTERN_LEN);
        while vectors.len() < MIN_PATTERN_LEN {
            vectors.push(TestVector::nop());
        }
        Self { vectors }
    }

    /// Number of vector cycles.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// A pattern is never empty (construction enforces ≥ 100 cycles).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The vector cycles in execution order.
    pub fn vectors(&self) -> &[TestVector] {
        &self.vectors
    }

    /// Iterator over the vector cycles.
    pub fn iter(&self) -> std::slice::Iter<'_, TestVector> {
        self.vectors.iter()
    }

    /// How many cycles perform the given operation.
    pub fn count_of(&self, op: MemOp) -> usize {
        self.vectors.iter().filter(|v| v.op == op).count()
    }

    /// Stable content hash of the pattern (FNV-1a over the vector stream).
    ///
    /// Used to deduplicate tests in the worst-case database without pulling
    /// in a hashing dependency.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for v in &self.vectors {
            mix(match v.op {
                MemOp::Write => 1,
                MemOp::Read => 2,
                MemOp::Nop => 3,
            });
            mix((v.address & 0xff) as u8);
            mix((v.address >> 8) as u8);
            mix((v.data & 0xff) as u8);
            mix((v.data >> 8) as u8);
        }
        h
    }
}

impl<'a> IntoIterator for &'a Pattern {
    type Item = &'a TestVector;
    type IntoIter = std::slice::Iter<'a, TestVector>;

    fn into_iter(self) -> Self::IntoIter {
        self.vectors.iter()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern[{} cycles: {}W/{}R/{}N]",
            self.len(),
            self.count_of(MemOp::Write),
            self.count_of(MemOp::Read),
            self.count_of(MemOp::Nop),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn writes(n: usize) -> Vec<TestVector> {
        (0..n).map(|i| TestVector::write(i as u16, 0)).collect()
    }

    #[test]
    fn rejects_out_of_window_lengths() {
        assert_eq!(Pattern::new(writes(99)), Err(PatternError::Length(99)));
        assert_eq!(Pattern::new(writes(1001)), Err(PatternError::Length(1001)));
        assert!(Pattern::new(writes(100)).is_ok());
        assert!(Pattern::new(writes(1000)).is_ok());
    }

    #[test]
    fn clamped_pads_with_nops() {
        let p = Pattern::new_clamped(writes(10));
        assert_eq!(p.len(), MIN_PATTERN_LEN);
        assert_eq!(p.count_of(MemOp::Write), 10);
        assert_eq!(p.count_of(MemOp::Nop), 90);
    }

    #[test]
    fn clamped_truncates_long_sequences() {
        let p = Pattern::new_clamped(writes(5000));
        assert_eq!(p.len(), MAX_PATTERN_LEN);
    }

    #[test]
    fn counts_partition_length() {
        let mut v = writes(150);
        v.extend((0..50).map(|i| TestVector::read(i as u16, 0)));
        let p = Pattern::new(v).expect("valid length");
        assert_eq!(
            p.count_of(MemOp::Write) + p.count_of(MemOp::Read) + p.count_of(MemOp::Nop),
            p.len()
        );
    }

    #[test]
    fn content_hash_distinguishes_patterns() {
        let a = Pattern::new(writes(100)).expect("valid");
        let mut vs = writes(100);
        vs[50].data = 1;
        let b = Pattern::new(vs).expect("valid");
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(
            a.content_hash(),
            Pattern::new(writes(100)).expect("valid").content_hash()
        );
    }

    #[test]
    fn display_reports_mix() {
        let p = Pattern::new_clamped(writes(120));
        assert_eq!(p.to_string(), "pattern[120 cycles: 120W/0R/0N]");
    }

    #[test]
    fn iteration_orders_match() {
        let p = Pattern::new(writes(100)).expect("valid");
        let via_iter: Vec<_> = p.iter().copied().collect();
        assert_eq!(via_iter.as_slice(), p.vectors());
    }

    #[test]
    fn error_message_names_window() {
        let msg = PatternError::Length(5).to_string();
        assert!(msg.contains("100..=1000"), "{msg}");
    }

    proptest! {
        #[test]
        fn clamped_always_in_window(n in 0usize..3000) {
            let p = Pattern::new_clamped(writes(n));
            prop_assert!(p.len() >= MIN_PATTERN_LEN && p.len() <= MAX_PATTERN_LEN);
        }

        #[test]
        fn hash_is_deterministic(n in 100usize..300) {
            let a = Pattern::new(writes(n)).unwrap();
            let b = Pattern::new(writes(n)).unwrap();
            prop_assert_eq!(a.content_hash(), b.content_hash());
        }
    }
}
