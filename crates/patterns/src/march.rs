//! Deterministic memory-test pattern generators.
//!
//! These are the "pre-defined deterministic tests" the paper contrasts its
//! method against (Table 1's *March Test / Deterministic* row): the classic
//! March algorithms plus checkerboard and walking-bit background tests from
//! the memory-test literature (Sharma, ref. \[16\]).
//!
//! Every generator operates on a contiguous `n`-address sub-array so the
//! resulting pattern fits §3's 100–1000 cycle window; `n` is clamped to keep
//! that guarantee.

use crate::pattern::Pattern;
use crate::vector::TestVector;
use serde::{Deserialize, Serialize};

/// Data backgrounds used by March elements: `0` is all-zeros, `1` all-ones.
const BG0: u16 = 0x0000;
const BG1: u16 = 0xFFFF;

/// Address direction of a March element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MarchDirection {
    /// Ascending address order (⇑).
    Up,
    /// Descending address order (⇓).
    Down,
}

/// One operation inside a March element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MarchOp {
    /// Read expecting the given background.
    Read(bool),
    /// Write the given background.
    Write(bool),
}

/// One March element: a direction and an operation list applied to every
/// address.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarchElement {
    /// Sweep direction.
    pub direction: MarchDirection,
    /// Operations applied per address, in order.
    pub ops: Vec<MarchOp>,
}

impl MarchElement {
    /// Creates an element.
    pub fn new(direction: MarchDirection, ops: Vec<MarchOp>) -> Self {
        Self { direction, ops }
    }
}

fn background(bit: bool) -> u16 {
    if bit {
        BG1
    } else {
        BG0
    }
}

/// Expands March elements over an `n`-address sub-array into a pattern.
///
/// The per-element cost is `n * ops.len()` cycles; callers size `n` so the
/// total lands in the 100–1000 window (the result is clamped regardless).
pub fn expand_march(elements: &[MarchElement], n: u16) -> Pattern {
    let mut vectors = Vec::new();
    for element in elements {
        let addrs: Vec<u16> = match element.direction {
            MarchDirection::Up => (0..n).collect(),
            MarchDirection::Down => (0..n).rev().collect(),
        };
        for addr in addrs {
            for op in &element.ops {
                vectors.push(match *op {
                    MarchOp::Write(bit) => TestVector::write(addr, background(bit)),
                    MarchOp::Read(bit) => TestVector::read(addr, background(bit)),
                });
            }
        }
    }
    Pattern::new_clamped(vectors)
}

/// March C−: `⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)`.
///
/// The standard production memory test — Table 1's deterministic baseline.
/// With `n = 64` the pattern is 640 cycles.
///
/// # Examples
///
/// ```
/// use cichar_patterns::march::march_c_minus;
///
/// let p = march_c_minus(64);
/// assert_eq!(p.len(), 640);
/// ```
pub fn march_c_minus(n: u16) -> Pattern {
    let n = clamp_n(n, 10);
    use MarchDirection::{Down, Up};
    use MarchOp::{Read, Write};
    expand_march(
        &[
            MarchElement::new(Up, vec![Write(false)]),
            MarchElement::new(Up, vec![Read(false), Write(true)]),
            MarchElement::new(Up, vec![Read(true), Write(false)]),
            MarchElement::new(Down, vec![Read(false), Write(true)]),
            MarchElement::new(Down, vec![Read(true), Write(false)]),
            MarchElement::new(Down, vec![Read(false)]),
        ],
        n,
    )
}

/// March X: `⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)` — 6n cycles.
pub fn march_x(n: u16) -> Pattern {
    let n = clamp_n(n, 6);
    use MarchDirection::{Down, Up};
    use MarchOp::{Read, Write};
    expand_march(
        &[
            MarchElement::new(Up, vec![Write(false)]),
            MarchElement::new(Up, vec![Read(false), Write(true)]),
            MarchElement::new(Down, vec![Read(true), Write(false)]),
            MarchElement::new(Down, vec![Read(false)]),
        ],
        n,
    )
}

/// March Y: `⇕(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); ⇕(r0)` — 8n cycles.
pub fn march_y(n: u16) -> Pattern {
    let n = clamp_n(n, 8);
    use MarchDirection::{Down, Up};
    use MarchOp::{Read, Write};
    expand_march(
        &[
            MarchElement::new(Up, vec![Write(false)]),
            MarchElement::new(Up, vec![Read(false), Write(true), Read(true)]),
            MarchElement::new(Down, vec![Read(true), Write(false), Read(false)]),
            MarchElement::new(Down, vec![Read(false)]),
        ],
        n,
    )
}

/// Checkerboard: write a physical checkerboard, read it back, then the
/// inverse — 4n cycles.
///
/// Cell `(row, col)` holds `0x5555` or `0xAAAA` depending on parity, the
/// classic inter-cell coupling background.
pub fn checkerboard(n: u16) -> Pattern {
    let n = clamp_n(n, 4);
    let word = |addr: u16, invert: bool| {
        let parity = (addr >> 8).wrapping_add(addr) & 1 == 1;
        match parity ^ invert {
            true => 0xAAAA,
            false => 0x5555,
        }
    };
    let mut vectors = Vec::with_capacity(4 * usize::from(n));
    for invert in [false, true] {
        for addr in 0..n {
            vectors.push(TestVector::write(addr, word(addr, invert)));
        }
        for addr in 0..n {
            vectors.push(TestVector::read(addr, word(addr, invert)));
        }
    }
    Pattern::new_clamped(vectors)
}

/// Walking ones: for each bit position, write a one-hot word everywhere and
/// read it back — `2n · 16 / 16` sized via sub-sampling to stay in window.
///
/// Uses `n` addresses and walks the hot bit with the address so the whole
/// bus is exercised in `2n` cycles.
pub fn walking_ones(n: u16) -> Pattern {
    let n = clamp_n(n, 2);
    let word = |addr: u16| 1u16 << (addr % 16);
    let mut vectors = Vec::with_capacity(2 * usize::from(n));
    for addr in 0..n {
        vectors.push(TestVector::write(addr, word(addr)));
    }
    for addr in 0..n {
        vectors.push(TestVector::read(addr, word(addr)));
    }
    Pattern::new_clamped(vectors)
}

/// March B: `⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0);
/// ⇓(r0,w1,w0)` — 17n cycles, the classic linked-fault March.
pub fn march_b(n: u16) -> Pattern {
    let n = clamp_n(n, 17);
    use MarchDirection::{Down, Up};
    use MarchOp::{Read, Write};
    expand_march(
        &[
            MarchElement::new(Up, vec![Write(false)]),
            MarchElement::new(
                Up,
                vec![
                    Read(false),
                    Write(true),
                    Read(true),
                    Write(false),
                    Read(false),
                    Write(true),
                ],
            ),
            MarchElement::new(Up, vec![Read(true), Write(false), Write(true)]),
            MarchElement::new(
                Down,
                vec![Read(true), Write(false), Write(true), Write(false)],
            ),
            MarchElement::new(Down, vec![Read(false), Write(true), Write(false)]),
        ],
        n,
    )
}

/// MATS+: `⇕(w0); ⇑(r0,w1); ⇓(r1,w0)` — 5n cycles, the minimal
/// address-fault test.
pub fn mats_plus(n: u16) -> Pattern {
    let n = clamp_n(n, 5);
    use MarchDirection::{Down, Up};
    use MarchOp::{Read, Write};
    expand_march(
        &[
            MarchElement::new(Up, vec![Write(false)]),
            MarchElement::new(Up, vec![Read(false), Write(true)]),
            MarchElement::new(Down, vec![Read(true), Write(false)]),
        ],
        n,
    )
}

/// Address complement: write a parity background, then read in `a, !a`
/// order so every access flips the entire address bus — the classic
/// address-decoder/bus stress test. `4n` cycles over `n` address pairs.
pub fn address_complement(n: u16) -> Pattern {
    let n = clamp_n(n, 4);
    let word = |addr: u16| if addr.count_ones().is_multiple_of(2) { 0x0F0F } else { 0xF0F0 };
    let mut vectors = Vec::with_capacity(4 * usize::from(n));
    for a in 0..n {
        vectors.push(TestVector::write(a, word(a)));
        vectors.push(TestVector::write(!a, word(!a)));
    }
    for a in 0..n {
        vectors.push(TestVector::read(a, word(a)));
        vectors.push(TestVector::read(!a, word(!a)));
    }
    Pattern::new_clamped(vectors)
}

/// All standard deterministic tests, as `(name, pattern)` pairs, sized to
/// fit the cycle window.
///
/// This is the deterministic suite Table 1's baseline row is drawn from.
pub fn standard_suite() -> Vec<(&'static str, Pattern)> {
    vec![
        ("march_c-", march_c_minus(64)),
        ("march_x", march_x(96)),
        ("march_y", march_y(96)),
        ("march_b", march_b(58)),
        ("mats+", mats_plus(200)),
        ("checkerboard", checkerboard(128)),
        ("walking_ones", walking_ones(128)),
        ("addr_complement", address_complement(128)),
    ]
}

/// Clamp the sub-array size so `cost_per_addr * n` stays within 100–1000.
fn clamp_n(n: u16, cost_per_addr: u16) -> u16 {
    let min = (crate::MIN_PATTERN_LEN as u16).div_ceil(cost_per_addr);
    let max = (crate::MAX_PATTERN_LEN as u16) / cost_per_addr;
    n.clamp(min.max(1), max.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::MemOp;
    use crate::{MAX_PATTERN_LEN, MIN_PATTERN_LEN};

    #[test]
    fn march_c_minus_has_canonical_length() {
        // 10 operations per address over 64 addresses.
        assert_eq!(march_c_minus(64).len(), 640);
    }

    #[test]
    fn march_x_and_y_lengths() {
        assert_eq!(march_x(96).len(), 6 * 96);
        assert_eq!(march_y(96).len(), 8 * 96);
    }

    #[test]
    fn march_b_and_mats_lengths() {
        assert_eq!(march_b(58).len(), 17 * 58);
        assert_eq!(mats_plus(200).len(), 5 * 200);
        assert_eq!(address_complement(128).len(), 4 * 128);
    }

    #[test]
    fn address_complement_flips_the_whole_bus() {
        let p = address_complement(128);
        let vs = p.vectors();
        // Consecutive accesses within a pair are exact complements.
        assert_eq!(vs[0].address, !vs[1].address);
        assert_eq!(
            crate::hamming(vs[0].address, vs[1].address),
            crate::ADDR_BITS
        );
    }

    #[test]
    fn address_complement_readback_matches_write() {
        let p = address_complement(128);
        let vs = p.vectors();
        for i in 0..256 {
            assert_eq!(vs[i].address, vs[i + 256].address);
            assert_eq!(vs[i].data, vs[i + 256].data, "read expects written word");
        }
    }

    #[test]
    fn mats_plus_is_minimal_but_complete() {
        let p = mats_plus(200);
        use crate::MemOp;
        // One write pass, then read/write pairs both directions.
        assert_eq!(p.count_of(MemOp::Write), 3 * 200);
        assert_eq!(p.count_of(MemOp::Read), 2 * 200);
    }

    #[test]
    fn all_suite_patterns_fit_window() {
        for (name, p) in standard_suite() {
            assert!(
                (MIN_PATTERN_LEN..=MAX_PATTERN_LEN).contains(&p.len()),
                "{name} has {} cycles",
                p.len()
            );
        }
    }

    #[test]
    fn oversized_n_is_clamped() {
        // 10 ops/address: n = 1000 would give 10_000 cycles; clamp to 100.
        assert_eq!(march_c_minus(1000).len(), 1000);
        assert_eq!(march_c_minus(1).len(), 100);
    }

    #[test]
    fn march_c_minus_reads_expected_backgrounds() {
        let p = march_c_minus(64);
        // Element 2 (⇑(r0,w1)) starts at cycle 64: first op reads 0.
        let v = p.vectors()[64];
        assert_eq!(v.op, MemOp::Read);
        assert_eq!(v.data, 0x0000);
        // Its write pair writes all-ones.
        let w = p.vectors()[65];
        assert_eq!(w.op, MemOp::Write);
        assert_eq!(w.data, 0xFFFF);
    }

    #[test]
    fn down_elements_descend() {
        let p = march_c_minus(64);
        // Element 4 (⇓(r0,w1)) spans cycles 320..448; addresses descend.
        let a0 = p.vectors()[320].address;
        let a1 = p.vectors()[322].address;
        assert_eq!(a0, 63);
        assert_eq!(a1, 62);
    }

    #[test]
    fn checkerboard_alternates_by_parity() {
        let p = checkerboard(128);
        let vs = p.vectors();
        assert_eq!(vs[0].data, 0x5555); // addr 0, even parity
        assert_eq!(vs[1].data, 0xAAAA); // addr 1, odd parity
        // Second half inverts.
        assert_eq!(vs[256].data, 0xAAAA);
    }

    #[test]
    fn checkerboard_readback_matches_write() {
        let p = checkerboard(128);
        let vs = p.vectors();
        for i in 0..128 {
            assert_eq!(vs[i].data, vs[i + 128].data, "read expects written word");
            assert_eq!(vs[i].op, MemOp::Write);
            assert_eq!(vs[i + 128].op, MemOp::Read);
        }
    }

    #[test]
    fn walking_ones_is_one_hot() {
        let p = walking_ones(128);
        for v in p.vectors() {
            assert_eq!(v.data.count_ones(), 1, "word {:#06x} not one-hot", v.data);
        }
    }

    #[test]
    fn suite_names_are_unique() {
        let suite = standard_suite();
        let mut names: Vec<_> = suite.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }
}
