//! Environmental test conditions and the space they are randomized over.

use cichar_units::{Celsius, Megahertz, ParamRange, Volts};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error validating [`TestConditions`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConditionsError {
    /// A condition fell outside the equipment's safe operating area.
    OutOfRange {
        /// Name of the offending condition.
        name: &'static str,
        /// The rejected magnitude.
        value: f64,
        /// The allowed range.
        range: ParamRange,
    },
}

impl fmt::Display for ConditionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConditionsError::OutOfRange { name, value, range } => {
                write!(f, "{name} = {value} outside safe operating area {range}")
            }
        }
    }
}

impl Error for ConditionsError {}

/// The environmental half of a test: supply voltage, die temperature and
/// clock frequency.
///
/// The paper's §1 describes characterization as repeating a test "for every
/// combination of two or more environmental variables"; conditions are also
/// the GA's second chromosome species.
///
/// # Examples
///
/// ```
/// use cichar_patterns::TestConditions;
/// use cichar_units::Volts;
///
/// let nominal = TestConditions::nominal();
/// assert_eq!(nominal.vdd, Volts::new(1.8));
///
/// let cold_fast = nominal.with_vdd(Volts::new(1.95));
/// assert!(cold_fast.vdd > nominal.vdd);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestConditions {
    /// Core supply voltage.
    pub vdd: Volts,
    /// Die temperature.
    pub temperature: Celsius,
    /// Vector clock frequency.
    pub clock: Megahertz,
}

impl TestConditions {
    /// Nominal corner of the paper's experiment: Vdd = 1.8 V, room
    /// temperature, 100 MHz vector rate.
    pub fn nominal() -> Self {
        Self {
            vdd: Volts::new(1.8),
            temperature: Celsius::new(25.0),
            clock: Megahertz::new(100.0),
        }
    }

    /// Returns a copy with a different supply voltage.
    pub fn with_vdd(self, vdd: Volts) -> Self {
        Self { vdd, ..self }
    }

    /// Returns a copy with a different temperature.
    pub fn with_temperature(self, temperature: Celsius) -> Self {
        Self {
            temperature,
            ..self
        }
    }

    /// Returns a copy with a different clock frequency.
    pub fn with_clock(self, clock: Megahertz) -> Self {
        Self { clock, ..self }
    }
}

impl Default for TestConditions {
    fn default() -> Self {
        Self::nominal()
    }
}

impl fmt::Display for TestConditions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / {} / {}", self.vdd, self.temperature, self.clock)
    }
}

/// The admissible region conditions are drawn from and validated against.
///
/// Acts both as the ATE's safe-operating-area check and as the sampling
/// space of the random test generator and the GA's condition chromosome.
///
/// # Examples
///
/// ```
/// use cichar_patterns::ConditionSpace;
/// use rand::SeedableRng;
///
/// let space = ConditionSpace::default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let c = space.sample(&mut rng);
/// assert!(space.validate(&c).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConditionSpace {
    vdd: ParamRange,
    temperature: ParamRange,
    clock: ParamRange,
}

impl ConditionSpace {
    /// Creates a condition space from explicit ranges.
    pub fn new(vdd: ParamRange, temperature: ParamRange, clock: ParamRange) -> Self {
        Self {
            vdd,
            temperature,
            clock,
        }
    }

    /// Supply-voltage range.
    pub fn vdd(&self) -> ParamRange {
        self.vdd
    }

    /// Temperature range.
    pub fn temperature(&self) -> ParamRange {
        self.temperature
    }

    /// Clock-frequency range.
    pub fn clock(&self) -> ParamRange {
        self.clock
    }

    /// Draws uniformly random conditions from the space.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> TestConditions {
        TestConditions {
            vdd: Volts::new(rng.gen_range(self.vdd.start()..=self.vdd.end())),
            temperature: Celsius::new(
                rng.gen_range(self.temperature.start()..=self.temperature.end()),
            ),
            clock: Megahertz::new(rng.gen_range(self.clock.start()..=self.clock.end())),
        }
    }

    /// Checks that `conditions` lie inside the space.
    ///
    /// # Errors
    ///
    /// Returns [`ConditionsError::OutOfRange`] naming the first condition
    /// outside its range.
    pub fn validate(&self, conditions: &TestConditions) -> Result<(), ConditionsError> {
        let checks: [(&'static str, f64, ParamRange); 3] = [
            ("vdd", conditions.vdd.value(), self.vdd),
            ("temperature", conditions.temperature.value(), self.temperature),
            ("clock", conditions.clock.value(), self.clock),
        ];
        for (name, value, range) in checks {
            if !range.contains(value) {
                return Err(ConditionsError::OutOfRange { name, value, range });
            }
        }
        Ok(())
    }

    /// Clamps arbitrary conditions into the space.
    pub fn clamp(&self, conditions: TestConditions) -> TestConditions {
        TestConditions {
            vdd: Volts::new(self.vdd.clamp(conditions.vdd.value())),
            temperature: Celsius::new(self.temperature.clamp(conditions.temperature.value())),
            clock: Megahertz::new(self.clock.clamp(conditions.clock.value())),
        }
    }

    /// Gene bounds for the condition chromosome (three loci, fixed-point).
    ///
    /// Conditions are quantized to a milliunit grid so they fit the GA's
    /// integer genes: gene = round((value - start) / step) with
    /// [`Self::GENE_STEPS`] steps per range.
    pub fn gene_bounds(&self) -> Vec<(u32, u32)> {
        vec![(0, Self::GENE_STEPS); 3]
    }

    /// Quantization steps per condition range in the gene encoding.
    pub const GENE_STEPS: u32 = 1000;

    /// Encodes conditions as three quantized genes.
    pub fn to_genes(&self, conditions: &TestConditions) -> Vec<u32> {
        let q = |range: ParamRange, v: f64| {
            (range.unlerp(range.clamp(v)) * f64::from(Self::GENE_STEPS)).round() as u32
        };
        vec![
            q(self.vdd, conditions.vdd.value()),
            q(self.temperature, conditions.temperature.value()),
            q(self.clock, conditions.clock.value()),
        ]
    }

    /// Decodes three quantized genes back into conditions.
    ///
    /// # Panics
    ///
    /// Panics if `genes.len() != 3`.
    pub fn from_genes(&self, genes: &[u32]) -> TestConditions {
        assert_eq!(genes.len(), 3, "condition chromosome has 3 loci");
        let d = |range: ParamRange, g: u32| {
            range.lerp(f64::from(g.min(Self::GENE_STEPS)) / f64::from(Self::GENE_STEPS))
        };
        TestConditions {
            vdd: Volts::new(d(self.vdd, genes[0])),
            temperature: Celsius::new(d(self.temperature, genes[1])),
            clock: Megahertz::new(d(self.clock, genes[2])),
        }
    }
}

impl Default for ConditionSpace {
    /// The characterization corner box used throughout the examples:
    /// Vdd 1.5–2.1 V (fig. 8's shmoo span), −40–125 °C, 50–133 MHz.
    fn default() -> Self {
        Self {
            vdd: ParamRange::new(1.5, 2.1).expect("static range"),
            temperature: ParamRange::new(-40.0, 125.0).expect("static range"),
            clock: ParamRange::new(50.0, 133.0).expect("static range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nominal_matches_paper_corner() {
        let c = TestConditions::nominal();
        assert_eq!(c.vdd.value(), 1.8);
        assert_eq!(c.clock.value(), 100.0);
        assert_eq!(TestConditions::default(), c);
    }

    #[test]
    fn with_methods_replace_single_field() {
        let c = TestConditions::nominal()
            .with_vdd(Volts::new(1.6))
            .with_temperature(Celsius::new(85.0))
            .with_clock(Megahertz::new(120.0));
        assert_eq!(c.vdd.value(), 1.6);
        assert_eq!(c.temperature.value(), 85.0);
        assert_eq!(c.clock.value(), 120.0);
    }

    #[test]
    fn samples_always_validate() {
        let space = ConditionSpace::default();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let c = space.sample(&mut rng);
            assert!(space.validate(&c).is_ok());
        }
    }

    #[test]
    fn validate_names_offender() {
        let space = ConditionSpace::default();
        let bad = TestConditions::nominal().with_vdd(Volts::new(3.3));
        match space.validate(&bad) {
            Err(ConditionsError::OutOfRange { name, value, .. }) => {
                assert_eq!(name, "vdd");
                assert_eq!(value, 3.3);
            }
            other => panic!("expected out-of-range error, got {other:?}"),
        }
    }

    #[test]
    fn clamp_pulls_into_space() {
        let space = ConditionSpace::default();
        let wild = TestConditions {
            vdd: Volts::new(9.0),
            temperature: Celsius::new(-200.0),
            clock: Megahertz::new(1.0),
        };
        let c = space.clamp(wild);
        assert!(space.validate(&c).is_ok());
        assert_eq!(c.vdd.value(), 2.1);
        assert_eq!(c.temperature.value(), -40.0);
        assert_eq!(c.clock.value(), 50.0);
    }

    #[test]
    fn condition_gene_round_trip_is_close() {
        let space = ConditionSpace::default();
        let c = TestConditions::nominal();
        let genes = space.to_genes(&c);
        let back = space.from_genes(&genes);
        assert!((back.vdd.value() - 1.8).abs() < 1e-3);
        assert!((back.temperature.value() - 25.0).abs() < 0.2);
        assert!((back.clock.value() - 100.0).abs() < 0.1);
    }

    #[test]
    fn gene_bounds_cover_decoded_range() {
        let space = ConditionSpace::default();
        let lo = space.from_genes(&[0, 0, 0]);
        let hi = space.from_genes(&[
            ConditionSpace::GENE_STEPS,
            ConditionSpace::GENE_STEPS,
            ConditionSpace::GENE_STEPS,
        ]);
        assert_eq!(lo.vdd.value(), 1.5);
        assert_eq!(hi.vdd.value(), 2.1);
        assert_eq!(space.gene_bounds().len(), 3);
    }

    #[test]
    #[should_panic(expected = "condition chromosome")]
    fn from_genes_panics_on_wrong_len() {
        let _ = ConditionSpace::default().from_genes(&[1, 2]);
    }

    #[test]
    fn display_shows_all_three() {
        let s = TestConditions::nominal().to_string();
        assert!(s.contains('V') && s.contains("degC") && s.contains("MHz"), "{s}");
    }
}
