//! Stress-feature extraction from test patterns.
//!
//! The paper's premise is that the trip point depends on the input test
//! through physical stress mechanisms — simultaneous-switching output (SSO)
//! noise on the DQ bus, address-bus activity, supply resonance excited by
//! rhythmic read bursts, bus turnarounds. [`PatternFeatures`] condenses a
//! [`Pattern`] into a fixed-length vector of those mechanisms' intensities,
//! normalized to `[0, 1]`.
//!
//! Two consumers read the same features:
//!
//! * the device model (`cichar-dut`) maps them through its response surface
//!   to the true parametric values, and
//! * the neural network learns the mapping *features → trip point* from
//!   ATE measurements (fig. 4), which is exactly the function the device
//!   model implements — so the learning problem is well-posed but, thanks
//!   to interaction terms, not trivially linear.

use crate::pattern::Pattern;
use crate::vector::{hamming, MemOp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of scalar features in [`PatternFeatures::to_vec`].
pub const FEATURE_COUNT: usize = 14;

/// Read-burst length (cycles) at which the simulated power-delivery network
/// resonates. Bursts near this length pump the supply hardest.
pub const RESONANT_BURST_LEN: f64 = 12.0;

/// Width (standard deviation, cycles) of the resonance window.
pub const RESONANCE_SIGMA: f64 = 3.0;

/// Names of the features, index-aligned with [`PatternFeatures::to_vec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureNames;

impl FeatureNames {
    /// The feature names in vector order.
    pub const ALL: [&'static str; FEATURE_COUNT] = [
        "read_fraction",
        "write_fraction",
        "nop_fraction",
        "addr_ham_mean",
        "addr_ham_max",
        "dq_sso_mean",
        "dq_sso_max",
        "read_burst_max",
        "read_burst_mean",
        "burst_resonance",
        "row_switch_fraction",
        "turnaround_density",
        "data_toggle_mean",
        "read_after_write_fraction",
    ];
}

/// The normalized stress features of one pattern.
///
/// Every field lies in `[0, 1]`. See the module docs for the physical
/// meaning of each mechanism.
///
/// # Examples
///
/// ```
/// use cichar_patterns::{march, PatternFeatures};
///
/// let f = PatternFeatures::extract(&march::march_c_minus(64));
/// // March C- interleaves reads and writes: many bus turnarounds…
/// assert!(f.turnaround_density > 0.5);
/// // …but no adjacent same-data read pairs that toggle the DQ bus.
/// assert!(f.dq_sso_mean < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternFeatures {
    /// Fraction of cycles that read.
    pub read_fraction: f64,
    /// Fraction of cycles that write.
    pub write_fraction: f64,
    /// Fraction of idle cycles.
    pub nop_fraction: f64,
    /// Mean address-bus Hamming distance between consecutive active cycles.
    pub addr_ham_mean: f64,
    /// Maximum address-bus Hamming distance observed.
    pub addr_ham_max: f64,
    /// Mean DQ-bus Hamming distance across *adjacent* read pairs — the
    /// simultaneous-switching-output intensity.
    pub dq_sso_mean: f64,
    /// Maximum adjacent-read DQ Hamming distance.
    pub dq_sso_max: f64,
    /// Longest run of consecutive reads, relative to the 125-cycle segment
    /// cap.
    pub read_burst_max: f64,
    /// Mean read-burst length, same normalization.
    pub read_burst_mean: f64,
    /// Supply-resonance score: SSO-weighted Gaussian window around
    /// [`RESONANT_BURST_LEN`], summed over bursts and normalized.
    pub burst_resonance: f64,
    /// Fraction of consecutive active cycles that change the row address.
    pub row_switch_fraction: f64,
    /// Fraction of consecutive active cycles that reverse bus direction
    /// (write→read or read→write).
    pub turnaround_density: f64,
    /// Mean Hamming distance between consecutive driven data words
    /// (any operation).
    pub data_toggle_mean: f64,
    /// Fraction of reads that hit the immediately previously written
    /// address (read-after-write locality).
    pub read_after_write_fraction: f64,
}

impl PatternFeatures {
    /// Walks the pattern once and extracts all features.
    ///
    /// Reads observe the data word carried by the vector (generators fill
    /// it from a tracked memory image, so it equals what the device drives
    /// out).
    pub fn extract(pattern: &Pattern) -> Self {
        let n = pattern.len() as f64;
        let mut reads = 0usize;
        let mut writes = 0usize;
        let mut nops = 0usize;

        let mut addr_ham_sum = 0.0;
        let mut addr_ham_max = 0u32;
        let mut addr_pairs = 0usize;

        let mut sso_sum = 0.0;
        let mut sso_max = 0u32;
        let mut sso_pairs = 0usize;

        let mut row_switches = 0usize;
        let mut turnarounds = 0usize;
        let mut data_toggle_sum = 0.0;
        let mut data_pairs = 0usize;

        let mut raw_hits = 0usize;

        let mut bursts: Vec<(usize, f64, usize)> = Vec::new(); // (len, sso_sum, sso_pairs)
        let mut burst_len = 0usize;
        let mut burst_sso_sum = 0.0;
        let mut burst_sso_pairs = 0usize;

        let mut prev_active: Option<(MemOp, u16, u16)> = None; // (op, addr, data)
        let mut last_write: Option<u16> = None;

        for v in pattern.iter() {
            match v.op {
                MemOp::Read => reads += 1,
                MemOp::Write => writes += 1,
                MemOp::Nop => nops += 1,
            }
            if v.op == MemOp::Nop {
                // A NOP breaks a read burst but leaves bus state untouched.
                if burst_len > 0 {
                    bursts.push((burst_len, burst_sso_sum, burst_sso_pairs));
                    burst_len = 0;
                    burst_sso_sum = 0.0;
                    burst_sso_pairs = 0;
                }
                continue;
            }
            if let Some((prev_op, prev_addr, prev_data)) = prev_active {
                let ah = hamming(prev_addr, v.address);
                addr_ham_sum += f64::from(ah);
                addr_ham_max = addr_ham_max.max(ah);
                addr_pairs += 1;
                if (prev_addr >> crate::vector::ROW_SHIFT) != (v.address >> crate::vector::ROW_SHIFT)
                {
                    row_switches += 1;
                }
                if prev_op != v.op {
                    turnarounds += 1;
                }
                let dh = hamming(prev_data, v.data);
                data_toggle_sum += f64::from(dh);
                data_pairs += 1;
                if prev_op == MemOp::Read && v.op == MemOp::Read {
                    sso_sum += f64::from(dh);
                    sso_max = sso_max.max(dh);
                    sso_pairs += 1;
                    burst_sso_sum += f64::from(dh);
                    burst_sso_pairs += 1;
                }
            }
            if v.op == MemOp::Read {
                burst_len += 1;
                if last_write == Some(v.address) {
                    raw_hits += 1;
                }
            } else if burst_len > 0 {
                bursts.push((burst_len, burst_sso_sum, burst_sso_pairs));
                burst_len = 0;
                burst_sso_sum = 0.0;
                burst_sso_pairs = 0;
            }
            if v.op == MemOp::Write {
                last_write = Some(v.address);
            }
            prev_active = Some((v.op, v.address, v.data));
        }
        if burst_len > 0 {
            bursts.push((burst_len, burst_sso_sum, burst_sso_pairs));
        }

        let bus_bits = f64::from(crate::vector::DATA_BITS);
        let mean = |sum: f64, count: usize| if count > 0 { sum / count as f64 } else { 0.0 };

        let burst_max = bursts.iter().map(|b| b.0).max().unwrap_or(0);
        let burst_mean = mean(bursts.iter().map(|b| b.0 as f64).sum(), bursts.len());

        // SSO-weighted resonance: each burst contributes a Gaussian window
        // around the resonant length scaled by the burst's own switching
        // intensity; normalized by the densest possible packing of
        // resonant bursts in this pattern.
        let resonance_raw: f64 = bursts
            .iter()
            .map(|&(len, s, p)| {
                let window = (-((len as f64 - RESONANT_BURST_LEN).powi(2))
                    / (2.0 * RESONANCE_SIGMA * RESONANCE_SIGMA))
                    .exp();
                let burst_sso = mean(s, p) / bus_bits;
                window * burst_sso
            })
            .sum();
        let max_bursts = (n / (RESONANT_BURST_LEN + 1.0)).max(1.0);
        let burst_resonance = (resonance_raw / max_bursts).clamp(0.0, 1.0);

        Self {
            read_fraction: reads as f64 / n,
            write_fraction: writes as f64 / n,
            nop_fraction: nops as f64 / n,
            addr_ham_mean: mean(addr_ham_sum, addr_pairs) / bus_bits,
            addr_ham_max: f64::from(addr_ham_max) / bus_bits,
            dq_sso_mean: mean(sso_sum, sso_pairs) / bus_bits,
            dq_sso_max: f64::from(sso_max) / bus_bits,
            read_burst_max: (burst_max as f64 / 125.0).min(1.0),
            read_burst_mean: (burst_mean / 125.0).min(1.0),
            burst_resonance,
            row_switch_fraction: mean(row_switches as f64, addr_pairs),
            turnaround_density: mean(turnarounds as f64, addr_pairs),
            data_toggle_mean: mean(data_toggle_sum, data_pairs) / bus_bits,
            read_after_write_fraction: mean(raw_hits as f64, reads),
        }
    }

    /// The features as a fixed-length vector, index-aligned with
    /// [`FeatureNames::ALL`]. This is the neural network's input encoding
    /// (conditions are appended separately by the learning scheme).
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.read_fraction,
            self.write_fraction,
            self.nop_fraction,
            self.addr_ham_mean,
            self.addr_ham_max,
            self.dq_sso_mean,
            self.dq_sso_max,
            self.read_burst_max,
            self.read_burst_mean,
            self.burst_resonance,
            self.row_switch_fraction,
            self.turnaround_density,
            self.data_toggle_mean,
            self.read_after_write_fraction,
        ]
    }

    /// True when every feature lies in `[0, 1]` — the extractor's
    /// normalization invariant.
    pub fn is_normalized(&self) -> bool {
        self.to_vec().iter().all(|&x| (0.0..=1.0).contains(&x))
    }
}

impl fmt::Display for PatternFeatures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let values = self.to_vec();
        for (name, value) in FeatureNames::ALL.iter().zip(values) {
            writeln!(f, "{name:>26}: {value:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::march;
    use crate::pattern::Pattern;
    use crate::program::{AddrMode, DataMode, OpMode, Segment, SegmentProgram};
    use crate::vector::TestVector;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Writes alternating 0x5555/0xAAAA to addresses, then reads them back
    /// in one long burst: maximal SSO.
    fn sso_storm(burst: u16) -> Pattern {
        let mut v = Vec::new();
        for i in 0..burst {
            let w = if i % 2 == 0 { 0x5555 } else { 0xAAAA };
            v.push(TestVector::write(i, w));
        }
        for i in 0..burst {
            let w = if i % 2 == 0 { 0x5555 } else { 0xAAAA };
            v.push(TestVector::read(i, w));
        }
        Pattern::new_clamped(v)
    }

    #[test]
    fn fractions_sum_to_one() {
        let f = PatternFeatures::extract(&march::march_c_minus(64));
        let total = f.read_fraction + f.write_fraction + f.nop_fraction;
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sso_storm_maxes_switching_features() {
        let f = PatternFeatures::extract(&sso_storm(64));
        assert!(f.dq_sso_mean > 0.95, "sso_mean = {}", f.dq_sso_mean);
        assert_eq!(f.dq_sso_max, 1.0);
    }

    #[test]
    fn march_c_minus_has_low_sso() {
        // March C- alternates read/write, and its all-same-background read
        // sweeps do not toggle the DQ bus.
        let f = PatternFeatures::extract(&march::march_c_minus(64));
        assert!(f.dq_sso_mean < 0.05, "sso_mean = {}", f.dq_sso_mean);
        assert!(f.turnaround_density > 0.5);
    }

    #[test]
    fn resonance_peaks_at_critical_burst_length() {
        // Many short read bursts at the resonant length, separated by one
        // write, all with full SSO.
        let storm_at = |burst_len: u16| {
            let mut v = Vec::new();
            for i in 0..200u16 {
                let w = if i % 2 == 0 { 0x5555 } else { 0xAAAA };
                v.push(TestVector::write(i, w));
            }
            let mut i = 0u16;
            while v.len() < 900 {
                v.push(TestVector::write(200, 0));
                for _ in 0..burst_len {
                    // Reads carry the alternating word written above, so
                    // every adjacent read pair toggles the full DQ bus.
                    let w = if i.is_multiple_of(2) { 0x5555 } else { 0xAAAA };
                    v.push(TestVector::read(i % 200, w));
                    i = i.wrapping_add(1);
                }
            }
            Pattern::new_clamped(v)
        };
        let resonant = PatternFeatures::extract(&storm_at(12)).burst_resonance;
        let long = PatternFeatures::extract(&storm_at(60)).burst_resonance;
        let short = PatternFeatures::extract(&storm_at(8)).burst_resonance;
        assert!(resonant > long, "resonant {resonant} vs long {long}");
        assert!(resonant > short, "resonant {resonant} vs short {short}");
    }

    #[test]
    fn nops_break_read_bursts() {
        let mut v = Vec::new();
        for i in 0..60u16 {
            v.push(TestVector::read(i, 0));
            if i % 2 == 1 {
                v.push(TestVector::nop());
            }
        }
        let with_nops = PatternFeatures::extract(&Pattern::new_clamped(v));
        let solid = PatternFeatures::extract(&{
            let v: Vec<_> = (0..60u16).map(|i| TestVector::read(i, 0)).collect();
            Pattern::new_clamped(v)
        });
        assert!(with_nops.read_burst_max < solid.read_burst_max);
    }

    #[test]
    fn read_after_write_detected() {
        let mut v = Vec::new();
        for i in 0..100u16 {
            v.push(TestVector::write(i, i));
            v.push(TestVector::read(i, i));
        }
        let f = PatternFeatures::extract(&Pattern::new_clamped(v));
        assert!((f.read_after_write_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn toggle_addressing_maxes_addr_hamming() {
        let seg = Segment::new(
            OpMode::ReadOnly,
            AddrMode::Toggle { mask: 0xFFFF },
            DataMode::Constant(0),
            100,
            0x0000,
        )
        .expect("valid");
        let p = SegmentProgram::new(vec![seg]).expect("valid").expand();
        let f = PatternFeatures::extract(&p);
        assert_eq!(f.addr_ham_max, 1.0);
        assert!(f.addr_ham_mean > 0.95);
        assert_eq!(f.row_switch_fraction, 1.0);
    }

    #[test]
    fn feature_vector_is_aligned_with_names() {
        let f = PatternFeatures::extract(&march::march_x(96));
        assert_eq!(f.to_vec().len(), FEATURE_COUNT);
        assert_eq!(FeatureNames::ALL.len(), FEATURE_COUNT);
    }

    #[test]
    fn display_lists_every_feature() {
        let s = PatternFeatures::extract(&march::march_x(96)).to_string();
        for name in FeatureNames::ALL {
            assert!(s.contains(name), "missing {name}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn random_patterns_stay_normalized(seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = crate::random::random_program(&mut rng).expand();
            let f = PatternFeatures::extract(&p);
            prop_assert!(f.is_normalized(), "{f}");
        }

        #[test]
        fn extraction_is_deterministic(seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = crate::random::random_program(&mut rng).expand();
            prop_assert_eq!(PatternFeatures::extract(&p), PatternFeatures::extract(&p));
        }
    }
}
