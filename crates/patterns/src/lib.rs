//! Test patterns and test conditions for semiconductor device
//! characterization.
//!
//! A *test* in the sense of the DATE'05 paper is the pair of an input
//! stimulus (a short functional pattern of 100–1000 vector cycles, §3) and a
//! set of environmental *test conditions* (supply voltage, temperature,
//! clock). This crate provides:
//!
//! * the raw stimulus vocabulary — [`MemOp`], [`TestVector`], [`Pattern`];
//! * [`SegmentProgram`], a compact ALPG-style pattern representation that
//!   deterministically expands to a [`Pattern`] and doubles as the genome
//!   the genetic algorithm evolves;
//! * deterministic generators ([`march`]) and the random test generator of
//!   the paper's refs \[9\]\[10\] ([`random`]);
//! * [`TestConditions`] and [`ConditionSpace`] for condition randomization;
//! * [`PatternFeatures`] — the stress features (simultaneous-switching
//!   activity, address-bus activity, read-burst structure, …) that both the
//!   device model's response surface and the neural network's input
//!   encoding consume.
//!
//! # Examples
//!
//! ```
//! use cichar_patterns::{march, ConditionSpace, PatternFeatures, Test};
//! use rand::SeedableRng;
//!
//! // A deterministic March C- baseline at nominal conditions.
//! let test = Test::deterministic("march_c-", march::march_c_minus(64));
//! let features = PatternFeatures::extract(&test.pattern());
//! assert!(features.read_fraction > 0.0);
//!
//! // A random test per the paper's refs [9][10].
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let space = ConditionSpace::default();
//! let random = cichar_patterns::random::random_test(&mut rng, &space);
//! assert!(random.pattern().len() >= 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conditions;
mod features;
pub mod march;
mod pattern;
mod program;
pub mod random;
mod test;
mod vector;

pub use conditions::{ConditionSpace, ConditionsError, TestConditions};
pub use features::{
    FeatureNames, PatternFeatures, FEATURE_COUNT, RESONANCE_SIGMA, RESONANT_BURST_LEN,
};
pub use pattern::{Pattern, PatternError, MAX_PATTERN_LEN, MIN_PATTERN_LEN};
pub use program::{
    power_up_word, AddrMode, DataMode, OpMode, ProgramError, Segment, SegmentProgram,
};
pub use test::{Stimulus, Test, TestSource};
pub use vector::{
    hamming, MemOp, TestVector, ADDR_BITS, ADDR_SPACE, COL_MASK, DATA_BITS, ROW_SHIFT,
};
