//! ALPG-style segment programs — the compact, evolvable pattern
//! representation.
//!
//! Real ATE does not store test patterns as flat vector lists; an
//! *algorithmic pattern generator* (ALPG) expands a short instruction
//! program into the vector stream on the fly. We mirror that: a
//! [`SegmentProgram`] is a list of [`Segment`] instructions, each of which
//! describes how addresses, data and operations evolve for a run of cycles.
//! The program expands deterministically into a [`Pattern`].
//!
//! The representation serves double duty as the genetic algorithm's
//! *test-sequence chromosome* (§5: "two different types of chromosomes —
//! test sequences and test conditions"): [`SegmentProgram::to_genes`] /
//! [`SegmentProgram::from_genes`] give a fixed-length integer encoding with
//! per-locus bounds ([`SegmentProgram::gene_bounds`]) that the GA mutates
//! and recombines.

use crate::pattern::Pattern;
use crate::vector::{MemOp, TestVector, ROW_SHIFT};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// How a segment sequences the address bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddrMode {
    /// `addr = base + stride * i` (wrapping). Stride is signed.
    Sequential {
        /// Per-cycle address increment (two's complement of the gene value).
        stride: i16,
    },
    /// Alternate `base` and `base ^ mask` — maximal address-bus toggling
    /// when the mask has many bits set.
    Toggle {
        /// XOR mask applied on odd cycles.
        mask: u16,
    },
    /// Hold `base` for the whole segment.
    Hold,
    /// Pseudo-random walk seeded by `seed` (deterministic LCG).
    Lcg {
        /// LCG seed; the same seed always produces the same walk.
        seed: u16,
    },
    /// Bounce between the base row and a row `distance` rows away, keeping
    /// the column — stresses row decoder and wordline drivers.
    RowBounce {
        /// Row distance of the far access.
        distance: u8,
    },
}

/// How a segment sequences the data bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataMode {
    /// Drive the same word every cycle.
    Constant(u16),
    /// Alternate `word` and `!word` — up to 16 simultaneously switching
    /// outputs on consecutive reads.
    Alternating(u16),
    /// Drive the complement of whatever was last on the data bus.
    InvertPrevious,
    /// A walking one: `1 << (i mod 16)`.
    WalkingOne,
    /// Pseudo-random data seeded by the wrapped value.
    Lcg(u16),
}

/// How a segment sequences operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpMode {
    /// Every cycle writes.
    WriteOnly,
    /// Every cycle reads (expected data comes from the tracked image).
    ReadOnly,
    /// Pairs of write-then-read at the same address (read-after-write).
    WritePairRead,
    /// Alternate write and read while the address keeps advancing.
    AlternateWriteRead,
    /// Ping-pong: the first two cycles write the segment's first two
    /// addresses, the rest burst-read them alternately — the classic
    /// read-hammer idiom of memory ALPGs.
    WriteOnceReadBurst,
}

/// Number of segments in every genome-encoded program.
const GENOME_SEGMENTS: usize = 8;

/// Maximum whole-program loop count (the ALPG outer loop register).
const MAX_LOOPS: u16 = 10;

/// Integer genes per segment in the chromosome encoding.
const GENES_PER_SEGMENT: usize = 7;

/// Minimum cycles a segment may run. Real ALPG instructions can be as
/// short as a single pair of cycles; short segments matter because the
/// worst-case stress rhythm interleaves one-write refreshes between
/// resonant read bursts.
const MIN_SEGMENT_LEN: u16 = 2;

/// Maximum cycles a segment may run (8 segments × 125 = 1000 = the §3 cap).
const MAX_SEGMENT_LEN: u16 = 125;

/// Error constructing a [`SegmentProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program had no segments or more than [`SegmentProgram::MAX_SEGMENTS`].
    SegmentCount(usize),
    /// A segment length was outside the allowed window.
    SegmentLen(u16),
    /// A gene string had the wrong length for the fixed genome layout.
    GeneCount {
        /// Genes provided by the caller.
        got: usize,
        /// Genes the fixed layout expects.
        expected: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::SegmentCount(n) => write!(
                f,
                "program has {n} segments, expected 1..={}",
                SegmentProgram::MAX_SEGMENTS
            ),
            ProgramError::SegmentLen(n) => write!(
                f,
                "segment length {n} outside {MIN_SEGMENT_LEN}..={MAX_SEGMENT_LEN}"
            ),
            ProgramError::GeneCount { got, expected } => {
                write!(f, "gene string has {got} genes, expected {expected}")
            }
        }
    }
}

impl Error for ProgramError {}

/// One ALPG instruction: run `len` cycles with the given address, data and
/// operation sequencing, starting from `base`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    /// Operation sequencing.
    pub op: OpMode,
    /// Address sequencing.
    pub addr: AddrMode,
    /// Data sequencing.
    pub data: DataMode,
    /// Cycles this segment runs (validated into `2..=125`).
    pub len: u16,
    /// Starting address.
    pub base: u16,
}

impl Segment {
    /// Creates a segment, validating the cycle count.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::SegmentLen`] if `len` is outside `2..=125`.
    pub fn new(
        op: OpMode,
        addr: AddrMode,
        data: DataMode,
        len: u16,
        base: u16,
    ) -> Result<Self, ProgramError> {
        if !(MIN_SEGMENT_LEN..=MAX_SEGMENT_LEN).contains(&len) {
            return Err(ProgramError::SegmentLen(len));
        }
        Ok(Self {
            op,
            addr,
            data,
            len,
            base,
        })
    }
}

/// A deterministic pattern program: up to [`Self::MAX_SEGMENTS`] segments
/// expanding to one [`Pattern`].
///
/// # Examples
///
/// ```
/// use cichar_patterns::{AddrMode, DataMode, OpMode, Segment, SegmentProgram};
///
/// let seg = Segment::new(
///     OpMode::ReadOnly,
///     AddrMode::Toggle { mask: 0xFFFF },
///     DataMode::Alternating(0x5555),
///     100,
///     0,
/// )?;
/// let program = SegmentProgram::new(vec![seg])?;
/// let pattern = program.expand();
/// assert_eq!(pattern.len(), 100);
///
/// // Gene round trip (the GA's view of the same program):
/// let genes = program.to_genes();
/// let back = SegmentProgram::from_genes(&genes)?;
/// assert_eq!(back.expand(), pattern);
/// # Ok::<(), cichar_patterns::ProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentProgram {
    segments: Vec<Segment>,
    /// Whole-program repetitions (the ALPG outer loop, `1..=10`). The
    /// memory image persists across iterations, so a short write/read
    /// rhythm looped many times builds a dense burst train — the shape of
    /// the worst-case stress.
    loops: u16,
}

impl SegmentProgram {
    /// Maximum number of segments a program may hold.
    pub const MAX_SEGMENTS: usize = GENOME_SEGMENTS;

    /// Total genes in the fixed-length chromosome encoding: one
    /// segment-count locus, one loop-count locus, then seven loci per
    /// segment slot.
    pub const GENE_COUNT: usize = 2 + GENOME_SEGMENTS * GENES_PER_SEGMENT;

    /// Creates a program from explicit segments.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::SegmentCount`] when empty or oversized.
    pub fn new(segments: Vec<Segment>) -> Result<Self, ProgramError> {
        if segments.is_empty() || segments.len() > Self::MAX_SEGMENTS {
            return Err(ProgramError::SegmentCount(segments.len()));
        }
        Ok(Self { segments, loops: 1 })
    }

    /// Sets the whole-program loop count (clamped into `1..=10`).
    pub fn with_loops(mut self, loops: u16) -> Self {
        self.loops = loops.clamp(1, MAX_LOOPS);
        self
    }

    /// The whole-program loop count.
    pub fn loops(&self) -> u16 {
        self.loops
    }

    /// The program's segments in execution order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Expands the program into its vector stream.
    ///
    /// Expansion is deterministic: the same program always yields the same
    /// [`Pattern`]. A memory image — initialized to the device's
    /// power-up background, see [`power_up_word`] — is tracked so read
    /// cycles carry the data word the device will actually drive out,
    /// the quantity simultaneous-switching stress depends on.
    pub fn expand(&self) -> Pattern {
        let mut image = power_up_image();
        let mut vectors = Vec::new();
        let mut prev_data: u16 = 0;
        'outer: for _ in 0..self.loops {
        for seg in &self.segments {
            let mut lcg_addr = u32::from(match seg.addr {
                AddrMode::Lcg { seed } => seed,
                _ => 0,
            })
            .wrapping_add(1);
            let mut lcg_data = u32::from(match seg.data {
                DataMode::Lcg(seed) => seed,
                _ => 0,
            })
            .wrapping_add(1);
            let mut pair_addr = seg.base;
            let mut ping_pong = [seg.base; 2];
            for i in 0..seg.len {
                let i_usize = usize::from(i);
                let addr = match seg.addr {
                    AddrMode::Sequential { stride } => {
                        seg.base.wrapping_add((stride as u16).wrapping_mul(i))
                    }
                    AddrMode::Toggle { mask } => {
                        if i % 2 == 0 {
                            seg.base
                        } else {
                            seg.base ^ mask
                        }
                    }
                    AddrMode::Hold => seg.base,
                    AddrMode::Lcg { .. } => {
                        lcg_addr = step_lcg(lcg_addr);
                        (lcg_addr >> 8) as u16
                    }
                    AddrMode::RowBounce { distance } => {
                        if i % 2 == 0 {
                            seg.base
                        } else {
                            seg.base
                                .wrapping_add(u16::from(distance) << ROW_SHIFT)
                        }
                    }
                };
                let (op, addr) = match seg.op {
                    OpMode::WriteOnly => (MemOp::Write, addr),
                    OpMode::ReadOnly => (MemOp::Read, addr),
                    OpMode::WritePairRead => {
                        // Even cycles pick a fresh address and write it; odd
                        // cycles read the address just written.
                        if i % 2 == 0 {
                            pair_addr = addr;
                            (MemOp::Write, addr)
                        } else {
                            (MemOp::Read, pair_addr)
                        }
                    }
                    OpMode::AlternateWriteRead => {
                        if i % 2 == 0 {
                            (MemOp::Write, addr)
                        } else {
                            (MemOp::Read, addr)
                        }
                    }
                    OpMode::WriteOnceReadBurst => {
                        if i < 2 {
                            ping_pong[usize::from(i)] = addr;
                            (MemOp::Write, addr)
                        } else {
                            (MemOp::Read, ping_pong[usize::from(i % 2)])
                        }
                    }
                };
                let data = match op {
                    MemOp::Read => image[usize::from(addr)],
                    MemOp::Write | MemOp::Nop => match seg.data {
                        DataMode::Constant(w) => w,
                        DataMode::Alternating(w) => {
                            if i % 2 == 0 {
                                w
                            } else {
                                !w
                            }
                        }
                        DataMode::InvertPrevious => !prev_data,
                        DataMode::WalkingOne => 1u16 << (i_usize % 16),
                        DataMode::Lcg(_) => {
                            lcg_data = step_lcg(lcg_data);
                            (lcg_data >> 12) as u16
                        }
                    },
                };
                if op == MemOp::Write {
                    image[usize::from(addr)] = data;
                }
                prev_data = data;
                vectors.push(TestVector::new(op, addr, data));
                if vectors.len() >= crate::MAX_PATTERN_LEN {
                    break 'outer;
                }
            }
        }
        }
        Pattern::new_clamped(vectors)
    }

    /// Inclusive `(low, high)` bounds for each locus of the gene encoding.
    ///
    /// The genetic algorithm uses these to keep mutation and initialization
    /// inside the valid domain, so every gene string decodes without error.
    pub fn gene_bounds() -> Vec<(u32, u32)> {
        let per_segment: [(u32, u32); GENES_PER_SEGMENT] = [
            (0, 4),                                        // op mode
            (0, 4),                                        // addr mode
            (0, u32::from(u16::MAX)),                      // addr parameter
            (0, 4),                                        // data mode
            (0, u32::from(u16::MAX)),                      // data parameter
            (u32::from(MIN_SEGMENT_LEN), u32::from(MAX_SEGMENT_LEN)), // len
            (0, u32::from(u16::MAX)),                      // base address
        ];
        let mut bounds = vec![
            (1u32, GENOME_SEGMENTS as u32),  // active segment count
            (1u32, u32::from(MAX_LOOPS)),    // whole-program loops
        ];
        bounds.extend((0..GENOME_SEGMENTS).flat_map(|_| per_segment.iter().copied()));
        bounds
    }

    /// Encodes the program as a fixed-length gene string.
    ///
    /// Locus 0 holds the active segment count; unused segment slots are
    /// padded with repeats of the last segment but stay dormant until a
    /// mutation of locus 0 re-activates them.
    pub fn to_genes(&self) -> Vec<u32> {
        let mut genes = Vec::with_capacity(Self::GENE_COUNT);
        genes.push(self.segments.len() as u32);
        genes.push(u32::from(self.loops));
        let last = *self.segments.last().expect("programs are non-empty");
        for idx in 0..GENOME_SEGMENTS {
            let seg = self.segments.get(idx).copied().unwrap_or(last);
            let op_g: u32 = match seg.op {
                OpMode::WriteOnly => 0,
                OpMode::ReadOnly => 1,
                OpMode::WritePairRead => 2,
                OpMode::AlternateWriteRead => 3,
                OpMode::WriteOnceReadBurst => 4,
            };
            let (addr_g, addr_p) = match seg.addr {
                AddrMode::Sequential { stride } => (0, u32::from(stride as u16)),
                AddrMode::Toggle { mask } => (1, u32::from(mask)),
                AddrMode::Hold => (2, 0),
                AddrMode::Lcg { seed } => (3, u32::from(seed)),
                AddrMode::RowBounce { distance } => (4, u32::from(distance)),
            };
            let (data_g, data_p) = match seg.data {
                DataMode::Constant(w) => (0, u32::from(w)),
                DataMode::Alternating(w) => (1, u32::from(w)),
                DataMode::InvertPrevious => (2, 0),
                DataMode::WalkingOne => (3, 0),
                DataMode::Lcg(s) => (4, u32::from(s)),
            };
            genes.extend_from_slice(&[
                op_g,
                addr_g,
                addr_p,
                data_g,
                data_p,
                u32::from(seg.len),
                u32::from(seg.base),
            ]);
        }
        genes
    }

    /// Decodes a fixed-length gene string produced by [`Self::to_genes`] or
    /// by the genetic algorithm.
    ///
    /// Out-of-range discriminants are folded back into range with a modulo
    /// so *any* gene string within [`Self::gene_bounds`] decodes — the GA
    /// never produces an invalid individual.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::GeneCount`] if the slice length differs from
    /// [`Self::GENE_COUNT`].
    pub fn from_genes(genes: &[u32]) -> Result<Self, ProgramError> {
        if genes.len() != Self::GENE_COUNT {
            return Err(ProgramError::GeneCount {
                got: genes.len(),
                expected: Self::GENE_COUNT,
            });
        }
        let active = ((genes[0].max(1) - 1) as usize % GENOME_SEGMENTS) + 1;
        let loops = ((genes[1].max(1) - 1) as u16 % MAX_LOOPS) + 1;
        let mut segments = Vec::with_capacity(active);
        for chunk in genes[2..2 + active * GENES_PER_SEGMENT].chunks_exact(GENES_PER_SEGMENT) {
            let op = match chunk[0] % 5 {
                0 => OpMode::WriteOnly,
                1 => OpMode::ReadOnly,
                2 => OpMode::WritePairRead,
                3 => OpMode::AlternateWriteRead,
                _ => OpMode::WriteOnceReadBurst,
            };
            let addr_p = (chunk[2] % (1 << 16)) as u16;
            let addr = match chunk[1] % 5 {
                0 => AddrMode::Sequential {
                    stride: addr_p as i16,
                },
                1 => AddrMode::Toggle { mask: addr_p },
                2 => AddrMode::Hold,
                3 => AddrMode::Lcg { seed: addr_p },
                _ => AddrMode::RowBounce {
                    distance: (addr_p & 0xff) as u8,
                },
            };
            let data_p = (chunk[4] % (1 << 16)) as u16;
            let data = match chunk[3] % 5 {
                0 => DataMode::Constant(data_p),
                1 => DataMode::Alternating(data_p),
                2 => DataMode::InvertPrevious,
                3 => DataMode::WalkingOne,
                _ => DataMode::Lcg(data_p),
            };
            let len_span = u32::from(MAX_SEGMENT_LEN - MIN_SEGMENT_LEN) + 1;
            let len = MIN_SEGMENT_LEN
                + (chunk[5].saturating_sub(u32::from(MIN_SEGMENT_LEN)) % len_span) as u16;
            let base = (chunk[6] % (1 << 16)) as u16;
            segments.push(Segment::new(op, addr, data, len, base).expect("len folded into range"));
        }
        Self::new(segments).map(|p| p.with_loops(loops))
    }

    /// Total cycles the program expands to (before clamping).
    pub fn cycle_count(&self) -> usize {
        self.segments.iter().map(|s| usize::from(s.len)).sum::<usize>()
            * usize::from(self.loops)
    }
}

impl fmt::Display for SegmentProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program[{} segments, {} cycles]",
            self.segments.len(),
            self.cycle_count()
        )
    }
}

/// One step of the deterministic 32-bit LCG used for pseudo-random address
/// and data sequencing (constants from glibc's `rand`).
fn step_lcg(x: u32) -> u32 {
    x.wrapping_mul(1_103_515_245).wrapping_add(12_345)
}

/// The data word address `addr` holds at device power-up.
///
/// SRAM/DRAM arrays power up in a pseudo-random state; reading a cell that
/// no test vector has written drives this word onto the DQ bus. The
/// background is fixed (same LCG stream for every expansion) so patterns
/// stay deterministic.
pub fn power_up_word(addr: u16) -> u16 {
    let x = step_lcg(step_lcg(u32::from(addr).wrapping_add(0xC1C4_A12D)));
    (x >> 8) as u16
}

/// The full power-up image, computed once and memcpy'd per expansion.
fn power_up_image() -> Vec<u16> {
    use std::sync::OnceLock;
    static IMAGE: OnceLock<Vec<u16>> = OnceLock::new();
    IMAGE
        .get_or_init(|| (0..=u16::MAX).map(power_up_word).collect())
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn demo_segment() -> Segment {
        Segment::new(
            OpMode::AlternateWriteRead,
            AddrMode::Sequential { stride: 3 },
            DataMode::Alternating(0x5555),
            64,
            0x0100,
        )
        .expect("valid segment")
    }

    #[test]
    fn segment_len_is_validated() {
        assert!(matches!(
            Segment::new(OpMode::WriteOnly, AddrMode::Hold, DataMode::WalkingOne, 1, 0),
            Err(ProgramError::SegmentLen(1))
        ));
        assert!(matches!(
            Segment::new(OpMode::WriteOnly, AddrMode::Hold, DataMode::WalkingOne, 126, 0),
            Err(ProgramError::SegmentLen(126))
        ));
    }

    #[test]
    fn program_segment_count_is_validated() {
        assert!(matches!(
            SegmentProgram::new(vec![]),
            Err(ProgramError::SegmentCount(0))
        ));
        let too_many = vec![demo_segment(); SegmentProgram::MAX_SEGMENTS + 1];
        assert!(matches!(
            SegmentProgram::new(too_many),
            Err(ProgramError::SegmentCount(9))
        ));
    }

    #[test]
    fn expansion_is_deterministic() {
        let p = SegmentProgram::new(vec![demo_segment(), demo_segment()]).expect("valid");
        assert_eq!(p.expand(), p.expand());
    }

    #[test]
    fn write_pair_read_reads_back_written_data() {
        let seg = Segment::new(
            OpMode::WritePairRead,
            AddrMode::Sequential { stride: 5 },
            DataMode::Lcg(99),
            32,
            0x2000,
        )
        .expect("valid");
        let pattern = SegmentProgram::new(vec![seg]).expect("valid").expand();
        let vs = pattern.vectors();
        for pair in vs[..32].chunks_exact(2) {
            assert_eq!(pair[0].op, MemOp::Write);
            assert_eq!(pair[1].op, MemOp::Read);
            assert_eq!(pair[0].address, pair[1].address, "read follows its write");
            assert_eq!(pair[0].data, pair[1].data, "read sees written data");
        }
    }

    #[test]
    fn reads_of_untouched_memory_see_power_up_background() {
        let seg = Segment::new(
            OpMode::ReadOnly,
            AddrMode::Sequential { stride: 1 },
            DataMode::Constant(0xDEAD),
            16,
            0x4000,
        )
        .expect("valid");
        let pattern = SegmentProgram::new(vec![seg]).expect("valid").expand();
        for (i, v) in pattern.vectors()[..16].iter().enumerate() {
            assert_eq!(v.data, power_up_word(0x4000 + i as u16));
        }
    }

    #[test]
    fn power_up_background_is_varied() {
        // Adjacent background words must differ in several bits, or reads
        // of virgin memory would not exercise the DQ bus at all.
        let mut total = 0u32;
        for a in 0..1000u16 {
            total += crate::hamming(power_up_word(a), power_up_word(a + 1));
        }
        let mean = f64::from(total) / 1000.0;
        assert!((6.0..10.0).contains(&mean), "mean background toggle {mean}");
    }

    #[test]
    fn toggle_mode_alternates_exactly() {
        let seg = Segment::new(
            OpMode::ReadOnly,
            AddrMode::Toggle { mask: 0xFFFF },
            DataMode::Constant(0),
            10,
            0x1234,
        )
        .expect("valid");
        let pattern = SegmentProgram::new(vec![seg]).expect("valid").expand();
        let vs = pattern.vectors();
        assert_eq!(vs[0].address, 0x1234);
        assert_eq!(vs[1].address, !0x1234u16);
        assert_eq!(vs[2].address, 0x1234);
    }

    #[test]
    fn row_bounce_keeps_column() {
        let seg = Segment::new(
            OpMode::ReadOnly,
            AddrMode::RowBounce { distance: 16 },
            DataMode::Constant(0),
            8,
            0x0305,
        )
        .expect("valid");
        let pattern = SegmentProgram::new(vec![seg]).expect("valid").expand();
        let vs = pattern.vectors();
        assert_eq!(vs[0].col(), vs[1].col());
        assert_eq!(vs[1].row(), vs[0].row() + 16);
    }

    #[test]
    fn gene_round_trip_preserves_expansion() {
        let p = SegmentProgram::new(vec![demo_segment()]).expect("valid");
        let back = SegmentProgram::from_genes(&p.to_genes()).expect("valid genes");
        assert_eq!(back.expand(), p.expand());
    }

    #[test]
    fn gene_count_is_fixed_and_bounded() {
        let p = SegmentProgram::new(vec![demo_segment(); 3]).expect("valid");
        let genes = p.to_genes();
        assert_eq!(genes.len(), SegmentProgram::GENE_COUNT);
        let bounds = SegmentProgram::gene_bounds();
        assert_eq!(bounds.len(), SegmentProgram::GENE_COUNT);
        for (g, (lo, hi)) in genes.iter().zip(&bounds) {
            assert!(g >= lo && g <= hi, "gene {g} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn from_genes_rejects_wrong_length() {
        assert!(matches!(
            SegmentProgram::from_genes(&[1, 2, 3]),
            Err(ProgramError::GeneCount { got: 3, .. })
        ));
    }

    #[test]
    fn error_display_mentions_numbers() {
        assert!(ProgramError::SegmentLen(200).to_string().contains("200"));
        assert!(ProgramError::SegmentCount(0).to_string().contains('0'));
    }

    proptest! {
        #[test]
        fn any_in_bounds_gene_string_decodes_and_expands(
            seed_genes in proptest::collection::vec(0u32..=u32::from(u16::MAX), SegmentProgram::GENE_COUNT)
        ) {
            // Fold arbitrary values into each locus's bounds the same way a
            // GA initializer would, then require decode + expand to succeed.
            let bounds = SegmentProgram::gene_bounds();
            let genes: Vec<u32> = seed_genes
                .iter()
                .zip(&bounds)
                .map(|(g, (lo, hi))| lo + g % (hi - lo + 1))
                .collect();
            let program = SegmentProgram::from_genes(&genes).expect("bounded genes decode");
            let pattern = program.expand();
            prop_assert!(pattern.len() >= crate::MIN_PATTERN_LEN);
            prop_assert!(pattern.len() <= crate::MAX_PATTERN_LEN);
        }

        #[test]
        fn decode_encode_decode_is_stable(
            seed_genes in proptest::collection::vec(0u32..=u32::from(u16::MAX), SegmentProgram::GENE_COUNT)
        ) {
            let bounds = SegmentProgram::gene_bounds();
            let genes: Vec<u32> = seed_genes
                .iter()
                .zip(&bounds)
                .map(|(g, (lo, hi))| lo + g % (hi - lo + 1))
                .collect();
            let once = SegmentProgram::from_genes(&genes).expect("decodes");
            let twice = SegmentProgram::from_genes(&once.to_genes()).expect("re-decodes");
            prop_assert_eq!(once, twice);
        }
    }
}
