//! The characterization test: stimulus plus conditions.

use crate::conditions::TestConditions;
use crate::pattern::Pattern;
use crate::program::SegmentProgram;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a test came from — Table 1's *Technique* column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestSource {
    /// Pre-defined deterministic pattern (March & friends).
    Deterministic,
    /// The refs-\[9\]\[10\] random test generator.
    Random,
    /// Proposed by the fuzzy-neural test generator (sub-optimal candidate).
    Neural,
    /// Produced by the genetic-algorithm optimization.
    NeuralGa,
}

impl fmt::Display for TestSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TestSource::Deterministic => "Deterministic",
            TestSource::Random => "Random",
            TestSource::Neural => "Neural",
            TestSource::NeuralGa => "Neural & Genetic",
        })
    }
}

/// The stimulus half of a test: either a compact program or raw vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stimulus {
    /// An ALPG segment program, expanded on demand.
    Program(SegmentProgram),
    /// An explicit vector list (used by the deterministic generators).
    Raw(Pattern),
}

impl Stimulus {
    /// Expands (or clones) into the concrete vector stream.
    pub fn pattern(&self) -> Pattern {
        match self {
            Stimulus::Program(p) => p.expand(),
            Stimulus::Raw(p) => p.clone(),
        }
    }
}

/// A complete characterization test: name, provenance, stimulus and
/// conditions.
///
/// This is the unit the whole pipeline moves around — what the ATE executes
/// (eq. 1's `T_n`), what the NN learns from, what the GA evolves, and what
/// the worst-case database stores.
///
/// # Examples
///
/// ```
/// use cichar_patterns::{march, Test, TestSource};
///
/// let test = Test::deterministic("march_c-", march::march_c_minus(64));
/// assert_eq!(test.source(), TestSource::Deterministic);
/// assert_eq!(test.pattern().len(), 640);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Test {
    name: String,
    source: TestSource,
    stimulus: Stimulus,
    conditions: TestConditions,
}

impl Test {
    /// Creates a test from an explicit pattern.
    pub fn new(
        name: impl Into<String>,
        source: TestSource,
        pattern: Pattern,
        conditions: TestConditions,
    ) -> Self {
        Self {
            name: name.into(),
            source,
            stimulus: Stimulus::Raw(pattern),
            conditions,
        }
    }

    /// Creates a test from a segment program.
    pub fn from_program(
        name: impl Into<String>,
        source: TestSource,
        program: SegmentProgram,
        conditions: TestConditions,
    ) -> Self {
        Self {
            name: name.into(),
            source,
            stimulus: Stimulus::Program(program),
            conditions,
        }
    }

    /// Convenience: a deterministic test at nominal conditions.
    pub fn deterministic(name: impl Into<String>, pattern: Pattern) -> Self {
        Self::new(
            name,
            TestSource::Deterministic,
            pattern,
            TestConditions::nominal(),
        )
    }

    /// The test's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Provenance of the test.
    pub fn source(&self) -> TestSource {
        self.source
    }

    /// The stimulus, unexpanded.
    pub fn stimulus(&self) -> &Stimulus {
        &self.stimulus
    }

    /// The concrete vector stream this test applies.
    pub fn pattern(&self) -> Pattern {
        self.stimulus.pattern()
    }

    /// The environmental conditions this test runs at.
    pub fn conditions(&self) -> &TestConditions {
        &self.conditions
    }

    /// Returns a copy with different conditions (used when shmooing the
    /// same stimulus across a voltage axis).
    pub fn with_conditions(&self, conditions: TestConditions) -> Self {
        Self {
            conditions,
            ..self.clone()
        }
    }

    /// Returns a copy re-labelled with a new name and source (used when the
    /// GA promotes a candidate into the worst-case database).
    pub fn relabel(&self, name: impl Into<String>, source: TestSource) -> Self {
        Self {
            name: name.into(),
            source,
            ..self.clone()
        }
    }

    /// Stable identity for deduplication: stimulus hash plus quantized
    /// conditions.
    pub fn identity(&self) -> u64 {
        let pattern_hash = self.pattern().content_hash();
        let mix = |h: u64, v: u64| {
            (h ^ v)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(31)
        };
        let q = |x: f64| (x * 1000.0).round() as i64 as u64;
        let mut h = pattern_hash;
        h = mix(h, q(self.conditions.vdd.value()));
        h = mix(h, q(self.conditions.temperature.value()));
        h = mix(h, q(self.conditions.clock.value()));
        h
    }
}

impl fmt::Display for Test {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] @ {}",
            self.name, self.source, self.conditions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::march;
    use crate::program::{AddrMode, DataMode, OpMode, Segment, SegmentProgram};
    use cichar_units::Volts;

    fn program_test() -> Test {
        let seg = Segment::new(
            OpMode::ReadOnly,
            AddrMode::Hold,
            DataMode::Constant(0),
            100,
            0,
        )
        .expect("valid");
        Test::from_program(
            "prog",
            TestSource::Random,
            SegmentProgram::new(vec![seg]).expect("valid"),
            TestConditions::nominal(),
        )
    }

    #[test]
    fn deterministic_constructor_sets_nominal_conditions() {
        let t = Test::deterministic("m", march::march_x(96));
        assert_eq!(*t.conditions(), TestConditions::nominal());
        assert_eq!(t.source(), TestSource::Deterministic);
        assert_eq!(t.name(), "m");
    }

    #[test]
    fn program_stimulus_expands_lazily() {
        let t = program_test();
        assert_eq!(t.pattern().len(), 100);
        assert!(matches!(t.stimulus(), Stimulus::Program(_)));
    }

    #[test]
    fn with_conditions_changes_only_conditions() {
        let t = program_test();
        let moved = t.with_conditions(TestConditions::nominal().with_vdd(Volts::new(1.6)));
        assert_eq!(moved.pattern(), t.pattern());
        assert_eq!(moved.conditions().vdd.value(), 1.6);
    }

    #[test]
    fn relabel_changes_name_and_source() {
        let t = program_test().relabel("wc_001", TestSource::NeuralGa);
        assert_eq!(t.name(), "wc_001");
        assert_eq!(t.source(), TestSource::NeuralGa);
    }

    #[test]
    fn identity_distinguishes_conditions() {
        let t = program_test();
        let moved = t.with_conditions(TestConditions::nominal().with_vdd(Volts::new(1.6)));
        assert_ne!(t.identity(), moved.identity());
        assert_eq!(t.identity(), program_test().identity());
    }

    #[test]
    fn display_mentions_name_and_technique() {
        let s = program_test().to_string();
        assert!(s.contains("prog") && s.contains("Random"), "{s}");
    }

    #[test]
    fn source_display_matches_table1_vocabulary() {
        assert_eq!(TestSource::NeuralGa.to_string(), "Neural & Genetic");
        assert_eq!(TestSource::Deterministic.to_string(), "Deterministic");
    }

    #[test]
    fn test_serde_round_trip() {
        let t = program_test();
        let json = serde_json::to_string(&t).expect("serialize");
        let back: Test = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, t);
    }
}
