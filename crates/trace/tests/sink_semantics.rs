//! Sink contract tests: `RingBufferSink` wraparound semantics and
//! `JsonlSink` atomic publish.
//!
//! The ring buffer is the golden-trace capture vehicle, so its eviction
//! order must be exact; the JSONL sink is the on-disk artifact writer, so
//! a crashed or failing run must never leave a partial stream at the
//! destination path — the destination either holds the previous complete
//! artifact or the new complete one, nothing in between.

use cichar_trace::{JsonlSink, RingBufferSink, TraceEvent, TraceRecord, TraceSink};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn record(seq: u64) -> TraceRecord {
    TraceRecord {
        seq,
        test: Some(seq % 7),
        ts_us: 0,
        event: TraceEvent::ProbeIssued { value: seq as f64, speculative: false },
    }
}

fn seqs(records: &[TraceRecord]) -> Vec<u64> {
    records.iter().map(|r| r.seq).collect()
}

/// A fresh scratch directory per test, so parallel tests never collide.
fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cichar_sink_semantics").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

// --- RingBufferSink wraparound -----------------------------------------

#[test]
fn unbounded_buffer_retains_every_record_in_order() {
    let sink = RingBufferSink::unbounded();
    for seq in 0..10_000 {
        sink.record(&record(seq));
    }
    assert_eq!(sink.len(), 10_000);
    assert_eq!(seqs(&sink.records()), (0..10_000).collect::<Vec<_>>());
}

#[test]
fn bounded_buffer_does_not_evict_until_full() {
    let sink = RingBufferSink::with_capacity(8);
    for seq in 0..8 {
        sink.record(&record(seq));
    }
    assert_eq!(seqs(&sink.records()), (0..8).collect::<Vec<_>>());
    // The 9th record evicts exactly the oldest one.
    sink.record(&record(8));
    assert_eq!(seqs(&sink.records()), (1..9).collect::<Vec<_>>());
}

#[test]
fn wraparound_keeps_the_newest_records_across_many_laps() {
    let sink = RingBufferSink::with_capacity(16);
    for seq in 0..1000 {
        sink.record(&record(seq));
        // Invariant at every step, not just at the end: bounded, and the
        // retained window is the contiguous tail of what was recorded.
        assert!(sink.len() <= 16);
    }
    assert_eq!(seqs(&sink.records()), (984..1000).collect::<Vec<_>>());
}

#[test]
fn take_drains_and_later_records_refill_from_empty() {
    let sink = RingBufferSink::with_capacity(4);
    for seq in 0..6 {
        sink.record(&record(seq));
    }
    assert_eq!(seqs(&sink.take()), vec![2, 3, 4, 5]);
    assert!(sink.is_empty());
    sink.record(&record(6));
    assert_eq!(seqs(&sink.records()), vec![6]);
}

#[test]
fn concurrent_recording_stays_bounded() {
    let sink = Arc::new(RingBufferSink::with_capacity(32));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let sink = Arc::clone(&sink);
            std::thread::spawn(move || {
                for i in 0..500 {
                    sink.record(&record(t * 1000 + i));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("writer thread");
    }
    assert_eq!(sink.len(), 32, "eviction holds the bound under contention");
}

#[test]
#[should_panic(expected = "capacity must be positive")]
fn zero_capacity_is_rejected() {
    let _ = RingBufferSink::with_capacity(0);
}

// --- JsonlSink atomic temp+rename crash-safety -------------------------

/// A writer that dies after `budget` bytes — a run aborted mid-stream.
struct DyingWriter {
    budget: usize,
}

impl Write for DyingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.len() > self.budget {
            return Err(io::Error::other("tester power loss"));
        }
        self.budget -= buf.len();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn parseable_lines(path: &Path) -> usize {
    let text = std::fs::read_to_string(path).expect("readable");
    text.lines()
        .map(|line| {
            serde_json::from_str::<TraceRecord>(line).expect("every published line parses");
        })
        .count()
}

#[test]
fn destination_is_never_visible_while_recording() {
    let dir = test_dir("never_partial");
    let target = dir.join("stream.jsonl");
    let sink = JsonlSink::create(&target).expect("writable");
    for seq in 0..200 {
        sink.record(&record(seq));
        // Observe the destination after *every* write: the stream must
        // only ever appear at the target via the final rename.
        assert!(!target.exists(), "partial stream visible at seq {seq}");
    }
    sink.finish().expect("commit");
    assert_eq!(parseable_lines(&target), 200);
}

#[test]
fn finish_atomically_replaces_a_previous_artifact() {
    let dir = test_dir("replace");
    let target = dir.join("stream.jsonl");
    std::fs::write(&target, "previous run\n").expect("old artifact");

    let sink = JsonlSink::create(&target).expect("writable");
    sink.record(&record(0));
    // Until finish, readers still see the previous complete artifact.
    assert_eq!(
        std::fs::read_to_string(&target).expect("old artifact intact"),
        "previous run\n"
    );
    sink.finish().expect("commit");
    assert_eq!(parseable_lines(&target), 1);
}

#[test]
fn failing_writer_leaves_a_previous_artifact_untouched() {
    let dir = test_dir("crash_preserves_old");
    let target = dir.join("stream.jsonl");
    let scratch = dir.join("stream.jsonl.tmp");
    std::fs::write(&target, "previous run\n").expect("old artifact");

    let sink = JsonlSink::from_parts(
        Box::new(DyingWriter { budget: 120 }),
        scratch.clone(),
        target.clone(),
    );
    for seq in 0..50 {
        sink.record(&record(seq));
    }
    let err = sink.finish().expect_err("writer died mid-stream");
    assert_eq!(err.to_string(), "tester power loss");
    // The previous artifact survives byte-for-byte; no scratch debris.
    assert_eq!(
        std::fs::read_to_string(&target).expect("old artifact intact"),
        "previous run\n"
    );
    assert!(!scratch.exists(), "scratch cleaned up after failure");
}

#[test]
fn abandoned_sink_publishes_nothing() {
    let dir = test_dir("abandoned");
    let target = dir.join("stream.jsonl");
    {
        let sink = JsonlSink::create(&target).expect("writable");
        sink.record(&record(0));
        // Dropped without finish — the process "crashed" here.
    }
    assert!(!target.exists(), "no artifact without an explicit commit");
}

#[test]
fn errors_latch_and_recording_continues_silently() {
    // The hot path must never branch on I/O: after the writer dies,
    // further records are no-ops and the one latched error surfaces from
    // finish.
    let dir = test_dir("latched");
    let target = dir.join("stream.jsonl");
    let scratch = dir.join("stream.jsonl.tmp");
    let sink = JsonlSink::from_parts(
        Box::new(DyingWriter { budget: 0 }),
        scratch,
        target.clone(),
    );
    for seq in 0..10 {
        sink.record(&record(seq));
    }
    assert!(sink.finish().is_err());
    assert!(!target.exists());
}
