//! A lock-free metrics registry with deterministic snapshots.
//!
//! Counters and fixed-bucket histograms are plain `AtomicU64`s updated with
//! relaxed ordering — cheap enough for hot paths, and exact because every
//! update is an integer increment: integer addition commutes, so the final
//! totals are independent of scheduling. Anything that is a duration is
//! accumulated in integer nanoseconds for the same reason (summing `f64`
//! microseconds would make the total depend on absorb order).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Relaxed is enough: counters are independent monotone sums, and every
/// snapshot happens-after the updates it observes through the surrounding
/// join/merge structure.
const ORDER: Ordering = Ordering::Relaxed;

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper bound of
/// bucket `i`, with one final overflow bucket after the last bound.
#[derive(Debug)]
pub(crate) struct Histogram {
    bounds: &'static [u64],
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    pub(crate) fn new(bounds: &'static [u64]) -> Self {
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    pub(crate) fn observe(&self, value: u64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket].fetch_add(1, ORDER);
        self.count.fetch_add(1, ORDER);
        self.sum.fetch_add(value, ORDER);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts: self.counts.iter().map(|c| c.load(ORDER)).collect(),
            count: self.count.load(ORDER),
            sum: self.sum.load(ORDER),
        }
    }
}

/// An immutable histogram state: bucket bounds, per-bucket counts (one
/// extra overflow bucket), total observation count and integer sum.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the fixed buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`
    /// (the last bucket collects overflow).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (native integer units).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Accumulates another snapshot taken with the same bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.bounds.is_empty() && self.counts.is_empty() {
            *self = other.clone();
            return;
        }
        assert_eq!(self.bounds, other.bounds, "histogram bucket layouts differ");
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Whether the per-bucket counts add up to the total count.
    pub fn is_consistent(&self) -> bool {
        self.counts.iter().sum::<u64>() == self.count
    }
}

macro_rules! registry {
    (
        $(#[$m:meta] $name:ident),+ $(,)?
        @defaulted $(#[$dm:meta] $dname:ident),+ $(,)?
    ) => {
        /// The live counter set (see [`MetricsSnapshot`] for meanings).
        #[derive(Debug, Default)]
        pub(crate) struct Counters {
            $(#[$m] pub(crate) $name: AtomicU64,)+
            $(#[$dm] pub(crate) $dname: AtomicU64,)+
        }

        impl Counters {
            fn snapshot_into(&self, snap: &mut MetricsSnapshot) {
                $(snap.$name = self.$name.load(ORDER);)+
                $(snap.$dname = self.$dname.load(ORDER);)+
            }
        }

        /// A deterministic, serializable snapshot of the metrics registry.
        ///
        /// Two seeded runs of the same campaign produce equal snapshots
        /// regardless of thread count: every field is an integer total, and
        /// totals of integer increments are schedule-independent.
        #[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
        pub struct MetricsSnapshot {
            $(#[$m] pub $name: u64,)+
            // Counters registered after manifests were first committed
            // deserialize as zero when a baseline predates them.
            $(#[$dm] #[serde(default)] pub $dname: u64,)+
            /// Probe requests consumed per finished trip-point search.
            pub hist_probes_per_search: HistogramSnapshot,
            /// STP window-walk steps taken per finished search.
            pub hist_search_steps: HistogramSnapshot,
            /// Retry-ladder depth reached per scheduled retry.
            pub hist_retry_depth: HistogramSnapshot,
            /// Simulated backoff settle time per retry, in nanoseconds.
            pub hist_backoff_ns: HistogramSnapshot,
        }

        impl MetricsSnapshot {
            /// Accumulates another snapshot — the same way ledgers merge
            /// across worker shards: plain integer sums, so the result is
            /// independent of merge order.
            pub fn merge(&mut self, other: &MetricsSnapshot) {
                $(self.$name += other.$name;)+
                $(self.$dname += other.$dname;)+
                self.hist_probes_per_search.merge(&other.hist_probes_per_search);
                self.hist_search_steps.merge(&other.hist_search_steps);
                self.hist_retry_depth.merge(&other.hist_retry_depth);
                self.hist_backoff_ns.merge(&other.hist_backoff_ns);
            }
        }
    };
}

registry! {
    /// Probe requests that produced a verdict (cached or measured).
    probes_resolved,
    /// Probe requests answered from the oracle memo cache.
    probes_cached,
    /// Probe requests issued to the tester as physical measurements.
    probes_issued,
    /// Issued probes that were pre-issued speculatively (subset of issued; subtracting them yields the honest eq. 1 cost).
    probes_speculative,
    /// Trip-point searches started.
    searches_started,
    /// Trip-point searches finished.
    searches_finished,
    /// Finished searches that converged on a trip point.
    searches_converged,
    /// STP window-walk iterations taken (eqs. 3/4).
    search_steps,
    /// Pass/fail brackets established.
    brackets,
    /// Strobes re-issued after a silent strobe.
    retries,
    /// k-of-n majority votes resolved.
    vote_rounds,
    /// Measurement points quarantined after recovery failed.
    quarantined,
    /// Probe-contact dropouts injected by the fault model.
    faults_dropout,
    /// Transient verdict flips injected by the fault model.
    faults_flip,
    /// Stuck-channel replays injected by the fault model.
    faults_stuck,
    /// Session-abort bursts injected by the fault model.
    faults_abort,
    /// GA generations evaluated.
    ga_generations,
    /// Committee learning rounds finished.
    committee_epochs,
    /// Campaign phase transitions.
    phases,
    @defaulted
    /// Hung-strobe stalls injected by the fault model.
    faults_stall,
    /// Stall-watchdog firings: per-site touchdown budgets that expired.
    watchdog_timeouts,
    /// Site health circuit breakers latched open.
    breaker_trips,
    /// Health alarms raised by the live telemetry engine.
    alarms_raised,
    /// Health alarms cleared by the live telemetry engine.
    alarms_cleared,
}

impl MetricsSnapshot {
    /// The invariants every snapshot of a completed campaign satisfies.
    /// Returns the first violated invariant's description, or `None`.
    pub fn check_invariants(&self) -> Option<String> {
        if self.probes_resolved != self.probes_cached + self.probes_issued {
            return Some(format!(
                "probes_resolved {} != cached {} + issued {}",
                self.probes_resolved, self.probes_cached, self.probes_issued
            ));
        }
        if self.probes_speculative > self.probes_issued {
            return Some(format!(
                "probes_speculative {} > issued {}",
                self.probes_speculative, self.probes_issued
            ));
        }
        if self.searches_finished != self.hist_probes_per_search.count {
            return Some(format!(
                "searches_finished {} != probes-per-search observations {}",
                self.searches_finished, self.hist_probes_per_search.count
            ));
        }
        if self.searches_finished != self.hist_search_steps.count {
            return Some(format!(
                "searches_finished {} != search-steps observations {}",
                self.searches_finished, self.hist_search_steps.count
            ));
        }
        if self.search_steps != self.hist_search_steps.sum {
            return Some(format!(
                "search_steps {} != search-steps histogram sum {}",
                self.search_steps, self.hist_search_steps.sum
            ));
        }
        if self.retries != self.hist_retry_depth.count {
            return Some(format!(
                "retries {} != retry-depth observations {}",
                self.retries, self.hist_retry_depth.count
            ));
        }
        if self.retries != self.hist_backoff_ns.count {
            return Some(format!(
                "retries {} != backoff observations {}",
                self.retries, self.hist_backoff_ns.count
            ));
        }
        for (name, hist) in [
            ("probes_per_search", &self.hist_probes_per_search),
            ("search_steps", &self.hist_search_steps),
            ("retry_depth", &self.hist_retry_depth),
            ("backoff_ns", &self.hist_backoff_ns),
        ] {
            if !hist.is_consistent() {
                return Some(format!("histogram {name} buckets do not sum to its count"));
            }
        }
        None
    }
}

/// Bucket bounds: probes consumed per trip-point search.
const PROBE_BOUNDS: &[u64] = &[2, 4, 6, 8, 12, 16, 24, 32, 48, 64];
/// Bucket bounds: STP walk steps per search.
const STEP_BOUNDS: &[u64] = &[1, 2, 3, 4, 6, 8, 12, 16, 24];
/// Bucket bounds: retry-ladder depth.
const RETRY_BOUNDS: &[u64] = &[1, 2, 3, 4, 6, 8];
/// Bucket bounds: per-retry backoff in nanoseconds (50 µs … 12.8 ms).
const BACKOFF_BOUNDS: &[u64] = &[
    50_000, 100_000, 200_000, 400_000, 800_000, 1_600_000, 3_200_000, 12_800_000,
];

/// The live, lock-free metrics registry behind a [`Tracer`](crate::Tracer).
#[derive(Debug)]
pub struct MetricsRegistry {
    pub(crate) counters: Counters,
    pub(crate) hist_probes_per_search: Histogram,
    pub(crate) hist_search_steps: Histogram,
    pub(crate) hist_retry_depth: Histogram,
    pub(crate) hist_backoff_ns: Histogram,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry with the standard bucket layouts.
    pub fn new() -> Self {
        Self {
            counters: Counters::default(),
            hist_probes_per_search: Histogram::new(PROBE_BOUNDS),
            hist_search_steps: Histogram::new(STEP_BOUNDS),
            hist_retry_depth: Histogram::new(RETRY_BOUNDS),
            hist_backoff_ns: Histogram::new(BACKOFF_BOUNDS),
        }
    }

    /// A deterministic snapshot of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        self.counters.snapshot_into(&mut snap);
        snap.hist_probes_per_search = self.hist_probes_per_search.snapshot();
        snap.hist_search_steps = self.hist_search_steps.snapshot();
        snap.hist_retry_depth = self.hist_retry_depth.snapshot();
        snap.hist_backoff_ns = self.hist_backoff_ns.snapshot();
        snap
    }

}

/// Increments a registry counter (relaxed: see [`ORDER`]).
pub(crate) fn bump(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, ORDER);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[2, 4]);
        for v in [1, 2, 3, 4, 5, 100] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 2], "≤2, ≤4, overflow");
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 115);
        assert!(s.is_consistent());
    }

    #[test]
    fn snapshot_merge_is_commutative() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        bump(&a.counters.probes_resolved, 3);
        a.hist_probes_per_search.observe(5);
        bump(&b.counters.probes_resolved, 4);
        b.hist_probes_per_search.observe(30);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        assert_eq!(ab, ba);
        assert_eq!(ab.probes_resolved, 7);
        assert_eq!(ab.hist_probes_per_search.count, 2);
    }

    #[test]
    fn empty_snapshot_satisfies_invariants() {
        assert_eq!(MetricsRegistry::new().snapshot().check_invariants(), None);
    }

    #[test]
    fn invariant_checker_catches_probe_imbalance() {
        let r = MetricsRegistry::new();
        bump(&r.counters.probes_resolved, 1);
        let violation = r.snapshot().check_invariants().expect("imbalanced");
        assert!(violation.contains("probes_resolved"), "{violation}");
    }

    #[test]
    fn snapshots_without_the_recovery_counters_still_parse() {
        // Baseline manifests committed before the durability PR carry no
        // faults_stall / watchdog_timeouts / breaker_trips fields; they
        // must deserialize as zero, not fail.
        let json = serde_json::to_string(&MetricsSnapshot::default()).expect("serializes");
        let legacy = json
            .replace(",\"faults_stall\":0", "")
            .replace(",\"watchdog_timeouts\":0", "")
            .replace(",\"breaker_trips\":0", "")
            .replace(",\"alarms_raised\":0", "")
            .replace(",\"alarms_cleared\":0", "");
        assert!(!legacy.contains("watchdog_timeouts"), "{legacy}");
        assert!(!legacy.contains("alarms_raised"), "{legacy}");
        let back: MetricsSnapshot = serde_json::from_str(&legacy).expect("parses");
        assert_eq!(back, MetricsSnapshot::default());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = MetricsRegistry::new();
        bump(&r.counters.retries, 2);
        r.hist_retry_depth.observe(1);
        r.hist_retry_depth.observe(2);
        r.hist_backoff_ns.observe(100_000);
        r.hist_backoff_ns.observe(200_000);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
    }
}
