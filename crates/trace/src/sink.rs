//! Trace sinks: where sequenced records go.

use crate::event::TraceRecord;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A destination for sequenced trace records.
///
/// Sinks must be shareable across the tracer and the code that later reads
/// the stream back (golden tests keep their own `Arc` to a
/// [`RingBufferSink`]), hence `Send + Sync` with interior mutability.
pub trait TraceSink: Send + Sync {
    /// Accepts one record. Infallible by design: persistent sinks latch
    /// I/O errors internally and report them from [`TraceSink::finish`],
    /// so the hot measurement path never branches on I/O.
    fn record(&self, record: &TraceRecord);

    /// Flushes and publishes the stream. For file-backed sinks this is the
    /// atomic commit point; before `finish` succeeds, no partial artifact
    /// is visible at the target path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error encountered while recording or committing.
    fn finish(&self) -> io::Result<()> {
        Ok(())
    }
}

/// A sink that drops everything — tracing enabled, persistence off.
///
/// Used to collect metrics (which live in the tracer, not the sink)
/// without keeping the event stream, and by the overhead benchmarks.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _record: &TraceRecord) {}
}

/// An in-memory sink retaining records, optionally bounded (oldest records
/// evicted first). The golden-trace tests read campaigns back from it.
#[derive(Debug, Default)]
pub struct RingBufferSink {
    capacity: Option<usize>,
    records: Mutex<VecDeque<TraceRecord>>,
}

impl RingBufferSink {
    /// An unbounded buffer.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A buffer keeping only the most recent `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity: Some(capacity),
            records: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// A copy of the retained records, in sequence order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().expect("ring buffer lock").iter().cloned().collect()
    }

    /// Drains and returns the retained records.
    pub fn take(&self) -> Vec<TraceRecord> {
        self.records.lock().expect("ring buffer lock").drain(..).collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.lock().expect("ring buffer lock").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, record: &TraceRecord) {
        let mut records = self.records.lock().expect("ring buffer lock");
        if let Some(capacity) = self.capacity {
            while records.len() >= capacity {
                records.pop_front();
            }
        }
        records.push_back(record.clone());
    }
}

struct JsonlState {
    writer: Option<Box<dyn Write + Send>>,
    error: Option<io::Error>,
}

/// A sink writing one JSON record per line — atomically.
///
/// Records stream into a scratch file next to the target; only a
/// successful [`TraceSink::finish`] renames it into place. An aborted or
/// failing run therefore never leaves a truncated `.jsonl` at the target
/// path (the scratch file is removed on failure where possible).
pub struct JsonlSink {
    target: PathBuf,
    scratch: PathBuf,
    state: Mutex<JsonlState>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("target", &self.target)
            .field("scratch", &self.scratch)
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Opens a sink that will publish to `target` on a successful finish.
    ///
    /// The scratch file `<target>.tmp` is created eagerly, so an
    /// unwritable path fails here — before any measurement runs.
    ///
    /// # Errors
    ///
    /// Returns the error from creating the scratch file (missing parent
    /// directory, read-only directory, …).
    pub fn create(target: impl AsRef<Path>) -> io::Result<Self> {
        let target = target.as_ref().to_path_buf();
        let scratch = scratch_path(&target);
        let file = File::create(&scratch)?;
        Ok(Self::from_parts(
            Box::new(BufWriter::new(file)),
            scratch,
            target,
        ))
    }

    /// Assembles a sink from an explicit writer and paths. This is the
    /// fault-injection seam: tests pass a writer that fails mid-stream to
    /// prove the target is never left truncated.
    pub fn from_parts(
        writer: Box<dyn Write + Send>,
        scratch: PathBuf,
        target: PathBuf,
    ) -> Self {
        Self {
            target,
            scratch,
            state: Mutex::new(JsonlState {
                writer: Some(writer),
                error: None,
            }),
        }
    }

    /// The path the stream will be published at.
    pub fn target(&self) -> &Path {
        &self.target
    }
}

fn scratch_path(target: &Path) -> PathBuf {
    let mut name = target
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "trace.jsonl".into());
    name.push(".tmp");
    target.with_file_name(name)
}

impl TraceSink for JsonlSink {
    fn record(&self, record: &TraceRecord) {
        let mut state = self.state.lock().expect("jsonl sink lock");
        if state.error.is_some() {
            return;
        }
        let Some(writer) = state.writer.as_mut() else {
            return;
        };
        let line = match serde_json::to_string(record) {
            Ok(line) => line,
            Err(e) => {
                state.error = Some(io::Error::new(io::ErrorKind::InvalidData, e));
                return;
            }
        };
        if let Err(e) = writer.write_all(line.as_bytes()).and_then(|()| writer.write_all(b"\n")) {
            state.error = Some(e);
        }
    }

    fn finish(&self) -> io::Result<()> {
        let mut state = self.state.lock().expect("jsonl sink lock");
        let flushed = match state.writer.as_mut() {
            Some(writer) => writer.flush(),
            None => Ok(()),
        };
        // Drop the writer (closing the file) before renaming or removing.
        state.writer = None;
        if let Some(error) = state.error.take() {
            let _ = std::fs::remove_file(&self.scratch);
            return Err(error);
        }
        if let Err(e) = flushed {
            let _ = std::fs::remove_file(&self.scratch);
            return Err(e);
        }
        std::fs::rename(&self.scratch, &self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceEvent, TraceRecord};

    fn record(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            test: Some(0),
            ts_us: 0,
            event: TraceEvent::ProbeIssued { value: seq as f64, speculative: false },
        }
    }

    #[test]
    fn ring_buffer_keeps_order_and_evicts_oldest() {
        let sink = RingBufferSink::with_capacity(2);
        for seq in 0..4 {
            sink.record(&record(seq));
        }
        let seqs: Vec<u64> = sink.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3]);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_publishes_only_on_finish() {
        let dir = std::env::temp_dir().join("cichar_trace_sink_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let target = dir.join("stream.jsonl");
        std::fs::remove_file(&target).ok();
        let sink = JsonlSink::create(&target).expect("writable");
        sink.record(&record(0));
        sink.record(&record(1));
        assert!(!target.exists(), "nothing published before finish");
        sink.finish().expect("commit");
        let text = std::fs::read_to_string(&target).expect("published");
        assert_eq!(text.lines().count(), 2);
        assert!(!scratch_path(&target).exists(), "scratch renamed away");
        std::fs::remove_file(&target).ok();
    }

    #[test]
    fn missing_parent_directory_fails_eagerly() {
        let bogus = std::env::temp_dir()
            .join("cichar_no_such_dir")
            .join("deep")
            .join("stream.jsonl");
        assert!(JsonlSink::create(&bogus).is_err());
    }

    /// A writer that fails after a byte budget — an aborted run mid-write.
    struct DyingWriter {
        budget: usize,
    }

    impl Write for DyingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if buf.len() > self.budget {
                return Err(io::Error::other("tester power loss"));
            }
            self.budget -= buf.len();
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn failing_writer_never_leaves_a_truncated_target() {
        let dir = std::env::temp_dir().join("cichar_trace_sink_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let target = dir.join("dying.jsonl");
        std::fs::remove_file(&target).ok();
        let scratch = scratch_path(&target);
        std::fs::write(&scratch, b"partial").expect("scratch exists");
        let sink = JsonlSink::from_parts(
            Box::new(DyingWriter { budget: 80 }),
            scratch.clone(),
            target.clone(),
        );
        for seq in 0..50 {
            sink.record(&record(seq));
        }
        let err = sink.finish().expect_err("the writer died mid-stream");
        assert_eq!(err.to_string(), "tester power loss");
        assert!(!target.exists(), "no truncated artifact at the target");
        assert!(!scratch.exists(), "scratch cleaned up");
    }

    #[test]
    fn null_sink_finishes_cleanly() {
        NullSink.record(&record(0));
        NullSink.finish().expect("trivially ok");
    }
}
