//! The tracer: per-test spans, deterministic absorption, metrics
//! derivation and per-phase accounting.
//!
//! # Determinism contract
//!
//! Worker threads never write to the sink directly. Each unit of parallel
//! work (one test index) collects its events into a [`SpanTrace`]; the
//! coordinating thread absorbs finished spans **in input-index order** —
//! exactly how measurement ledgers already merge — assigning the global
//! sequence numbers at absorb time. A `threads=1` and a `threads=8` run of
//! the same seeded campaign therefore emit identical event streams (up to
//! wall-clock timestamps) and identical metrics snapshots.

use crate::event::{FaultKind, TraceEvent, TraceRecord};
use crate::metrics::{bump, MetricsRegistry, MetricsSnapshot};
use crate::sink::TraceSink;
use crate::timing::{SpanClock, TimingRegistry, TimingSnapshot};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A per-test event collector handed down through the measurement stack.
///
/// Cloning shares the underlying buffer, so the tester's fault model, the
/// recovery ladder and the search walk all interleave their events in true
/// probe order even though they hold separate clones. A disabled span
/// (the default everywhere tracing is not requested) reduces every
/// operation to one branch on a `None`.
#[derive(Debug, Clone, Default)]
pub struct SpanTrace {
    events: Option<Arc<Mutex<Vec<TraceEvent>>>>,
    clock: Option<Arc<SpanClock>>,
    test: u64,
}

impl SpanTrace {
    /// The inert span: every emit is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled span for `test`, unattached to any tracer — useful in
    /// unit tests that assert on emitted events directly.
    pub fn for_test(test: u64) -> Self {
        Self {
            events: Some(Arc::new(Mutex::new(Vec::new()))),
            clock: None,
            test,
        }
    }

    /// An enabled span for `test` carrying a monotonic [`SpanClock`] — the
    /// form a timing-enabled tracer hands out.
    pub fn for_test_timed(test: u64) -> Self {
        Self {
            events: Some(Arc::new(Mutex::new(Vec::new()))),
            clock: Some(Arc::new(SpanClock::new())),
            test,
        }
    }

    /// Stamps the span's wall-clock end as of now (no-op without a clock,
    /// and on every call after the first).
    ///
    /// The instrumented measurement paths call this the moment a test's
    /// work finishes on its worker thread, so the recorded duration
    /// excludes the coordinator's absorb latency.
    pub fn mark_done(&self) {
        if let Some(clock) = &self.clock {
            clock.mark_done();
        }
    }

    fn duration_ns(&self) -> Option<u64> {
        self.clock.as_ref().map(|clock| clock.duration_ns())
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.events.is_some()
    }

    /// The test index this span belongs to.
    pub fn test_index(&self) -> u64 {
        self.test
    }

    /// Records an event (no-op when disabled).
    pub fn emit(&self, event: TraceEvent) {
        if let Some(events) = &self.events {
            events.lock().expect("span lock").push(event);
        }
    }

    /// Records the event built by `f`, building it only when enabled —
    /// use when constructing the event allocates.
    pub fn emit_with(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(events) = &self.events {
            events.lock().expect("span lock").push(f());
        }
    }

    /// A copy of the collected events.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.events {
            Some(events) => events.lock().expect("span lock").clone(),
            None => Vec::new(),
        }
    }

    fn drain(&self) -> Vec<TraceEvent> {
        match &self.events {
            Some(events) => std::mem::take(&mut *events.lock().expect("span lock")),
            None => Vec::new(),
        }
    }
}

/// One campaign phase's accounting for the run manifest.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseSummary {
    /// The phase name.
    pub name: String,
    /// Wall-clock time spent in the phase, in milliseconds.
    pub wall_ms: u64,
    /// Probe requests resolved during the phase.
    pub probes: u64,
}

struct OpenPhase {
    name: String,
    entered: Instant,
    probes_at_entry: u64,
}

struct TracerCore {
    sink: Arc<dyn TraceSink>,
    metrics: MetricsRegistry,
    seq: AtomicU64,
    started: Instant,
    phase_state: Mutex<(Vec<PhaseSummary>, Option<OpenPhase>)>,
    /// The wall-clock timing sidecar, present only for timing-enabled
    /// tracers ([`TimedTracer`]). Never feeds the event stream: the
    /// normalized trace is byte-identical with and without it.
    timing: Option<Arc<TimingRegistry>>,
}

/// The campaign-level trace handle: creates spans, absorbs them in index
/// order, tracks phases and owns the metrics registry.
///
/// Cheap to clone (an `Arc`); a disabled tracer (the default for every
/// untraced `run` entry point) costs one branch per interaction.
#[derive(Clone, Default)]
pub struct Tracer {
    core: Option<Arc<TracerCore>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// The inert tracer: spans are disabled, absorb is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A tracer recording into `sink`.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Self::build(sink, None)
    }

    fn build(sink: Arc<dyn TraceSink>, timing: Option<Arc<TimingRegistry>>) -> Self {
        Self {
            core: Some(Arc::new(TracerCore {
                sink,
                metrics: MetricsRegistry::new(),
                seq: AtomicU64::new(0),
                started: Instant::now(),
                phase_state: Mutex::new((Vec::new(), None)),
                timing,
            })),
        }
    }

    /// Whether tracing is live.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// A span for test index `test` (disabled when the tracer is; clocked
    /// when the tracer carries a timing sidecar).
    pub fn span(&self, test: u64) -> SpanTrace {
        match &self.core {
            Some(core) if core.timing.is_some() => SpanTrace::for_test_timed(test),
            Some(_) => SpanTrace::for_test(test),
            None => SpanTrace::disabled(),
        }
    }

    /// Absorbs a finished span: stamps its events with the next sequence
    /// numbers, the span's test index and a wall timestamp, forwards them
    /// to the sink, and derives metrics. With a timing sidecar, the span's
    /// wall-clock duration is also folded into the open phase's timing —
    /// after the events are written, so timing can never perturb the
    /// deterministic stream.
    ///
    /// Call this from the coordinating thread in **input-index order** —
    /// that ordering is the whole determinism contract.
    pub fn absorb(&self, span: SpanTrace) {
        let Some(core) = &self.core else { return };
        let events = span.drain();
        core.write(Some(span.test_index()), events);
        if let (Some(timing), Some(dur_ns)) = (&core.timing, span.duration_ns()) {
            timing.record_span(dur_ns);
        }
    }

    /// Records a campaign-scoped event (GA generation, committee epoch)
    /// carrying no test index.
    pub fn emit_campaign(&self, event: TraceEvent) {
        let Some(core) = &self.core else { return };
        core.write(None, vec![event]);
    }

    /// Enters a campaign phase: emits [`TraceEvent::CampaignPhaseChanged`]
    /// and starts the phase's wall/probe accounting, closing any open
    /// phase.
    pub fn phase(&self, name: &str) {
        let Some(core) = &self.core else { return };
        core.write(
            None,
            vec![TraceEvent::CampaignPhaseChanged {
                phase: name.to_string(),
            }],
        );
        let probes = core.metrics.snapshot().probes_resolved;
        let mut state = core.phase_state.lock().expect("phase lock");
        let (summaries, open) = &mut *state;
        if let Some(previous) = open.take() {
            summaries.push(close_phase(previous, probes));
        }
        *open = Some(OpenPhase {
            name: name.to_string(),
            entered: Instant::now(),
            probes_at_entry: probes,
        });
        if let Some(timing) = &core.timing {
            timing.enter_phase(name);
        }
    }

    /// The per-phase summaries so far; the currently open phase is closed
    /// as of now.
    pub fn phases(&self) -> Vec<PhaseSummary> {
        let Some(core) = &self.core else {
            return Vec::new();
        };
        let probes = core.metrics.snapshot().probes_resolved;
        let mut state = core.phase_state.lock().expect("phase lock");
        let (summaries, open) = &mut *state;
        if let Some(previous) = open.take() {
            summaries.push(close_phase(previous, probes));
        }
        summaries.clone()
    }

    /// A deterministic snapshot of the metrics registry.
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.core {
            Some(core) => core.metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// A snapshot of the wall-clock timing sidecar, or `None` for tracers
    /// without one (everything except a [`TimedTracer`]).
    pub fn timings(&self) -> Option<TimingSnapshot> {
        self.core
            .as_ref()
            .and_then(|core| core.timing.as_ref())
            .map(|timing| timing.snapshot())
    }

    /// Flushes and publishes the sink (the atomic commit for file-backed
    /// sinks). A disabled tracer finishes trivially.
    ///
    /// # Errors
    ///
    /// Propagates the sink's latched or commit-time I/O error.
    pub fn finish(&self) -> io::Result<()> {
        match &self.core {
            Some(core) => core.sink.finish(),
            None => Ok(()),
        }
    }
}

/// A [`Tracer`] with the wall-clock timing sidecar armed: spans carry a
/// monotonic [`SpanClock`], and absorbed durations aggregate per phase in
/// a [`TimingRegistry`].
///
/// Derefs to [`Tracer`], so every traced entry point accepts it
/// unchanged; the event stream it produces is **byte-identical** to an
/// untimed tracer's (timings are a separate artifact — they land in
/// `RunManifest.timings`, never in the trace). Golden tests assert that
/// identity.
///
/// # Examples
///
/// ```
/// use cichar_trace::{NullSink, TimedTracer, TraceEvent};
/// use std::sync::Arc;
///
/// let timed = TimedTracer::new(Arc::new(NullSink));
/// timed.phase("dsv");
/// let span = timed.span(0);
/// span.emit(TraceEvent::ProbeIssued { value: 110.0, speculative: false });
/// span.mark_done();
/// timed.absorb(span);
/// let timings = timed.timing_snapshot();
/// assert_eq!(timings.phases[0].phase, "dsv");
/// assert_eq!(timings.phases[0].spans, 1);
/// ```
#[derive(Clone)]
pub struct TimedTracer {
    tracer: Tracer,
    registry: Arc<TimingRegistry>,
}

impl std::fmt::Debug for TimedTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimedTracer")
            .field("tracer", &self.tracer)
            .finish_non_exhaustive()
    }
}

impl TimedTracer {
    /// A timing-enabled tracer recording events into `sink`.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        let registry = Arc::new(TimingRegistry::new());
        Self {
            tracer: Tracer::build(sink, Some(registry.clone())),
            registry,
        }
    }

    /// The underlying tracer handle (also reachable through deref).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The timing sidecar's current per-phase statistics.
    pub fn timing_snapshot(&self) -> TimingSnapshot {
        self.registry.snapshot()
    }
}

impl std::ops::Deref for TimedTracer {
    type Target = Tracer;

    fn deref(&self) -> &Tracer {
        &self.tracer
    }
}

fn close_phase(open: OpenPhase, probes_now: u64) -> PhaseSummary {
    PhaseSummary {
        name: open.name,
        wall_ms: open.entered.elapsed().as_millis() as u64,
        probes: probes_now.saturating_sub(open.probes_at_entry),
    }
}

impl TracerCore {
    /// Sequences `events` into the sink and folds them into the metrics.
    fn write(&self, test: Option<u64>, events: Vec<TraceEvent>) {
        let ts_us = self.started.elapsed().as_micros() as u64;
        // Steps since the last SearchStarted: searches within one span are
        // strictly sequential, so a local counter suffices.
        let mut steps_in_search = 0u64;
        for event in events {
            self.derive_metrics(&event, &mut steps_in_search);
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            self.sink.record(&TraceRecord {
                seq,
                test,
                ts_us,
                event,
            });
        }
    }

    fn derive_metrics(&self, event: &TraceEvent, steps_in_search: &mut u64) {
        let c = &self.metrics.counters;
        match event {
            TraceEvent::CampaignPhaseChanged { .. } => bump(&c.phases, 1),
            TraceEvent::ProbeIssued { speculative, .. } => {
                bump(&c.probes_issued, 1);
                if *speculative {
                    bump(&c.probes_speculative, 1);
                }
            }
            TraceEvent::ProbeResolved { cached, .. } => {
                bump(&c.probes_resolved, 1);
                if *cached {
                    bump(&c.probes_cached, 1);
                }
            }
            TraceEvent::SearchStarted { .. } => {
                bump(&c.searches_started, 1);
                *steps_in_search = 0;
            }
            TraceEvent::StepTaken { .. } => {
                bump(&c.search_steps, 1);
                *steps_in_search += 1;
            }
            TraceEvent::Bracketed { .. } => bump(&c.brackets, 1),
            TraceEvent::SearchFinished {
                converged, probes, ..
            } => {
                bump(&c.searches_finished, 1);
                if *converged {
                    bump(&c.searches_converged, 1);
                }
                self.metrics.hist_probes_per_search.observe(*probes);
                self.metrics.hist_search_steps.observe(*steps_in_search);
                *steps_in_search = 0;
            }
            TraceEvent::RetryScheduled {
                attempt,
                backoff_us,
            } => {
                bump(&c.retries, 1);
                self.metrics.hist_retry_depth.observe(*attempt);
                // Integer nanoseconds: summation stays exact and
                // order-independent.
                self.metrics
                    .hist_backoff_ns
                    .observe((backoff_us * 1000.0).round() as u64);
            }
            TraceEvent::VoteResolved { .. } => bump(&c.vote_rounds, 1),
            TraceEvent::FaultInjected { kind } => match kind {
                FaultKind::Dropout => bump(&c.faults_dropout, 1),
                FaultKind::Flip => bump(&c.faults_flip, 1),
                FaultKind::Stuck => bump(&c.faults_stuck, 1),
                FaultKind::Abort => bump(&c.faults_abort, 1),
                FaultKind::Stall => bump(&c.faults_stall, 1),
            },
            TraceEvent::Quarantined { .. } => bump(&c.quarantined, 1),
            TraceEvent::WatchdogFired { .. } => bump(&c.watchdog_timeouts, 1),
            TraceEvent::SiteBreakerTripped { .. } => bump(&c.breaker_trips, 1),
            TraceEvent::GaGenerationEvaluated { .. } => bump(&c.ga_generations, 1),
            TraceEvent::CommitteeEpochFinished { .. } => bump(&c.committee_epochs, 1),
            TraceEvent::AlarmRaised { .. } => bump(&c.alarms_raised, 1),
            TraceEvent::AlarmCleared { .. } => bump(&c.alarms_cleared, 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceVerdict;
    use crate::sink::RingBufferSink;

    fn search_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::SearchStarted {
                strategy: String::from("stp"),
                order: String::from("eq3"),
                window: [80.0, 130.0],
                reference: Some(110.0),
                sf: Some(1.0),
            },
            TraceEvent::ProbeIssued { value: 110.0, speculative: false },
            TraceEvent::ProbeResolved {
                value: 110.0,
                verdict: TraceVerdict::Pass,
                cached: false,
            },
            TraceEvent::StepTaken {
                iteration: 1,
                step_factor: 1.0,
                value: 111.0,
                clamped: false,
                verdict: TraceVerdict::Fail,
            },
            TraceEvent::Bracketed {
                pass_value: 110.0,
                fail_value: 111.0,
            },
            TraceEvent::SearchFinished {
                strategy: String::from("stp"),
                trip_point: Some(110.0),
                converged: true,
                probes: 2,
            },
        ]
    }

    #[test]
    fn disabled_tracer_and_span_are_inert() {
        let tracer = Tracer::disabled();
        let span = tracer.span(0);
        assert!(!tracer.is_enabled());
        assert!(!span.is_enabled());
        span.emit(TraceEvent::ProbeIssued { value: 1.0, speculative: false });
        assert!(span.events().is_empty());
        tracer.absorb(span);
        assert_eq!(tracer.metrics(), MetricsSnapshot::default());
        tracer.finish().expect("trivially ok");
    }

    #[test]
    fn absorb_sequences_and_stamps_test_index() {
        let sink = Arc::new(RingBufferSink::unbounded());
        let tracer = Tracer::new(sink.clone());
        for test in 0..3u64 {
            let span = tracer.span(test);
            for event in search_events() {
                span.emit(event);
            }
            tracer.absorb(span);
        }
        let records = sink.records();
        assert_eq!(records.len(), 18);
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..18).collect::<Vec<u64>>());
        assert_eq!(records[0].test, Some(0));
        assert_eq!(records[17].test, Some(2));
    }

    #[test]
    fn metrics_are_derived_from_the_event_stream() {
        let tracer = Tracer::new(Arc::new(RingBufferSink::unbounded()));
        let span = tracer.span(0);
        for event in search_events() {
            span.emit(event);
        }
        span.emit(TraceEvent::RetryScheduled {
            attempt: 1,
            backoff_us: 100.0,
        });
        tracer.absorb(span);
        let m = tracer.metrics();
        assert_eq!(m.probes_resolved, 1);
        assert_eq!(m.probes_issued, 1);
        assert_eq!(m.probes_cached, 0);
        assert_eq!(m.searches_started, 1);
        assert_eq!(m.searches_finished, 1);
        assert_eq!(m.searches_converged, 1);
        assert_eq!(m.search_steps, 1);
        assert_eq!(m.brackets, 1);
        assert_eq!(m.retries, 1);
        assert_eq!(m.hist_probes_per_search.count, 1);
        assert_eq!(m.hist_probes_per_search.sum, 2);
        assert_eq!(m.hist_search_steps.sum, 1);
        assert_eq!(m.hist_backoff_ns.sum, 100_000);
        assert_eq!(m.check_invariants(), None);
    }

    #[test]
    fn cloned_spans_share_one_buffer() {
        let span = SpanTrace::for_test(5);
        let clone = span.clone();
        clone.emit(TraceEvent::ProbeIssued { value: 1.0, speculative: false });
        span.emit(TraceEvent::ProbeResolved {
            value: 1.0,
            verdict: TraceVerdict::Pass,
            cached: false,
        });
        assert_eq!(span.events().len(), 2, "interleaved in emit order");
        assert_eq!(clone.test_index(), 5);
    }

    #[test]
    fn timed_tracer_records_span_durations_per_phase() {
        let sink = Arc::new(RingBufferSink::unbounded());
        let timed = TimedTracer::new(sink.clone());
        timed.phase("full_range");
        for test in 0..2u64 {
            let span = timed.span(test);
            for event in search_events() {
                span.emit(event);
            }
            span.mark_done();
            timed.absorb(span);
        }
        timed.phase("stp");
        let span = timed.span(2);
        span.emit(TraceEvent::ProbeIssued { value: 1.0, speculative: false });
        timed.absorb(span); // unmarked: falls back to absorb-time duration
        let timings = timed.timing_snapshot();
        assert_eq!(timings.phases.len(), 2);
        assert_eq!(timings.phases[0].phase, "full_range");
        assert_eq!(timings.phases[0].spans, 2);
        assert!(timings.phases[0].total_ns > 0);
        assert_eq!(timings.phases[1].spans, 1);
        assert_eq!(timed.timings(), Some(timings), "reachable via the Tracer handle");
        // The sidecar never touches the stream: record count matches an
        // untimed tracer's for the same campaign.
        assert_eq!(sink.records().len(), 2 * 6 + 1 + 2, "events + phase changes");
    }

    #[test]
    fn untimed_tracer_has_no_timing_sidecar() {
        let tracer = Tracer::new(Arc::new(RingBufferSink::unbounded()));
        assert_eq!(tracer.timings(), None);
        let span = tracer.span(0);
        span.mark_done(); // a clockless span ignores the stamp
        tracer.absorb(span);
        assert_eq!(tracer.timings(), None);
        assert_eq!(Tracer::disabled().timings(), None);
    }

    #[test]
    fn phases_account_walls_and_probes() {
        let tracer = Tracer::new(Arc::new(RingBufferSink::unbounded()));
        tracer.phase("march");
        let span = tracer.span(0);
        span.emit(TraceEvent::ProbeResolved {
            value: 1.0,
            verdict: TraceVerdict::Pass,
            cached: false,
        });
        tracer.absorb(span);
        tracer.phase("random");
        let phases = tracer.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].name, "march");
        assert_eq!(phases[0].probes, 1);
        assert_eq!(phases[1].name, "random");
        assert_eq!(phases[1].probes, 0);
        assert_eq!(tracer.metrics().phases, 2);
    }
}
