//! Run manifests: the one-file summary artifact of a traced campaign.

use crate::metrics::MetricsSnapshot;
use crate::telemetry::HealthSection;
use crate::timing::TimingSnapshot;
use crate::tracer::{PhaseSummary, Tracer};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::process::Command;

/// The manifest of one campaign run: everything needed to identify,
/// reproduce and account for it.
///
/// Serializable as a JSON artifact (the repro binaries save it through
/// `cichar_core::db::save_artifact`, which commits atomically) and
/// renderable as a summary table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// The campaign name (`fig2`, `fig3`, `table1`, …).
    pub campaign: String,
    /// The RNG seed the campaign ran with.
    pub seed: u64,
    /// Worker threads of the execution policy.
    pub threads: u64,
    /// The code version: `git describe --always --dirty` when available,
    /// the crate version otherwise.
    pub version: String,
    /// Campaign configuration, as sorted key/value pairs.
    pub config: Vec<(String, String)>,
    /// The final metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// Per-phase wall-clock and probe totals, in phase order.
    pub phases: Vec<PhaseSummary>,
    /// The wall-clock timing sidecar (per-phase span-duration
    /// histograms), present when the run used a
    /// [`TimedTracer`](crate::TimedTracer). `None` parses from manifests
    /// written before timings existed.
    pub timings: Option<TimingSnapshot>,
    /// Hardware threads of the host the run executed on — recorded so a
    /// downstream gate can tell a real speedup regression from a
    /// 1-core CI box that never had the parallelism to begin with.
    /// `None` parses from manifests written before this field existed.
    #[serde(default)]
    pub hardware_threads: Option<u64>,
    /// Peak resident set size of the process, in bytes, when the platform
    /// exposes it (Linux `VmHWM`). `None` parses from older manifests and
    /// on platforms without the counter.
    #[serde(default)]
    pub peak_rss_bytes: Option<u64>,
    /// Durability accounting for journaled campaigns: how much of the run
    /// was replayed from a checkpoint journal and what the self-healing
    /// machinery did. `None` for unjournaled runs and parses from
    /// manifests written before the section existed.
    #[serde(default)]
    pub recovery: Option<RecoverySection>,
    /// Live-telemetry health accounting: heartbeats emitted and alarms
    /// raised/cleared. `None` for runs without `--telemetry` and parses
    /// from manifests written before the section existed.
    #[serde(default)]
    pub health: Option<HealthSection>,
}

/// The durability section of a [`RunManifest`]: journal-replay and
/// self-healing accounting for a crash-safe wafer campaign.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecoverySection {
    /// Whether the run resumed from an existing journal (as opposed to
    /// writing one from scratch).
    pub resumed: bool,
    /// Touchdown chunks replayed from the journal instead of re-measured.
    pub chunks_replayed: u64,
    /// Total touchdown chunks in the campaign.
    pub chunks_total: u64,
    /// Touchdowns replayed from the journal.
    pub touchdowns_replayed: u64,
    /// Wafer entries replayed from the journal.
    pub entries_replayed: u64,
    /// Tests quarantined by the stall watchdog.
    pub watchdog_timeouts: u64,
    /// Site health breakers latched open during the run.
    pub breaker_trips: u64,
    /// Site positions excluded from later touchdowns by their breaker.
    pub quarantined_sites: Vec<u64>,
}

impl RunManifest {
    /// Starts a manifest for `campaign`.
    pub fn new(campaign: &str, seed: u64, threads: usize) -> Self {
        Self {
            campaign: campaign.to_string(),
            seed,
            threads: threads as u64,
            version: describe_version(),
            config: Vec::new(),
            metrics: MetricsSnapshot::default(),
            phases: Vec::new(),
            timings: None,
            hardware_threads: None,
            peak_rss_bytes: None,
            recovery: None,
            health: None,
        }
    }

    /// Records the host environment: hardware thread count now, and the
    /// process's peak resident set size where the platform exposes it.
    /// Call this *after* the campaign so the RSS high-water mark covers
    /// the measured work.
    pub fn with_host(mut self) -> Self {
        self.hardware_threads = std::thread::available_parallelism()
            .ok()
            .map(|n| n.get() as u64);
        self.peak_rss_bytes = peak_rss_bytes();
        self
    }

    /// Adds one configuration entry (kept sorted by key for deterministic
    /// serialization).
    pub fn with_config(mut self, key: &str, value: impl ToString) -> Self {
        self.config.push((key.to_string(), value.to_string()));
        self.config.sort();
        self
    }

    /// Captures the tracer's final metrics snapshot, phase summaries and
    /// (when the tracer carries a timing sidecar) the timing section.
    pub fn capture(mut self, tracer: &Tracer) -> Self {
        self.metrics = tracer.metrics();
        self.phases = tracer.phases();
        self.timings = tracer.timings().filter(|t| !t.is_empty());
        self
    }

    /// Total wall-clock milliseconds across the recorded phases.
    pub fn total_wall_ms(&self) -> u64 {
        self.phases.iter().map(|p| p.wall_ms).sum()
    }

    /// Non-speculative probe verdicts spent per finished trip-point
    /// search — the probe-economy headline number. Speculative pre-issues
    /// are subtracted so eq. 1 accounting stays honest; `None` when the
    /// run finished no searches.
    pub fn probes_per_trip(&self) -> Option<f64> {
        if self.metrics.searches_finished == 0 {
            return None;
        }
        let honest = self
            .metrics
            .probes_resolved
            .saturating_sub(self.metrics.probes_speculative);
        Some(honest as f64 / self.metrics.searches_finished as f64)
    }

    /// Finished trip-point searches per wall-clock second — the
    /// wafer-throughput headline. `None` when the run finished no
    /// searches or recorded no wall time.
    pub fn trips_per_second(&self) -> Option<f64> {
        let wall_ms = self.total_wall_ms();
        if wall_ms == 0 || self.metrics.searches_finished == 0 {
            return None;
        }
        Some(self.metrics.searches_finished as f64 * 1000.0 / wall_ms as f64)
    }

    /// [`Self::trips_per_second`] normalized by worker threads — the
    /// number that stays comparable when baseline and current ran on
    /// hosts with different core counts.
    pub fn trips_per_second_per_core(&self) -> Option<f64> {
        self.trips_per_second()
            .map(|tps| tps / self.threads.max(1) as f64)
    }

    /// The manifest as a human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run manifest: {} (seed {:#x}, {} threads, version {})",
            self.campaign, self.seed, self.threads, self.version
        );
        if !self.config.is_empty() {
            let _ = writeln!(out, "  config:");
            for (key, value) in &self.config {
                let _ = writeln!(out, "    {key} = {value}");
            }
        }
        let _ = writeln!(
            out,
            "  {:<14} {:>10} {:>10}",
            "phase", "wall ms", "probes"
        );
        for phase in &self.phases {
            let _ = writeln!(
                out,
                "  {:<14} {:>10} {:>10}",
                phase.name, phase.wall_ms, phase.probes
            );
        }
        let _ = writeln!(
            out,
            "  {:<14} {:>10} {:>10}",
            "total",
            self.total_wall_ms(),
            self.metrics.probes_resolved
        );
        let m = &self.metrics;
        let _ = writeln!(
            out,
            "  probes: {} resolved ({} issued, {} cached, {} speculative) | searches: {}/{} converged | steps: {}",
            m.probes_resolved,
            m.probes_issued,
            m.probes_cached,
            m.probes_speculative,
            m.searches_converged,
            m.searches_finished,
            m.search_steps
        );
        if let Some(ppt) = self.probes_per_trip() {
            let _ = writeln!(out, "  probe economy: {ppt:.2} non-speculative probes/trip");
        }
        if let (Some(tps), Some(per_core)) =
            (self.trips_per_second(), self.trips_per_second_per_core())
        {
            let _ = writeln!(
                out,
                "  throughput: {tps:.1} trips/s ({per_core:.1} trips/s per core)"
            );
        }
        if self.hardware_threads.is_some() || self.peak_rss_bytes.is_some() {
            let hw = self
                .hardware_threads
                .map_or("unknown".to_string(), |n| n.to_string());
            // RSS accounting is best-effort: hosts without a /proc VmHWM
            // counter record None, and the manifest says so explicitly
            // rather than implying a missing measurement step.
            let rss = self.peak_rss_bytes.map_or(
                "unavailable (no VmHWM counter on this host)".to_string(),
                |b| format!("{:.1} MiB", b as f64 / (1 << 20) as f64),
            );
            let _ = writeln!(out, "  host: {hw} hardware threads | peak rss: {rss}");
        }
        let _ = writeln!(
            out,
            "  recovery: {} retries, {} votes, {} quarantined | faults: {} dropout, {} flip, {} stuck, {} abort",
            m.retries,
            m.vote_rounds,
            m.quarantined,
            m.faults_dropout,
            m.faults_flip,
            m.faults_stuck,
            m.faults_abort
        );
        if let Some(rec) = &self.recovery {
            let _ = writeln!(
                out,
                "  durability: {} {}/{} chunks replayed ({} touchdowns, {} entries) | {} watchdog timeouts, {} breaker trips{}",
                if rec.resumed { "resumed," } else { "journaled," },
                rec.chunks_replayed,
                rec.chunks_total,
                rec.touchdowns_replayed,
                rec.entries_replayed,
                rec.watchdog_timeouts,
                rec.breaker_trips,
                if rec.quarantined_sites.is_empty() {
                    String::new()
                } else {
                    format!(" | quarantined sites: {:?}", rec.quarantined_sites)
                }
            );
        }
        if let Some(health) = &self.health {
            let _ = writeln!(
                out,
                "  health: {} heartbeats | {} alarms raised, {} cleared{}",
                health.heartbeats,
                health.alarms_raised,
                health.alarms_cleared,
                if health.active_alarms.is_empty() {
                    String::new()
                } else {
                    format!(" | still active: {}", health.active_alarms.join(", "))
                }
            );
        }
        if let Some(timings) = &self.timings {
            let _ = writeln!(
                out,
                "  span timings ({} spans, {:.1} ms total):",
                timings.spans(),
                timings.total_ns() as f64 / 1e6
            );
            let _ = writeln!(
                out,
                "    {:<14} {:>7} {:>11} {:>11} {:>11} {:>11}",
                "phase", "spans", "total ms", "mean us", "min us", "max us"
            );
            for phase in &timings.phases {
                let _ = writeln!(
                    out,
                    "    {:<14} {:>7} {:>11.1} {:>11.1} {:>11.1} {:>11.1}",
                    phase.phase,
                    phase.spans,
                    phase.total_ns as f64 / 1e6,
                    phase.mean_ns() as f64 / 1e3,
                    phase.min_ns as f64 / 1e3,
                    phase.max_ns as f64 / 1e3
                );
            }
        }
        out
    }
}

/// The process's peak resident set size in bytes, read from the
/// platform's high-water-mark counter (Linux `VmHWM`). `None` where the
/// counter is unavailable — callers treat memory accounting as an
/// optional metric, never a hard requirement, and the manifest renders an
/// explicit "unavailable" note instead of failing.
pub fn peak_rss_bytes() -> Option<u64> {
    peak_rss_bytes_from(Path::new("/proc/self/status"))
}

/// Parses the `VmHWM:` high-water mark out of a `/proc/<pid>/status`-shaped
/// file. Split out of [`peak_rss_bytes`] so the degradation paths — no
/// `/proc` filesystem, a status file without the counter, a malformed
/// value — are testable on any host: every failure degrades to `None`.
pub fn peak_rss_bytes_from(path: &Path) -> Option<u64> {
    let status = std::fs::read_to_string(path).ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// The code version for manifests: `git describe --always --dirty` when
/// the binary runs inside a git checkout, the crate version otherwise.
pub fn describe_version() -> String {
    let described = Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    described.unwrap_or_else(|| format!("v{}", env!("CARGO_PKG_VERSION")))
}

/// Verifies that `path` can be created and written, by creating and
/// removing a probe file next to it. Repro binaries call this eagerly so
/// an unwritable `--manifest` destination fails before hours of
/// measurement, not after.
///
/// # Errors
///
/// Returns the underlying I/O error (read-only directory, missing parent).
pub fn ensure_writable(path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "artifact".into());
    name.push(".probe");
    let probe = path.with_file_name(name);
    std::fs::write(&probe, b"")?;
    std::fs::remove_file(&probe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_through_json() {
        let manifest = RunManifest::new("fig2", 0xDA7E_2005, 4)
            .with_config("tests", 120)
            .with_config("scale", "quick");
        let json = serde_json::to_string(&manifest).expect("serializes");
        let back: RunManifest = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, manifest);
        // Config is sorted by key.
        assert_eq!(back.config[0].0, "scale");
    }

    #[test]
    fn render_mentions_every_phase_and_total() {
        let mut manifest = RunManifest::new("table1", 7, 1);
        manifest.phases = vec![
            PhaseSummary {
                name: String::from("march"),
                wall_ms: 10,
                probes: 100,
            },
            PhaseSummary {
                name: String::from("nnga"),
                wall_ms: 20,
                probes: 300,
            },
        ];
        manifest.metrics.probes_resolved = 400;
        let table = manifest.render();
        assert!(table.contains("march"), "{table}");
        assert!(table.contains("nnga"), "{table}");
        assert!(table.contains("total"), "{table}");
        assert_eq!(manifest.total_wall_ms(), 30);
    }

    #[test]
    fn manifest_with_timings_round_trips_and_renders() {
        use crate::sink::NullSink;
        use crate::tracer::TimedTracer;
        use std::sync::Arc;

        let timed = TimedTracer::new(Arc::new(NullSink));
        timed.phase("dsv");
        let span = timed.span(0);
        span.emit(crate::event::TraceEvent::ProbeIssued { value: 1.0, speculative: false });
        span.mark_done();
        timed.absorb(span);
        let manifest = RunManifest::new("fig2", 1, 1).capture(&timed);
        let timings = manifest.timings.as_ref().expect("timing sidecar captured");
        assert_eq!(timings.phases[0].phase, "dsv");
        let json = serde_json::to_string(&manifest).expect("serializes");
        let back: RunManifest = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, manifest);
        let table = manifest.render();
        assert!(table.contains("span timings"), "{table}");
        assert!(table.contains("mean us"), "{table}");
    }

    #[test]
    fn manifests_without_a_timings_field_still_parse() {
        // A pre-timings, pre-host-accounting manifest: the fields are
        // simply absent.
        let manifest = RunManifest::new("fig3", 2, 4);
        let json = serde_json::to_string(&manifest)
            .expect("serializes")
            .replace(",\"timings\":null", "")
            .replace(",\"hardware_threads\":null", "")
            .replace(",\"peak_rss_bytes\":null", "")
            .replace(",\"recovery\":null", "")
            .replace(",\"health\":null", "");
        assert!(!json.contains("timings"), "{json}");
        assert!(!json.contains("hardware_threads"), "{json}");
        assert!(!json.contains("recovery"), "{json}");
        assert!(!json.contains("health"), "{json}");
        let back: RunManifest = serde_json::from_str(&json).expect("old manifests parse");
        assert_eq!(back.timings, None);
        assert_eq!(back.hardware_threads, None);
        assert_eq!(back.peak_rss_bytes, None);
        assert_eq!(back.recovery, None);
        assert_eq!(back.health, None);
        assert!(!back.render().contains("span timings"));
        assert!(!back.render().contains("host:"));
        assert!(!back.render().contains("durability:"));
        assert!(!back.render().contains("health:"));
    }

    #[test]
    fn recovery_section_round_trips_and_renders() {
        let mut manifest = RunManifest::new("wafer", 3, 2);
        manifest.recovery = Some(RecoverySection {
            resumed: true,
            chunks_replayed: 2,
            chunks_total: 3,
            touchdowns_replayed: 64,
            entries_replayed: 256,
            watchdog_timeouts: 4,
            breaker_trips: 1,
            quarantined_sites: vec![2],
        });
        let json = serde_json::to_string(&manifest).expect("serializes");
        let back: RunManifest = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, manifest);
        let table = manifest.render();
        assert!(table.contains("resumed, 2/3 chunks replayed"), "{table}");
        assert!(table.contains("4 watchdog timeouts, 1 breaker trips"), "{table}");
        assert!(table.contains("quarantined sites: [2]"), "{table}");
    }

    #[test]
    fn trips_per_second_derives_from_searches_and_wall_time() {
        let mut manifest = RunManifest::new("wafer", 1, 4);
        assert_eq!(manifest.trips_per_second(), None, "no searches, no wall");
        manifest.metrics.searches_finished = 500;
        manifest.phases = vec![PhaseSummary {
            name: String::from("wafer"),
            wall_ms: 2000,
            probes: 5000,
        }];
        assert_eq!(manifest.trips_per_second(), Some(250.0));
        assert_eq!(manifest.trips_per_second_per_core(), Some(62.5));
        let table = manifest.render();
        assert!(table.contains("250.0 trips/s (62.5 trips/s per core)"), "{table}");
    }

    #[test]
    fn with_host_records_hardware_threads_and_linux_peak_rss() {
        let manifest = RunManifest::new("wafer", 1, 4).with_host();
        assert!(manifest.hardware_threads.is_some_and(|n| n >= 1));
        if cfg!(target_os = "linux") {
            let rss = manifest.peak_rss_bytes.expect("VmHWM available on Linux");
            assert!(rss > 1 << 20, "peak rss {rss} should exceed a MiB");
        }
        assert!(manifest.render().contains("host:"));
    }

    #[test]
    fn probes_per_trip_subtracts_speculation() {
        let mut manifest = RunManifest::new("fig2", 1, 1);
        assert_eq!(manifest.probes_per_trip(), None, "no searches yet");
        manifest.metrics.searches_finished = 10;
        manifest.metrics.probes_resolved = 130;
        manifest.metrics.probes_speculative = 30;
        assert_eq!(manifest.probes_per_trip(), Some(10.0));
        let table = manifest.render();
        assert!(table.contains("10.00 non-speculative probes/trip"), "{table}");
    }

    #[test]
    fn health_section_round_trips_and_renders() {
        use crate::telemetry::AlarmIncident;

        let mut manifest = RunManifest::new("wafer", 9, 8);
        manifest.health = Some(HealthSection {
            heartbeats: 12,
            alarms_raised: 2,
            alarms_cleared: 1,
            active_alarms: vec![String::from("stall_silence")],
            incidents: vec![AlarmIncident {
                alarm: String::from("stall_silence"),
                raised_at: 7,
                cleared_at: None,
                detail: String::from("no probe resolved for 20.0 simulated ms"),
            }],
        });
        let json = serde_json::to_string(&manifest).expect("serializes");
        let back: RunManifest = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, manifest);
        let table = manifest.render();
        assert!(table.contains("health: 12 heartbeats"), "{table}");
        assert!(table.contains("2 alarms raised, 1 cleared"), "{table}");
        assert!(table.contains("still active: stall_silence"), "{table}");
    }

    #[test]
    fn peak_rss_reader_degrades_to_none_off_linux_shapes() {
        let dir = std::env::temp_dir().join("cichar_rss_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        // No /proc at all: the status file simply does not exist.
        assert_eq!(peak_rss_bytes_from(&dir.join("no_such_status")), None);
        // A status file without the VmHWM counter (e.g. a non-Linux shim).
        let no_counter = dir.join("status_no_vmhwm");
        std::fs::write(&no_counter, "Name:\tcichar\nVmRSS:\t 10 kB\n").expect("writable");
        assert_eq!(peak_rss_bytes_from(&no_counter), None);
        // A malformed value degrades instead of panicking.
        let malformed = dir.join("status_malformed");
        std::fs::write(&malformed, "VmHWM:\tlots kB\n").expect("writable");
        assert_eq!(peak_rss_bytes_from(&malformed), None);
        // The genuine shape parses (kB -> bytes).
        let good = dir.join("status_good");
        std::fs::write(&good, "Name:\tcichar\nVmHWM:\t  2048 kB\n").expect("writable");
        assert_eq!(peak_rss_bytes_from(&good), Some(2048 * 1024));
    }

    #[test]
    fn render_notes_rss_unavailability_instead_of_dropping_the_host_line() {
        let mut manifest = RunManifest::new("wafer", 1, 4);
        manifest.hardware_threads = Some(8);
        manifest.peak_rss_bytes = None;
        let table = manifest.render();
        assert!(
            table.contains("peak rss: unavailable (no VmHWM counter on this host)"),
            "{table}"
        );
    }

    #[test]
    fn version_is_never_empty() {
        assert!(!describe_version().is_empty());
    }

    #[test]
    fn ensure_writable_accepts_tmp_and_rejects_missing_dirs() {
        let dir = std::env::temp_dir().join("cichar_manifest_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        ensure_writable(dir.join("m.json")).expect("tmp is writable");
        assert!(ensure_writable(
            std::env::temp_dir()
                .join("cichar_no_such_dir")
                .join("m.json")
        )
        .is_err());
    }
}
