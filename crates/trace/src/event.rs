//! The typed event taxonomy of the observability layer.
//!
//! Events describe what the characterization machinery *did*, not what it
//! concluded — conclusions live in the reports and ledgers. Every event is
//! serializable so sinks can persist a campaign as one JSON value per line
//! and golden tests can diff normalized streams.

use serde::{Deserialize, Serialize};

/// `skip_serializing_if` helper: omit a `false` flag from the wire format.
#[allow(clippy::trivially_copy_pass_by_ref)]
fn is_false(flag: &bool) -> bool {
    !*flag
}

/// A probe verdict as seen by the trace layer.
///
/// Mirrors `cichar_search::Probe` without depending on it — the trace crate
/// sits below every instrumented crate in the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceVerdict {
    /// The device met the specification at the probed value.
    Pass,
    /// The device violated the specification at the probed value.
    Fail,
    /// The tester produced no verdict (dropout, abort, dead channel).
    Invalid,
}

/// The kind of tester fault the fault model injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A probe contact dropout: the strobe returned no verdict.
    Dropout,
    /// A transient verdict flip.
    Flip,
    /// A stuck channel replaying its latched verdict.
    Stuck,
    /// A session abort burst starting.
    Abort,
    /// A hung strobe: the verdict arrived, but only after a long simulated
    /// stall on the tester channel.
    Stall,
}

/// One structured trace event.
///
/// Serialized externally tagged (`{"StepTaken": {...}}`), one event per
/// line in a [`JsonlSink`](crate::JsonlSink) stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A campaign entered a new phase (march baseline, random sweep,
    /// learning, optimization, …).
    CampaignPhaseChanged {
        /// The phase name.
        phase: String,
    },
    /// A physical measurement is about to be issued to the tester.
    ///
    /// Cache hits resolve without an issue event, which is what makes the
    /// `probes == cached + issued` metrics invariant hold by construction.
    ProbeIssued {
        /// The parameter value being probed.
        value: f64,
        /// Whether this probe was pre-issued speculatively (e.g. a child of
        /// the next bisection level) and may be discarded unused. Skipped
        /// when `false` so pre-existing traces stay byte-identical.
        #[serde(default, skip_serializing_if = "is_false")]
        speculative: bool,
    },
    /// A probe request produced a verdict.
    ProbeResolved {
        /// The parameter value that was probed.
        value: f64,
        /// The verdict.
        verdict: TraceVerdict,
        /// Whether the verdict came from the oracle memo cache instead of
        /// a physical measurement.
        cached: bool,
    },
    /// A trip-point search began.
    SearchStarted {
        /// The algorithm: `stp`, `successive_approximation`, `binary`,
        /// `linear`.
        strategy: String,
        /// The region order: `eq3` (pass below fail) or `eq4` (pass above
        /// fail), the paper's two step-factor orientations.
        order: String,
        /// The generous range `CR` as `[start, end]`.
        window: [f64; 2],
        /// The reference trip point anchoring an STP walk, if any.
        reference: Option<f64>,
        /// The programmable search factor `SF`, for STP.
        sf: Option<f64>,
    },
    /// One iteration of the STP window walk (eqs. 3/4).
    StepTaken {
        /// The iteration counter `IT` (1-based).
        iteration: u64,
        /// The step factor `SF(IT) = SF·IT` of this iteration.
        step_factor: f64,
        /// The probed parameter value after clamping.
        value: f64,
        /// Whether the growing window saturated at the `CR` edge.
        clamped: bool,
        /// The verdict at `value`.
        verdict: TraceVerdict,
    },
    /// A search bracketed the trip point between a pass and a fail.
    Bracketed {
        /// The passing side of the bracket.
        pass_value: f64,
        /// The failing side of the bracket.
        fail_value: f64,
    },
    /// A trip-point search finished.
    SearchFinished {
        /// The algorithm (same names as [`TraceEvent::SearchStarted`]).
        strategy: String,
        /// The reported trip point, when converged.
        trip_point: Option<f64>,
        /// Whether the search converged.
        converged: bool,
        /// Probe requests the search consumed.
        probes: u64,
    },
    /// A silent strobe is being retried after an exponential backoff.
    RetryScheduled {
        /// The retry attempt number (1-based).
        attempt: u64,
        /// The simulated settle wait before this retry, in microseconds.
        backoff_us: f64,
    },
    /// A k-of-n majority vote over strobes reached its decision.
    VoteResolved {
        /// Strobes that answered pass.
        passes: u64,
        /// Strobes that answered fail.
        fails: u64,
        /// Strobes that produced no verdict.
        invalids: u64,
        /// The decided verdict ([`TraceVerdict::Invalid`] on a tie).
        verdict: TraceVerdict,
    },
    /// The tester fault model injected a fault into a measurement.
    FaultInjected {
        /// What kind of fault.
        kind: FaultKind,
    },
    /// A measurement point was quarantined: the recovery ladder could not
    /// produce a trustworthy trip point.
    Quarantined {
        /// Why: `dropout`, `unconverged`, `inconsistent_trace`, `timed_out`
        /// or `site_breaker`.
        reason: String,
    },
    /// A site's stall watchdog expired mid test program: the remaining
    /// tests of the touchdown were quarantined instead of waiting on a
    /// hung strobe.
    WatchdogFired {
        /// The site position within the touchdown.
        site: u64,
        /// The touchdown whose budget expired.
        touchdown: u64,
        /// The per-site simulated tester-time budget, in milliseconds.
        budget_ms: u64,
        /// Tests quarantined without running.
        skipped_tests: u64,
    },
    /// A site's health circuit breaker latched open at a chunk boundary:
    /// later touchdowns exclude the site from characterization.
    SiteBreakerTripped {
        /// The site position within the touchdown.
        site: u64,
        /// The chunk index after which the breaker latched.
        chunk: u64,
        /// The rolling fault rate that crossed the threshold.
        fault_rate: f64,
    },
    /// A GA generation finished evaluating.
    GaGenerationEvaluated {
        /// The generation index (0-based).
        generation: u64,
        /// Best fitness seen so far.
        best_so_far: f64,
        /// Best fitness within this generation.
        generation_best: f64,
        /// Mean fitness of this generation.
        mean: f64,
    },
    /// A health alarm latched on: a telemetry
    /// [`AlarmRule`](crate::AlarmRule) started firing at a heartbeat.
    AlarmRaised {
        /// The alarm identifier (`fault_rate_spike`, `stall_silence`, …).
        alarm: String,
        /// The heartbeat sequence number the alarm raised at.
        heartbeat: u64,
        /// The rule's human-readable detail at raise time.
        detail: String,
    },
    /// A health alarm released: the rule stopped firing.
    AlarmCleared {
        /// The alarm identifier.
        alarm: String,
        /// The heartbeat sequence number the alarm cleared at.
        heartbeat: u64,
    },
    /// A committee learning round finished.
    CommitteeEpochFinished {
        /// The learning round (0-based).
        epoch: u64,
        /// Committee members trained.
        members: u64,
        /// Mean final validation error across members.
        train_error: f64,
    },
}

/// One sequenced record in a trace stream: an event stamped with its
/// deterministic sequence number, the test index it belongs to (if any)
/// and a wall-clock timestamp.
///
/// Determinism contract: `seq`, `test` and `event` are identical across
/// thread counts for a seeded campaign; `ts_us` is wall time and is the
/// only field [`TraceRecord::normalized`] clears.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Position in the deterministic event stream (0-based).
    pub seq: u64,
    /// The campaign-level test index the event belongs to, or `None` for
    /// campaign-scoped events (phases, GA generations, committee epochs).
    pub test: Option<u64>,
    /// Microseconds since the tracer was created. Not deterministic.
    pub ts_us: u64,
    /// The event itself.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// The record with its wall-clock timestamp cleared — the form golden
    /// traces are compared in.
    pub fn normalized(mut self) -> Self {
        self.ts_us = 0;
        self
    }
}

/// Normalizes a JSONL trace stream: parses each line as a [`TraceRecord`],
/// clears the timestamp, and re-serializes. Lines that fail to parse are
/// passed through untouched so a diff still shows them.
pub fn normalize_jsonl(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<TraceRecord>(line) {
            Ok(record) => {
                out.push_str(
                    &serde_json::to_string(&record.normalized())
                        .expect("a parsed record re-serializes"),
                );
            }
            Err(_) => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_json() {
        let record = TraceRecord {
            seq: 7,
            test: Some(3),
            ts_us: 1234,
            event: TraceEvent::StepTaken {
                iteration: 2,
                step_factor: 2.0,
                value: 113.0,
                clamped: false,
                verdict: TraceVerdict::Fail,
            },
        };
        let json = serde_json::to_string(&record).expect("serializes");
        let back: TraceRecord = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, record);
    }

    #[test]
    fn normalization_clears_only_the_timestamp() {
        let record = TraceRecord {
            seq: 1,
            test: None,
            ts_us: 999,
            event: TraceEvent::CampaignPhaseChanged {
                phase: String::from("dsv"),
            },
        };
        let normalized = record.clone().normalized();
        assert_eq!(normalized.ts_us, 0);
        assert_eq!(normalized.seq, record.seq);
        assert_eq!(normalized.event, record.event);
    }

    #[test]
    fn jsonl_normalization_is_idempotent_and_total() {
        let record = TraceRecord {
            seq: 0,
            test: Some(0),
            ts_us: 55,
            event: TraceEvent::ProbeIssued {
                value: 1.5,
                speculative: false,
            },
        };
        let line = serde_json::to_string(&record).expect("serializes");
        let text = format!("{line}\nnot json\n\n");
        let once = normalize_jsonl(&text);
        assert_eq!(normalize_jsonl(&once), once, "idempotent");
        assert!(once.contains("\"ts_us\":0"), "{once}");
        assert!(once.contains("not json"), "unparseable lines survive");
        assert_eq!(once.lines().count(), 2, "blank lines dropped");
    }

    #[test]
    fn speculative_flag_is_invisible_when_false() {
        let plain = serde_json::to_string(&TraceEvent::ProbeIssued {
            value: 2.5,
            speculative: false,
        })
        .expect("serializes");
        assert!(
            !plain.contains("speculative"),
            "false flag must not appear on the wire: {plain}"
        );
        // Pre-flag traces (no field at all) parse as non-speculative.
        let legacy: TraceEvent =
            serde_json::from_str(r#"{"ProbeIssued":{"value":2.5}}"#).expect("parses");
        assert_eq!(
            legacy,
            TraceEvent::ProbeIssued {
                value: 2.5,
                speculative: false
            }
        );
        let marked = serde_json::to_string(&TraceEvent::ProbeIssued {
            value: 2.5,
            speculative: true,
        })
        .expect("serializes");
        assert!(marked.contains("\"speculative\":true"), "{marked}");
    }
}
