//! The wall-clock timing sidecar: monotonic per-span and per-phase
//! durations, kept **outside** the deterministic event stream.
//!
//! Wall-clock time is inherently nondeterministic — two runs of the same
//! seeded campaign never take exactly the same nanoseconds — so timings
//! must never leak into the normalized trace that golden tests diff
//! byte-for-byte. The sidecar therefore lives in its own registry next to
//! the [`Tracer`](crate::Tracer): spans carry a monotonic [`SpanClock`],
//! the absorb path folds each finished span's duration into the
//! [`TimingRegistry`] under the currently open campaign phase, and the
//! aggregate lands in the run manifest's `timings` section — a separate
//! artifact from the trace stream, which stays byte-identical whether
//! timing is on or off.

use crate::metrics::{Histogram, HistogramSnapshot};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Span-duration bucket bounds, in microseconds (10 µs … 100 ms). A
/// trip-point search on the simulated ATE lands in the tens-of-µs to
/// single-digit-ms range; the overflow bucket catches pathological spans.
const SPAN_US_BOUNDS: &[u64] = &[
    10, 30, 100, 300, 1_000, 3_000, 10_000, 30_000, 100_000,
];

/// A monotonic per-span stopwatch, shared by every clone of a span.
///
/// Created when the span is (so the start is the moment the worker picked
/// the test up); the instrumented measurement path stamps the end with
/// [`SpanClock::mark_done`] as soon as the test's work finishes, which
/// keeps coordinator absorb latency out of the recorded duration. An
/// unmarked clock falls back to measuring up to absorb time.
#[derive(Debug)]
pub struct SpanClock {
    started: Instant,
    done_ns: AtomicU64,
}

impl SpanClock {
    pub(crate) fn new() -> Self {
        Self {
            started: Instant::now(),
            done_ns: AtomicU64::new(0),
        }
    }

    /// Stamps the span's end as of now (first call wins; later calls are
    /// no-ops so retries of an already-finished span cannot stretch it).
    pub fn mark_done(&self) {
        let elapsed = self.started.elapsed().as_nanos().max(1) as u64;
        let _ = self
            .done_ns
            .compare_exchange(0, elapsed, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// The span's duration: creation to [`SpanClock::mark_done`], or to
    /// now when the end was never stamped.
    pub fn duration_ns(&self) -> u64 {
        match self.done_ns.load(Ordering::Relaxed) {
            0 => self.started.elapsed().as_nanos().max(1) as u64,
            ns => ns,
        }
    }
}

/// One phase's span-duration accounting (live form).
struct PhaseSlot {
    name: String,
    spans: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    hist_us: Histogram,
}

impl PhaseSlot {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            spans: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            hist_us: Histogram::new(SPAN_US_BOUNDS),
        }
    }

    fn record(&mut self, dur_ns: u64) {
        self.spans += 1;
        self.total_ns += dur_ns;
        self.min_ns = self.min_ns.min(dur_ns);
        self.max_ns = self.max_ns.max(dur_ns);
        self.hist_us.observe(dur_ns / 1_000);
    }

    fn snapshot(&self) -> PhaseTiming {
        PhaseTiming {
            phase: self.name.clone(),
            spans: self.spans,
            total_ns: self.total_ns,
            min_ns: if self.spans == 0 { 0 } else { self.min_ns },
            max_ns: self.max_ns,
            hist_span_us: self.hist_us.snapshot(),
        }
    }
}

/// The live timing sidecar: per-phase span-duration statistics.
///
/// Recording happens on the absorb path — single-threaded by the tracer's
/// determinism contract — so a plain mutex-guarded slot list keyed by
/// first-seen phase order is both sufficient and deterministic in shape
/// (the *durations* inside are wall clock and therefore never are).
#[derive(Debug, Default)]
pub struct TimingRegistry {
    state: Mutex<TimingState>,
}

#[derive(Debug, Default)]
struct TimingState {
    phases: Vec<PhaseSlot>,
    current: Option<usize>,
}

impl std::fmt::Debug for PhaseSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseSlot")
            .field("name", &self.name)
            .field("spans", &self.spans)
            .finish_non_exhaustive()
    }
}

/// The phase name spans recorded before any [`TimingRegistry::enter_phase`]
/// are filed under.
pub const UNPHASED: &str = "(unphased)";

impl TimingRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens (or re-opens) the slot for `phase`; subsequent span durations
    /// are filed under it.
    pub fn enter_phase(&self, phase: &str) {
        let mut state = self.state.lock().expect("timing lock");
        let index = match state.phases.iter().position(|p| p.name == phase) {
            Some(index) => index,
            None => {
                state.phases.push(PhaseSlot::new(phase));
                state.phases.len() - 1
            }
        };
        state.current = Some(index);
    }

    /// Folds one span duration into the currently open phase (or the
    /// [`UNPHASED`] slot when no phase was ever entered).
    pub fn record_span(&self, dur_ns: u64) {
        let mut state = self.state.lock().expect("timing lock");
        let index = match state.current {
            Some(index) => index,
            None => {
                state.phases.push(PhaseSlot::new(UNPHASED));
                let index = state.phases.len() - 1;
                state.current = Some(index);
                index
            }
        };
        state.phases[index].record(dur_ns);
    }

    /// An immutable snapshot of every phase's timing statistics, in
    /// first-seen phase order.
    pub fn snapshot(&self) -> TimingSnapshot {
        let state = self.state.lock().expect("timing lock");
        TimingSnapshot {
            phases: state.phases.iter().map(PhaseSlot::snapshot).collect(),
        }
    }
}

/// One phase's span-duration statistics, as serialized into
/// `RunManifest.timings`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// The phase name.
    pub phase: String,
    /// Spans absorbed while the phase was open.
    pub spans: u64,
    /// Total span wall time, in nanoseconds.
    pub total_ns: u64,
    /// Shortest span, in nanoseconds (0 when the phase saw no spans).
    pub min_ns: u64,
    /// Longest span, in nanoseconds.
    pub max_ns: u64,
    /// Span-duration histogram, bucketed in microseconds.
    pub hist_span_us: HistogramSnapshot,
}

impl PhaseTiming {
    /// Mean span duration in nanoseconds (0 when the phase saw no spans).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.spans).unwrap_or(0)
    }
}

/// The timing sidecar of one run: per-phase span-duration statistics, in
/// phase order. Lives in `RunManifest.timings`; never in the trace stream.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TimingSnapshot {
    /// Per-phase statistics, in first-seen phase order.
    pub phases: Vec<PhaseTiming>,
}

impl TimingSnapshot {
    /// Total span wall time across every phase, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.total_ns).sum()
    }

    /// Total spans recorded across every phase.
    pub fn spans(&self) -> u64 {
        self.phases.iter().map(|p| p.spans).sum()
    }

    /// Whether any span was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_clock_prefers_the_marked_end() {
        let clock = SpanClock::new();
        clock.mark_done();
        let first = clock.duration_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(clock.duration_ns(), first, "mark_done froze the duration");
        clock.mark_done();
        assert_eq!(clock.duration_ns(), first, "second mark is a no-op");
    }

    #[test]
    fn unmarked_clock_measures_to_now() {
        let clock = SpanClock::new();
        let early = clock.duration_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(clock.duration_ns() > early);
    }

    #[test]
    fn registry_files_spans_under_the_open_phase() {
        let registry = TimingRegistry::new();
        registry.enter_phase("full_range");
        registry.record_span(2_000_000);
        registry.record_span(4_000_000);
        registry.enter_phase("stp");
        registry.record_span(1_000_000);
        let snap = registry.snapshot();
        assert_eq!(snap.phases.len(), 2);
        assert_eq!(snap.phases[0].phase, "full_range");
        assert_eq!(snap.phases[0].spans, 2);
        assert_eq!(snap.phases[0].total_ns, 6_000_000);
        assert_eq!(snap.phases[0].min_ns, 2_000_000);
        assert_eq!(snap.phases[0].max_ns, 4_000_000);
        assert_eq!(snap.phases[0].mean_ns(), 3_000_000);
        assert_eq!(snap.phases[1].phase, "stp");
        assert_eq!(snap.phases[1].spans, 1);
        assert_eq!(snap.total_ns(), 7_000_000);
        assert_eq!(snap.spans(), 3);
        assert!(!snap.is_empty());
    }

    #[test]
    fn spans_without_a_phase_go_to_the_unphased_slot() {
        let registry = TimingRegistry::new();
        registry.record_span(500_000);
        let snap = registry.snapshot();
        assert_eq!(snap.phases.len(), 1);
        assert_eq!(snap.phases[0].phase, UNPHASED);
        assert_eq!(snap.phases[0].spans, 1);
    }

    #[test]
    fn reentering_a_phase_reuses_its_slot() {
        let registry = TimingRegistry::new();
        registry.enter_phase("dsv");
        registry.record_span(1_000);
        registry.enter_phase("analysis");
        registry.enter_phase("dsv");
        registry.record_span(3_000);
        let snap = registry.snapshot();
        assert_eq!(snap.phases.len(), 2);
        assert_eq!(snap.phases[0].spans, 2, "dsv slot accumulated both");
    }

    #[test]
    fn timing_snapshot_round_trips_through_json() {
        let registry = TimingRegistry::new();
        registry.enter_phase("march");
        registry.record_span(42_000);
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: TimingSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
        assert!(snap.phases[0].hist_span_us.is_consistent());
    }

    #[test]
    fn empty_snapshot_is_empty() {
        assert!(TimingRegistry::new().snapshot().is_empty());
        assert_eq!(TimingSnapshot::default().total_ns(), 0);
    }
}
