//! Live campaign telemetry: deterministic heartbeats, an OpenMetrics
//! textfile, and a health-alarm engine.
//!
//! Post-hoc observability (traces, manifests) answers questions after a
//! campaign ends; this module answers them *mid-flight*. A telemetry-armed
//! campaign periodically emits a [`HeartbeatSnapshot`] — progress,
//! probe/fault/quarantine counters, breaker states, throughput — appended
//! atomically to `heartbeat.jsonl`, and rewrites `metrics.prom`, an
//! OpenMetrics/Prometheus textfile rendered from the tracer's
//! [`MetricsSnapshot`]. `cichar-report watch` tails those files.
//!
//! # Determinism contract
//!
//! Heartbeat cadence is measured in **simulated ledger time**, not wall
//! time — the same discipline as the stall watchdog. Campaign engines call
//! [`Telemetry::tick`] only from their coordinator fold points (where
//! spans absorb and ledgers merge in input-index order), and a heartbeat
//! fires when the merged simulated time crosses the next interval
//! boundary. Both the tick sites and the simulated clock are pure
//! functions of the seeded campaign, so `threads=1` and `threads=8` emit
//! **bit-identical heartbeat sequences** up to the wall-clock fields that
//! [`HeartbeatSnapshot::normalized`] strips (exactly how
//! [`TraceRecord::normalized`](crate::TraceRecord::normalized) strips
//! `ts_us`). Journal replay never ticks, mirroring how replay emits no
//! trace events.
//!
//! # Health alarms
//!
//! Every heartbeat is evaluated against a set of [`AlarmRule`]s over the
//! snapshot's *deterministic* fields only, so alarm raise/clear sequences
//! inherit the heartbeat determinism. Transitions emit typed
//! [`TraceEvent::AlarmRaised`] / [`TraceEvent::AlarmCleared`] campaign
//! events and accumulate into the manifest's [`HealthSection`].
//!
//! Telemetry is a **sidecar**: a campaign run with telemetry disabled
//! emits a byte-identical normalized trace stream, so golden traces and
//! baseline manifests are unaffected.

use crate::event::TraceEvent;
use crate::metrics::MetricsSnapshot;
use crate::tracer::Tracer;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// File name of the heartbeat stream inside a telemetry directory.
pub const HEARTBEAT_FILE: &str = "heartbeat.jsonl";
/// File name of the OpenMetrics textfile inside a telemetry directory.
pub const METRICS_FILE: &str = "metrics.prom";
/// Default heartbeat interval in simulated milliseconds.
pub const DEFAULT_HEARTBEAT_EVERY_MS: u64 = 25;
/// Heartbeats retained for rolling-window alarm rules.
const HISTORY_CAP: usize = 64;

/// `skip_serializing_if` helper: omit an empty list from the wire format.
fn is_empty_vec<T>(v: &[T]) -> bool {
    v.is_empty()
}

/// One live progress/health sample of a running campaign.
///
/// The struct splits into deterministic fields (everything derived from
/// the seeded campaign and its simulated ledger clock) and wall-clock
/// fields (`wall_ms`, `trips_per_sec`, `eta_ms`), which
/// [`Self::normalized`] clears so heartbeat sequences can be compared
/// bit-for-bit across thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatSnapshot {
    /// Position in the heartbeat sequence (0-based).
    pub seq: u64,
    /// The campaign name (`wafer`, `fig2`, `table1`, …).
    pub campaign: String,
    /// The campaign phase the heartbeat was taken in.
    pub phase: String,
    /// Simulated tester time of the merged ledger, in microseconds — the
    /// deterministic clock that paces heartbeats.
    pub sim_time_us: u64,
    /// Work units folded so far ((die, test) entries for wafer campaigns,
    /// tests for DSV sweeps, evaluations for GA hunts).
    pub units_done: u64,
    /// Total work units of the campaign (0 when unknown up front).
    pub units_total: u64,
    /// Touchdowns folded so far (wafer campaigns; 0 elsewhere).
    pub touchdowns_done: u64,
    /// Chunks committed so far (wafer campaigns; 0 elsewhere).
    pub chunks_done: u64,
    /// Probe requests that produced a verdict.
    pub probes_resolved: u64,
    /// Probe requests issued as physical measurements.
    pub probes_issued: u64,
    /// Probe requests answered from the memo cache.
    pub probes_cached: u64,
    /// Issued probes that were speculative pre-issues.
    pub probes_speculative: u64,
    /// Trip-point searches finished.
    pub searches_finished: u64,
    /// Finished searches that converged.
    pub searches_converged: u64,
    /// The fault funnel: strobes re-issued after a silent strobe.
    pub retries: u64,
    /// The fault funnel: k-of-n majority votes resolved.
    pub vote_rounds: u64,
    /// The fault funnel: measurement points quarantined.
    pub quarantined: u64,
    /// Injected probe-contact dropouts.
    pub faults_dropout: u64,
    /// Injected transient verdict flips.
    pub faults_flip: u64,
    /// Injected stuck-channel replays.
    pub faults_stuck: u64,
    /// Injected session-abort bursts.
    pub faults_abort: u64,
    /// Injected hung-strobe stalls.
    pub faults_stall: u64,
    /// Stall-watchdog firings so far.
    pub watchdog_timeouts: u64,
    /// Site positions whose health breaker is latched open, ascending.
    #[serde(default, skip_serializing_if = "is_empty_vec")]
    pub breaker_open_sites: Vec<u64>,
    /// Quarantined fraction of finished searches (0 when none finished).
    pub quarantine_rate: f64,
    /// Finished searches per simulated second — the deterministic
    /// throughput figure.
    pub sim_trips_per_sec: f64,
    /// Names of the alarms active as of this heartbeat, ascending.
    #[serde(default, skip_serializing_if = "is_empty_vec")]
    pub alarms_active: Vec<String>,
    /// Wall-clock milliseconds since telemetry was armed. Not
    /// deterministic.
    pub wall_ms: u64,
    /// Work units per wall-clock second. Not deterministic.
    pub trips_per_sec: f64,
    /// Estimated wall-clock milliseconds to completion, extrapolated from
    /// progress so far (`None` before any progress or without a known
    /// total). Not deterministic.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub eta_ms: Option<u64>,
}

impl HeartbeatSnapshot {
    /// The snapshot with its wall-clock fields cleared — the form the
    /// cross-thread bit-identity tests compare in.
    pub fn normalized(mut self) -> Self {
        self.wall_ms = 0;
        self.trips_per_sec = 0.0;
        self.eta_ms = None;
        self
    }

    /// Fraction of the campaign completed, in `[0, 1]` (`None` without a
    /// known total).
    pub fn fraction_done(&self) -> Option<f64> {
        if self.units_total == 0 {
            return None;
        }
        Some(self.units_done as f64 / self.units_total as f64)
    }
}

/// A coordinator-side progress sample handed to [`Telemetry::tick`].
///
/// Built inside the tick closure, so a disabled telemetry handle never
/// pays for it.
#[derive(Debug, Clone, Default)]
pub struct Progress {
    /// The campaign phase (`wafer`, `dsv`, `ga`, …).
    pub phase: &'static str,
    /// Simulated tester time of the merged ledger, in microseconds.
    pub sim_time_us: u64,
    /// Work units folded so far.
    pub units_done: u64,
    /// Total work units (0 when unknown).
    pub units_total: u64,
    /// Touchdowns folded so far (wafer campaigns).
    pub touchdowns_done: u64,
    /// Chunks committed so far (wafer campaigns).
    pub chunks_done: u64,
    /// Site positions whose breaker is latched open, ascending.
    pub breaker_open_sites: Vec<u64>,
}

impl Progress {
    /// A progress sample for flat campaigns (DSV sweeps, GA hunts) that
    /// have units but no touchdown/chunk/breaker structure.
    pub fn units(phase: &'static str, sim_time_us: u64, done: u64, total: u64) -> Self {
        Self {
            phase,
            sim_time_us,
            units_done: done,
            units_total: total,
            ..Self::default()
        }
    }
}

/// One health-alarm rule, evaluated at every heartbeat over the
/// snapshot's deterministic fields.
#[derive(Debug, Clone, PartialEq)]
pub enum AlarmRule {
    /// Injected-fault rate over the trailing `window` heartbeats exceeds
    /// `max_rate` faults per resolved probe.
    FaultRateSpike {
        /// Heartbeats in the rolling window (including the current one).
        window: usize,
        /// Faults per resolved probe above which the alarm raises.
        max_rate: f64,
    },
    /// The campaign-wide quarantine rate exceeds `max_rate`.
    QuarantineRateCeiling {
        /// Quarantined fraction of finished searches above which the
        /// alarm raises.
        max_rate: f64,
    },
    /// Simulated throughput of the latest heartbeat interval fell below
    /// `min_fraction` of the campaign's own trailing mean.
    ThroughputDrop {
        /// Prior intervals averaged into the trailing mean.
        window: usize,
        /// Fraction of the trailing mean below which the alarm raises.
        min_fraction: f64,
    },
    /// Simulated time advanced at least `max_silent_ms` since the
    /// previous heartbeat without a single probe resolving — the
    /// signature of a stalled tester channel.
    StallSilence {
        /// Probe-silent simulated milliseconds above which the alarm
        /// raises.
        max_silent_ms: u64,
    },
}

impl AlarmRule {
    /// The stable alarm identifier used in trace events, heartbeats and
    /// the manifest health section.
    pub fn name(&self) -> &'static str {
        match self {
            AlarmRule::FaultRateSpike { .. } => "fault_rate_spike",
            AlarmRule::QuarantineRateCeiling { .. } => "quarantine_rate_ceiling",
            AlarmRule::ThroughputDrop { .. } => "throughput_drop",
            AlarmRule::StallSilence { .. } => "stall_silence",
        }
    }

    /// The default rule set armed by [`Telemetry::create`].
    pub fn default_set() -> Vec<AlarmRule> {
        vec![
            AlarmRule::FaultRateSpike {
                window: 4,
                max_rate: 0.25,
            },
            AlarmRule::QuarantineRateCeiling { max_rate: 0.10 },
            AlarmRule::ThroughputDrop {
                window: 4,
                min_fraction: 0.25,
            },
            AlarmRule::StallSilence { max_silent_ms: 250 },
        ]
    }

    /// Evaluates the rule against the current snapshot and the trailing
    /// heartbeat history (most recent last, current excluded). Returns a
    /// human-readable detail string when the rule fires.
    fn evaluate(&self, history: &[HeartbeatSnapshot], current: &HeartbeatSnapshot) -> Option<String> {
        match *self {
            AlarmRule::FaultRateSpike { window, max_rate } => {
                let base = history
                    .len()
                    .checked_sub(window.max(1).saturating_sub(1))
                    .map(|i| &history[i])?;
                let faults = faults_total(current).saturating_sub(faults_total(base));
                let probes = current.probes_resolved.saturating_sub(base.probes_resolved);
                let rate = faults as f64 / probes.max(1) as f64;
                (rate > max_rate).then(|| {
                    format!("{faults} faults over {probes} probes ({rate:.3} > {max_rate:.3})")
                })
            }
            AlarmRule::QuarantineRateCeiling { max_rate } => {
                (current.searches_finished > 0 && current.quarantine_rate > max_rate).then(|| {
                    format!(
                        "{} of {} searches quarantined ({:.3} > {max_rate:.3})",
                        current.quarantined, current.searches_finished, current.quarantine_rate
                    )
                })
            }
            AlarmRule::ThroughputDrop {
                window,
                min_fraction,
            } => {
                // Needs `window` prior intervals, i.e. window + 1 prior
                // heartbeats.
                if history.len() < window.max(1) + 1 {
                    return None;
                }
                let tail = &history[history.len() - (window.max(1) + 1)..];
                let mut mean = 0.0;
                for pair in tail.windows(2) {
                    mean += interval_throughput(&pair[0], &pair[1]);
                }
                mean /= window.max(1) as f64;
                let last = tail.last().expect("window is non-empty");
                if current.sim_time_us == last.sim_time_us {
                    // Zero-length interval (e.g. the final heartbeat
                    // re-sampling the last fold point): no throughput
                    // signal to judge.
                    return None;
                }
                let now = interval_throughput(last, current);
                (mean > 0.0 && now < min_fraction * mean).then(|| {
                    format!(
                        "{now:.1} units/sim-s vs trailing mean {mean:.1} \
                         (below {min_fraction:.2}x)"
                    )
                })
            }
            AlarmRule::StallSilence { max_silent_ms } => {
                let prev = history.last()?;
                let silent_us = current.sim_time_us.saturating_sub(prev.sim_time_us);
                let silent = current.probes_resolved == prev.probes_resolved
                    && silent_us >= max_silent_ms.saturating_mul(1000);
                silent.then(|| {
                    format!(
                        "no probe resolved for {:.1} simulated ms (budget {max_silent_ms} ms)",
                        silent_us as f64 / 1000.0
                    )
                })
            }
        }
    }
}

/// Total injected faults of a snapshot, across every kind.
fn faults_total(hb: &HeartbeatSnapshot) -> u64 {
    hb.faults_dropout + hb.faults_flip + hb.faults_stuck + hb.faults_abort + hb.faults_stall
}

/// Units folded per simulated second between two heartbeats (0 when no
/// simulated time elapsed).
fn interval_throughput(prev: &HeartbeatSnapshot, current: &HeartbeatSnapshot) -> f64 {
    let dt_us = current.sim_time_us.saturating_sub(prev.sim_time_us);
    if dt_us == 0 {
        return 0.0;
    }
    let units = current.units_done.saturating_sub(prev.units_done);
    units as f64 * 1e6 / dt_us as f64
}

/// One alarm's raise (and eventual clear) within a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlarmIncident {
    /// The alarm identifier ([`AlarmRule::name`]).
    pub alarm: String,
    /// Heartbeat sequence number the alarm raised at.
    pub raised_at: u64,
    /// Heartbeat sequence number the alarm cleared at (`None` when still
    /// active at the end of the run).
    pub cleared_at: Option<u64>,
    /// The rule's detail string at raise time.
    pub detail: String,
}

/// The health section of a [`RunManifest`](crate::RunManifest):
/// heartbeat and alarm accounting for a telemetry-armed run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HealthSection {
    /// Heartbeats emitted.
    pub heartbeats: u64,
    /// Alarm raise transitions.
    pub alarms_raised: u64,
    /// Alarm clear transitions.
    pub alarms_cleared: u64,
    /// Alarms still active when the run finished, ascending.
    pub active_alarms: Vec<String>,
    /// Every raise (and eventual clear), in raise order.
    pub incidents: Vec<AlarmIncident>,
}

/// The live state behind an enabled [`Telemetry`] handle.
struct TelemetryCore {
    dir: PathBuf,
    campaign: String,
    every_us: u64,
    tracer: Tracer,
    rules: Vec<AlarmRule>,
    started: Instant,
    seq: u64,
    next_deadline_us: u64,
    last_progress: Option<Progress>,
    history: Vec<HeartbeatSnapshot>,
    active: BTreeMap<String, usize>,
    incidents: Vec<AlarmIncident>,
    alarms_raised: u64,
    alarms_cleared: u64,
    io_error: Option<io::Error>,
}

/// The campaign-level telemetry handle: paces heartbeats on simulated
/// ledger time, appends them to `heartbeat.jsonl`, rewrites
/// `metrics.prom`, and runs the alarm engine.
///
/// Cheap to clone (an `Arc`); the disabled handle (the default for every
/// campaign run without `--telemetry`) costs one branch per tick.
#[derive(Clone, Default)]
pub struct Telemetry {
    core: Option<Arc<Mutex<TelemetryCore>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// The inert handle: every tick is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Arms telemetry into `dir` with the default heartbeat interval and
    /// alarm rules. `tracer` must be the same tracer the campaign reports
    /// into — heartbeat counters are its metrics snapshots, and alarm
    /// transitions are emitted as campaign events through it.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-creation failures (the
    /// heartbeat stream is created — truncated — eagerly, so an
    /// unwritable destination fails before any measurement).
    pub fn create(dir: impl Into<PathBuf>, campaign: &str, tracer: Tracer) -> io::Result<Self> {
        Self::create_with(
            dir,
            campaign,
            tracer,
            DEFAULT_HEARTBEAT_EVERY_MS,
            AlarmRule::default_set(),
        )
    }

    /// [`Self::create`] with an explicit heartbeat interval (simulated
    /// milliseconds) and alarm rule set.
    ///
    /// # Errors
    ///
    /// As [`Self::create`].
    pub fn create_with(
        dir: impl Into<PathBuf>,
        campaign: &str,
        tracer: Tracer,
        heartbeat_every_ms: u64,
        rules: Vec<AlarmRule>,
    ) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        // Fresh stream per process: a resumed campaign's heartbeats cover
        // exactly the work this process performs, like its trace does.
        std::fs::write(dir.join(HEARTBEAT_FILE), b"")?;
        let every_us = heartbeat_every_ms.max(1).saturating_mul(1000);
        let core = TelemetryCore {
            dir,
            campaign: campaign.to_string(),
            every_us,
            tracer,
            rules,
            started: Instant::now(),
            seq: 0,
            next_deadline_us: every_us,
            last_progress: None,
            history: Vec::new(),
            active: BTreeMap::new(),
            incidents: Vec::new(),
            alarms_raised: 0,
            alarms_cleared: 0,
            io_error: None,
        };
        core.write_metrics(&MetricsSnapshot::default(), 0, &[])?;
        Ok(Self {
            core: Some(Arc::new(Mutex::new(core))),
        })
    }

    /// Whether telemetry is live.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// The telemetry directory, when enabled.
    pub fn dir(&self) -> Option<PathBuf> {
        self.core
            .as_ref()
            .map(|core| core.lock().expect("telemetry lock").dir.clone())
    }

    /// Offers a progress sample from a coordinator fold point. The
    /// closure runs only when telemetry is enabled; a heartbeat is
    /// emitted when the sample's simulated time crossed the next interval
    /// boundary (at most one per tick — the deadline then advances past
    /// the sample, so a burst of simulated time never back-fills a run of
    /// stale heartbeats).
    ///
    /// **Call only from the coordinating thread, at deterministic fold
    /// points** — that placement is what makes heartbeat sequences
    /// thread-count invariant.
    pub fn tick(&self, progress: impl FnOnce() -> Progress) {
        let Some(core) = &self.core else { return };
        let mut core = core.lock().expect("telemetry lock");
        let progress = progress();
        let due = progress.sim_time_us >= core.next_deadline_us;
        core.last_progress = Some(progress);
        if due {
            core.heartbeat();
            let every = core.every_us;
            let sim = core.last_progress.as_ref().expect("just stored").sim_time_us;
            core.next_deadline_us = (sim / every + 1) * every;
        }
    }

    /// Emits the final heartbeat (unconditionally, from the last progress
    /// sample), rewrites the final OpenMetrics file, and returns the
    /// run's [`HealthSection`]. `None` for a disabled handle.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error any heartbeat write latched.
    pub fn finish(&self) -> io::Result<Option<HealthSection>> {
        let Some(core) = &self.core else {
            return Ok(None);
        };
        let mut core = core.lock().expect("telemetry lock");
        if core.last_progress.is_some() {
            core.heartbeat();
        }
        if let Some(err) = core.io_error.take() {
            return Err(err);
        }
        Ok(Some(core.health()))
    }

    /// The health accounting so far (`None` for a disabled handle).
    pub fn health(&self) -> Option<HealthSection> {
        self.core
            .as_ref()
            .map(|core| core.lock().expect("telemetry lock").health())
    }

    /// Heartbeats emitted so far (0 for a disabled handle).
    pub fn heartbeats(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |core| core.lock().expect("telemetry lock").seq)
    }
}

impl TelemetryCore {
    /// Takes one heartbeat from the stored progress sample: snapshot the
    /// tracer's metrics, evaluate the alarm rules, append the heartbeat
    /// line, rewrite the OpenMetrics file.
    fn heartbeat(&mut self) {
        let Some(progress) = self.last_progress.clone() else {
            return;
        };
        let metrics = self.tracer.metrics();
        let wall_ms = self.started.elapsed().as_millis() as u64;
        let quarantine_rate = if metrics.searches_finished == 0 {
            0.0
        } else {
            metrics.quarantined as f64 / metrics.searches_finished as f64
        };
        let sim_trips_per_sec = if progress.sim_time_us == 0 {
            0.0
        } else {
            metrics.searches_finished as f64 * 1e6 / progress.sim_time_us as f64
        };
        let trips_per_sec = if wall_ms == 0 {
            0.0
        } else {
            progress.units_done as f64 * 1000.0 / wall_ms as f64
        };
        let eta_ms = (progress.units_total > progress.units_done && progress.units_done > 0)
            .then(|| {
                let remaining = progress.units_total - progress.units_done;
                (wall_ms as f64 * remaining as f64 / progress.units_done as f64) as u64
            });
        let mut hb = HeartbeatSnapshot {
            seq: self.seq,
            campaign: self.campaign.clone(),
            phase: progress.phase.to_string(),
            sim_time_us: progress.sim_time_us,
            units_done: progress.units_done,
            units_total: progress.units_total,
            touchdowns_done: progress.touchdowns_done,
            chunks_done: progress.chunks_done,
            probes_resolved: metrics.probes_resolved,
            probes_issued: metrics.probes_issued,
            probes_cached: metrics.probes_cached,
            probes_speculative: metrics.probes_speculative,
            searches_finished: metrics.searches_finished,
            searches_converged: metrics.searches_converged,
            retries: metrics.retries,
            vote_rounds: metrics.vote_rounds,
            quarantined: metrics.quarantined,
            faults_dropout: metrics.faults_dropout,
            faults_flip: metrics.faults_flip,
            faults_stuck: metrics.faults_stuck,
            faults_abort: metrics.faults_abort,
            faults_stall: metrics.faults_stall,
            watchdog_timeouts: metrics.watchdog_timeouts,
            breaker_open_sites: progress.breaker_open_sites.clone(),
            quarantine_rate,
            sim_trips_per_sec,
            alarms_active: Vec::new(),
            wall_ms,
            trips_per_sec,
            eta_ms,
        };
        self.evaluate_alarms(&mut hb);
        let active: Vec<String> = hb.alarms_active.clone();
        if let Err(err) = self.append_heartbeat(&hb) {
            self.latch(err);
        }
        // Re-snapshot after the alarm events so the textfile's alarm
        // counters include this heartbeat's own transitions.
        let metrics = self.tracer.metrics();
        if let Err(err) = self.write_metrics(&metrics, self.seq + 1, &active) {
            self.latch(err);
        }
        self.history.push(hb);
        if self.history.len() > HISTORY_CAP {
            self.history.remove(0);
        }
        self.seq += 1;
    }

    /// Runs every rule against the new snapshot, records raise/clear
    /// transitions, and stamps the snapshot's active-alarm list.
    fn evaluate_alarms(&mut self, hb: &mut HeartbeatSnapshot) {
        for rule in &self.rules {
            let name = rule.name();
            let firing = rule.evaluate(&self.history, hb);
            let was_active = self.active.contains_key(name);
            match (was_active, firing) {
                (false, Some(detail)) => {
                    self.active.insert(name.to_string(), self.incidents.len());
                    self.incidents.push(AlarmIncident {
                        alarm: name.to_string(),
                        raised_at: hb.seq,
                        cleared_at: None,
                        detail: detail.clone(),
                    });
                    self.alarms_raised += 1;
                    self.tracer.emit_campaign(TraceEvent::AlarmRaised {
                        alarm: name.to_string(),
                        heartbeat: hb.seq,
                        detail,
                    });
                }
                (true, None) => {
                    if let Some(index) = self.active.remove(name) {
                        self.incidents[index].cleared_at = Some(hb.seq);
                    }
                    self.alarms_cleared += 1;
                    self.tracer.emit_campaign(TraceEvent::AlarmCleared {
                        alarm: name.to_string(),
                        heartbeat: hb.seq,
                    });
                }
                _ => {}
            }
        }
        hb.alarms_active = self.active.keys().cloned().collect();
    }

    /// Appends one heartbeat line — a single `write` of a full line, so a
    /// concurrent `watch` reader never observes a torn record.
    fn append_heartbeat(&self, hb: &HeartbeatSnapshot) -> io::Result<()> {
        let mut line = serde_json::to_string(hb).map_err(io::Error::other)?;
        line.push('\n');
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(HEARTBEAT_FILE))?;
        file.write_all(line.as_bytes())
    }

    /// Rewrites the OpenMetrics textfile via temp + rename (the same
    /// atomic-commit contract as `JsonlSink`), so a scraper never reads a
    /// truncated exposition.
    fn write_metrics(
        &self,
        metrics: &MetricsSnapshot,
        heartbeats: u64,
        active: &[String],
    ) -> io::Result<()> {
        let mut body = openmetrics_body(metrics);
        let _ = writeln!(body, "# HELP cichar_heartbeats Heartbeats emitted by the live telemetry sidecar.");
        let _ = writeln!(body, "# TYPE cichar_heartbeats counter");
        let _ = writeln!(body, "cichar_heartbeats_total {heartbeats}");
        let _ = writeln!(body, "# HELP cichar_alarms_active Health alarms currently active.");
        let _ = writeln!(body, "# TYPE cichar_alarms_active gauge");
        let _ = writeln!(body, "cichar_alarms_active {}", active.len());
        body.push_str("# EOF\n");
        let path = self.dir.join(METRICS_FILE);
        let scratch = self.dir.join(format!("{METRICS_FILE}.tmp"));
        std::fs::write(&scratch, &body)?;
        std::fs::rename(&scratch, &path)
    }

    /// Latches the first I/O error; later heartbeats keep accumulating
    /// in memory so the campaign itself is never disturbed.
    fn latch(&mut self, err: io::Error) {
        if self.io_error.is_none() {
            self.io_error = Some(err);
        }
    }

    fn health(&self) -> HealthSection {
        HealthSection {
            heartbeats: self.seq,
            alarms_raised: self.alarms_raised,
            alarms_cleared: self.alarms_cleared,
            active_alarms: self.active.keys().cloned().collect(),
            incidents: self.incidents.clone(),
        }
    }
}

/// The counter table behind the OpenMetrics exposition: stable metric
/// name (without the `cichar_` prefix or `_total` suffix), HELP text, and
/// the snapshot value. A unit test asserts this table covers every
/// counter field of [`MetricsSnapshot`], so a newly registered counter
/// cannot silently miss the textfile.
fn counter_samples(m: &MetricsSnapshot) -> Vec<(&'static str, &'static str, u64)> {
    vec![
        ("probes_resolved", "Probe requests that produced a verdict (cached or measured).", m.probes_resolved),
        ("probes_cached", "Probe requests answered from the oracle memo cache.", m.probes_cached),
        ("probes_issued", "Probe requests issued to the tester as physical measurements.", m.probes_issued),
        ("probes_speculative", "Issued probes that were pre-issued speculatively.", m.probes_speculative),
        ("searches_started", "Trip-point searches started.", m.searches_started),
        ("searches_finished", "Trip-point searches finished.", m.searches_finished),
        ("searches_converged", "Finished searches that converged on a trip point.", m.searches_converged),
        ("search_steps", "STP window-walk iterations taken (eqs. 3/4).", m.search_steps),
        ("brackets", "Pass/fail brackets established.", m.brackets),
        ("retries", "Strobes re-issued after a silent strobe.", m.retries),
        ("vote_rounds", "k-of-n majority votes resolved.", m.vote_rounds),
        ("quarantined", "Measurement points quarantined after recovery failed.", m.quarantined),
        ("faults_dropout", "Probe-contact dropouts injected by the fault model.", m.faults_dropout),
        ("faults_flip", "Transient verdict flips injected by the fault model.", m.faults_flip),
        ("faults_stuck", "Stuck-channel replays injected by the fault model.", m.faults_stuck),
        ("faults_abort", "Session-abort bursts injected by the fault model.", m.faults_abort),
        ("faults_stall", "Hung-strobe stalls injected by the fault model.", m.faults_stall),
        ("ga_generations", "GA generations evaluated.", m.ga_generations),
        ("committee_epochs", "Committee learning rounds finished.", m.committee_epochs),
        ("phases", "Campaign phase transitions.", m.phases),
        ("watchdog_timeouts", "Stall-watchdog firings.", m.watchdog_timeouts),
        ("breaker_trips", "Site health circuit breakers latched open.", m.breaker_trips),
        ("alarms_raised", "Health alarms raised by the telemetry engine.", m.alarms_raised),
        ("alarms_cleared", "Health alarms cleared by the telemetry engine.", m.alarms_cleared),
    ]
}

/// The histogram table behind the OpenMetrics exposition.
fn histogram_samples(
    m: &MetricsSnapshot,
) -> Vec<(&'static str, &'static str, &crate::metrics::HistogramSnapshot)> {
    vec![
        ("probes_per_search", "Probe requests consumed per finished trip-point search.", &m.hist_probes_per_search),
        ("search_steps_per_search", "STP window-walk steps taken per finished search.", &m.hist_search_steps),
        ("retry_depth", "Retry-ladder depth reached per scheduled retry.", &m.hist_retry_depth),
        ("backoff_ns", "Simulated backoff settle time per retry, in nanoseconds.", &m.hist_backoff_ns),
    ]
}

/// The metrics body without the `# EOF` terminator (the telemetry writer
/// appends its own sidecar samples before terminating).
fn openmetrics_body(m: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, help, value) in counter_samples(m) {
        let _ = writeln!(out, "# HELP cichar_{name} {help}");
        let _ = writeln!(out, "# TYPE cichar_{name} counter");
        let _ = writeln!(out, "cichar_{name}_total {value}");
    }
    for (name, help, hist) in histogram_samples(m) {
        let _ = writeln!(out, "# HELP cichar_{name} {help}");
        let _ = writeln!(out, "# TYPE cichar_{name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in hist.bounds.iter().zip(&hist.counts) {
            cumulative += count;
            let _ = writeln!(out, "cichar_{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "cichar_{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "cichar_{name}_sum {}", hist.sum);
        let _ = writeln!(out, "cichar_{name}_count {}", hist.count);
    }
    out
}

/// Renders a [`MetricsSnapshot`] as a complete OpenMetrics exposition:
/// HELP/TYPE metadata per family, `_total`-suffixed counter samples,
/// classic cumulative histogram encoding, and the mandatory `# EOF`
/// terminator.
pub fn render_openmetrics(m: &MetricsSnapshot) -> String {
    let mut out = openmetrics_body(m);
    out.push_str("# EOF\n");
    out
}

/// Parses an OpenMetrics exposition back into its samples, keyed by
/// sample name (labels included verbatim, e.g.
/// `cichar_retry_depth_bucket{le="2"}`).
///
/// # Errors
///
/// Rejects a missing `# EOF` terminator, samples after it, and malformed
/// sample lines — the shape of error a half-written scrape would show.
pub fn parse_openmetrics(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut samples = BTreeMap::new();
    let mut terminated = false;
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if terminated {
            return Err(format!("line {}: content after # EOF", number + 1));
        }
        if line == "# EOF" {
            terminated = true;
            continue;
        }
        if line.starts_with('#') {
            if !(line.starts_with("# HELP ") || line.starts_with("# TYPE ")) {
                return Err(format!("line {}: unknown comment {line:?}", number + 1));
            }
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: malformed sample {line:?}", number + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: non-numeric value {value:?}", number + 1))?;
        samples.insert(name.to_string(), value);
    }
    if !terminated {
        return Err(String::from("missing # EOF terminator"));
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingBufferSink;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cichar_telemetry_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    fn beat(seq: u64, sim_ms: u64, units: u64, probes: u64) -> HeartbeatSnapshot {
        HeartbeatSnapshot {
            seq,
            campaign: String::from("t"),
            phase: String::from("p"),
            sim_time_us: sim_ms * 1000,
            units_done: units,
            units_total: 100,
            touchdowns_done: 0,
            chunks_done: 0,
            probes_resolved: probes,
            probes_issued: probes,
            probes_cached: 0,
            probes_speculative: 0,
            searches_finished: units,
            searches_converged: units,
            retries: 0,
            vote_rounds: 0,
            quarantined: 0,
            faults_dropout: 0,
            faults_flip: 0,
            faults_stuck: 0,
            faults_abort: 0,
            faults_stall: 0,
            watchdog_timeouts: 0,
            breaker_open_sites: Vec::new(),
            quarantine_rate: 0.0,
            sim_trips_per_sec: 0.0,
            alarms_active: Vec::new(),
            wall_ms: 7,
            trips_per_sec: 3.0,
            eta_ms: Some(9),
        }
    }

    #[test]
    fn normalization_clears_only_the_wall_clock_fields() {
        let hb = beat(3, 50, 10, 40);
        let norm = hb.clone().normalized();
        assert_eq!(norm.wall_ms, 0);
        assert_eq!(norm.trips_per_sec, 0.0);
        assert_eq!(norm.eta_ms, None);
        assert_eq!(norm.seq, hb.seq);
        assert_eq!(norm.sim_time_us, hb.sim_time_us);
        assert_eq!(norm.units_done, hb.units_done);
    }

    #[test]
    fn heartbeats_round_trip_through_json_and_hide_empty_lists() {
        let hb = beat(0, 25, 5, 20);
        let json = serde_json::to_string(&hb).expect("serializes");
        assert!(!json.contains("breaker_open_sites"), "{json}");
        assert!(!json.contains("alarms_active"), "{json}");
        let back: HeartbeatSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, hb);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        telemetry.tick(|| unreachable!("closure must not run when disabled"));
        assert_eq!(telemetry.finish().expect("trivially ok"), None);
        assert_eq!(telemetry.health(), None);
        assert_eq!(telemetry.heartbeats(), 0);
    }

    #[test]
    fn heartbeats_fire_on_simulated_deadlines_not_per_tick() {
        let dir = tmp_dir("cadence");
        let tracer = Tracer::new(Arc::new(RingBufferSink::unbounded()));
        let telemetry =
            Telemetry::create_with(&dir, "t", tracer, 10, Vec::new()).expect("tmp is writable");
        // 3 ticks inside the first interval: no heartbeat yet.
        for sim_ms in [2u64, 5, 9] {
            telemetry.tick(|| Progress::units("p", sim_ms * 1000, sim_ms, 100));
        }
        assert_eq!(telemetry.heartbeats(), 0);
        // Crossing 10 ms fires exactly one.
        telemetry.tick(|| Progress::units("p", 11_000, 11, 100));
        assert_eq!(telemetry.heartbeats(), 1);
        // A burst across several intervals still fires one, and the
        // deadline advances past the burst.
        telemetry.tick(|| Progress::units("p", 57_000, 57, 100));
        assert_eq!(telemetry.heartbeats(), 2);
        telemetry.tick(|| Progress::units("p", 59_000, 59, 100));
        assert_eq!(telemetry.heartbeats(), 2, "next deadline is 60 ms");
        let health = telemetry.finish().expect("no I/O error").expect("enabled");
        assert_eq!(health.heartbeats, 3, "finish emits the final snapshot");
        let stream = std::fs::read_to_string(dir.join(HEARTBEAT_FILE)).expect("stream exists");
        let seqs: Vec<u64> = stream
            .lines()
            .map(|l| serde_json::from_str::<HeartbeatSnapshot>(l).expect("parses").seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stall_silence_alarm_raises_and_clears_with_trace_events() {
        let dir = tmp_dir("stall");
        let sink = Arc::new(RingBufferSink::unbounded());
        let tracer = Tracer::new(sink.clone());
        let telemetry = Telemetry::create_with(
            &dir,
            "t",
            tracer.clone(),
            10,
            vec![AlarmRule::StallSilence { max_silent_ms: 15 }],
        )
        .expect("tmp is writable");
        // First heartbeat: no history, rule cannot fire.
        let span = tracer.span(0);
        span.emit(TraceEvent::ProbeResolved {
            value: 1.0,
            verdict: crate::event::TraceVerdict::Pass,
            cached: false,
        });
        tracer.absorb(span);
        telemetry.tick(|| Progress::units("p", 12_000, 1, 4));
        // Second: 20 simulated ms passed, zero probes resolved — stall.
        telemetry.tick(|| Progress::units("p", 32_000, 1, 4));
        // Third: a probe resolved — clears.
        let span = tracer.span(1);
        span.emit(TraceEvent::ProbeResolved {
            value: 1.0,
            verdict: crate::event::TraceVerdict::Pass,
            cached: false,
        });
        tracer.absorb(span);
        telemetry.tick(|| Progress::units("p", 45_000, 2, 4));
        let health = telemetry.finish().expect("no I/O error").expect("enabled");
        assert_eq!(health.alarms_raised, 1);
        assert_eq!(health.alarms_cleared, 1);
        assert!(health.active_alarms.is_empty());
        assert_eq!(health.incidents.len(), 1);
        assert_eq!(health.incidents[0].alarm, "stall_silence");
        assert_eq!(health.incidents[0].raised_at, 1);
        assert_eq!(health.incidents[0].cleared_at, Some(2));
        let events: Vec<String> = sink
            .records()
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::AlarmRaised { alarm, .. } => Some(format!("raised:{alarm}")),
                TraceEvent::AlarmCleared { alarm, .. } => Some(format!("cleared:{alarm}")),
                _ => None,
            })
            .collect();
        assert_eq!(events, vec!["raised:stall_silence", "cleared:stall_silence"]);
        assert_eq!(tracer.metrics().alarms_raised, 1);
        assert_eq!(tracer.metrics().alarms_cleared, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_ceiling_and_fault_spike_fire_on_their_signatures() {
        let quarantine = AlarmRule::QuarantineRateCeiling { max_rate: 0.1 };
        let mut hb = beat(5, 100, 50, 200);
        hb.quarantined = 20;
        hb.quarantine_rate = 0.4;
        assert!(quarantine.evaluate(&[], &hb).is_some());
        hb.quarantine_rate = 0.05;
        assert!(quarantine.evaluate(&[], &hb).is_none());

        let spike = AlarmRule::FaultRateSpike {
            window: 2,
            max_rate: 0.5,
        };
        let history = vec![beat(0, 10, 10, 100)];
        let mut hb = beat(1, 20, 12, 110);
        hb.faults_flip = 9; // 9 faults over 10 probes
        assert!(spike.evaluate(&history, &hb).is_some());
        hb.faults_flip = 2;
        assert!(spike.evaluate(&history, &hb).is_none());
        assert!(spike.evaluate(&[], &hb).is_none(), "needs history");
    }

    #[test]
    fn throughput_drop_compares_against_the_trailing_mean() {
        let rule = AlarmRule::ThroughputDrop {
            window: 2,
            min_fraction: 0.5,
        };
        // Three prior heartbeats -> two prior intervals at 1 unit/ms.
        let history = vec![beat(0, 10, 10, 10), beat(1, 20, 20, 20), beat(2, 30, 30, 30)];
        // Next interval: 10 ms pass, 0 units -> 0 throughput.
        let stalled = beat(3, 40, 30, 40);
        assert!(rule.evaluate(&history, &stalled).is_some());
        let healthy = beat(3, 40, 40, 40);
        assert!(rule.evaluate(&history, &healthy).is_none());
        assert!(rule.evaluate(&history[..2], &stalled).is_none(), "needs window+1");
    }

    #[test]
    fn openmetrics_renders_metadata_and_round_trips_through_the_parser() {
        let mut m = MetricsSnapshot::default();
        m.probes_resolved = 42;
        m.probes_issued = 40;
        m.probes_cached = 2;
        m.retries = 3;
        m.hist_retry_depth.bounds = vec![1, 2];
        m.hist_retry_depth.counts = vec![2, 1, 0];
        m.hist_retry_depth.count = 3;
        m.hist_retry_depth.sum = 4;
        let text = render_openmetrics(&m);
        assert!(text.contains("# HELP cichar_probes_resolved "), "{text}");
        assert!(text.contains("# TYPE cichar_probes_resolved counter"), "{text}");
        assert!(text.contains("cichar_probes_resolved_total 42"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
        let samples = parse_openmetrics(&text).expect("parses");
        assert_eq!(samples.get("cichar_probes_resolved_total"), Some(&42.0));
        assert_eq!(samples.get("cichar_retry_depth_bucket{le=\"1\"}"), Some(&2.0));
        assert_eq!(
            samples.get("cichar_retry_depth_bucket{le=\"2\"}"),
            Some(&3.0),
            "buckets are cumulative"
        );
        assert_eq!(samples.get("cichar_retry_depth_bucket{le=\"+Inf\"}"), Some(&3.0));
        assert_eq!(samples.get("cichar_retry_depth_sum"), Some(&4.0));
        assert_eq!(samples.get("cichar_retry_depth_count"), Some(&3.0));
    }

    #[test]
    fn parser_rejects_torn_expositions() {
        assert!(parse_openmetrics("cichar_x_total 1\n").is_err(), "no EOF");
        assert!(parse_openmetrics("# EOF\ncichar_x_total 1\n").is_err(), "content after EOF");
        assert!(parse_openmetrics("not a sample\n# EOF\n").is_err(), "malformed sample");
        assert!(parse_openmetrics("cichar_x_total nan_ish_junk\n# EOF\n").is_err());
        assert!(parse_openmetrics("# BOGUS comment\n# EOF\n").is_err());
        assert!(parse_openmetrics("# EOF\n").expect("empty is fine").is_empty());
    }

    #[test]
    fn counter_table_covers_every_snapshot_counter_field() {
        // Serialize a snapshot and check the exposition names every
        // integer field: a counter added to the registry macro without a
        // row in `counter_samples` fails here, not in production.
        use serde::{Serialize as _, Value};
        let snapshot = MetricsSnapshot::default();
        let value = snapshot.to_value();
        let object = value.as_map().expect("snapshot is a JSON object").to_vec();
        let text = render_openmetrics(&snapshot);
        let mut counters = 0usize;
        for (field, value) in &object {
            if matches!(value, Value::U64(_) | Value::I64(_)) {
                counters += 1;
                assert!(
                    text.contains(&format!("cichar_{field}_total ")),
                    "counter {field} missing from the OpenMetrics exposition"
                );
            } else {
                assert!(field.starts_with("hist_"), "unexpected field {field}");
            }
        }
        assert_eq!(
            counter_samples(&snapshot).len(),
            counters,
            "table and snapshot disagree on the counter count"
        );
    }

    #[test]
    fn metrics_file_reconciles_with_the_tracer_snapshot() {
        let dir = tmp_dir("prom");
        let tracer = Tracer::new(Arc::new(RingBufferSink::unbounded()));
        let telemetry =
            Telemetry::create_with(&dir, "t", tracer.clone(), 5, Vec::new()).expect("writable");
        let span = tracer.span(0);
        span.emit(TraceEvent::ProbeIssued {
            value: 1.0,
            speculative: false,
        });
        span.emit(TraceEvent::ProbeResolved {
            value: 1.0,
            verdict: crate::event::TraceVerdict::Pass,
            cached: false,
        });
        tracer.absorb(span);
        telemetry.tick(|| Progress::units("p", 6_000, 1, 2));
        telemetry.finish().expect("no I/O error");
        let text = std::fs::read_to_string(dir.join(METRICS_FILE)).expect("file exists");
        let samples = parse_openmetrics(&text).expect("parses");
        let snapshot = tracer.metrics();
        assert_eq!(samples.get("cichar_probes_issued_total"), Some(&1.0));
        assert_eq!(
            samples.get("cichar_probes_resolved_total").copied(),
            Some(snapshot.probes_resolved as f64)
        );
        assert_eq!(samples.get("cichar_heartbeats_total"), Some(&2.0));
        assert_eq!(samples.get("cichar_alarms_active"), Some(&0.0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
