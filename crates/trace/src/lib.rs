//! Structured campaign observability for the characterization pipeline.
//!
//! The paper's argument is statistical — trip-point distributions (fig. 2),
//! STP step savings (fig. 3, eqs. 3/4), GA and committee convergence
//! (table 1) — so the evidence has to be *accounted for*: every probe,
//! search step, vote, retry and generation. This crate provides that
//! accounting as three layers:
//!
//! * **Events** ([`TraceEvent`], [`TraceRecord`]): a typed taxonomy of what
//!   the machinery did, streamed to a [`TraceSink`] ([`NullSink`],
//!   [`RingBufferSink`], or the atomically-committed [`JsonlSink`]).
//! * **Metrics** ([`MetricsRegistry`], [`MetricsSnapshot`]): lock-free
//!   counters and fixed-bucket histograms derived from the event stream,
//!   merged deterministically across worker shards like ledgers are.
//! * **Manifests** ([`RunManifest`]): the per-run artifact tying seed,
//!   config, code version, metrics and per-phase totals together.
//! * **Timings** ([`TimedTracer`], [`TimingRegistry`]): an opt-in
//!   wall-clock sidecar of per-span and per-phase durations. Wall time is
//!   nondeterministic, so it is kept strictly out of the event stream —
//!   a timed and an untimed tracer emit byte-identical normalized traces
//!   — and lands in the manifest's `timings` section instead.
//!
//! # Determinism contract
//!
//! Per-test events are collected in [`SpanTrace`]s by whichever thread
//! runs the test, and absorbed by the coordinator **in input-index order**
//! ([`Tracer::absorb`]). Sequence numbers are assigned at absorb time, so
//! `threads=1` and `threads=8` runs of a seeded campaign emit identical
//! event streams up to wall-clock timestamps — which
//! [`TraceRecord::normalized`] / [`normalize_jsonl`] strip, making golden
//! traces diffable byte-for-byte.
//!
//! # Examples
//!
//! ```
//! use cichar_trace::{RingBufferSink, TraceEvent, Tracer};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(RingBufferSink::unbounded());
//! let tracer = Tracer::new(sink.clone());
//! let span = tracer.span(0);
//! span.emit(TraceEvent::ProbeIssued { value: 110.0, speculative: false });
//! tracer.absorb(span);
//! assert_eq!(sink.records().len(), 1);
//! assert_eq!(tracer.metrics().probes_issued, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod manifest;
mod metrics;
mod sink;
mod telemetry;
mod timing;
mod tracer;

pub use event::{normalize_jsonl, FaultKind, TraceEvent, TraceRecord, TraceVerdict};
pub use manifest::{
    describe_version, ensure_writable, peak_rss_bytes, peak_rss_bytes_from, RecoverySection,
    RunManifest,
};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use sink::{JsonlSink, NullSink, RingBufferSink, TraceSink};
pub use telemetry::{
    parse_openmetrics, render_openmetrics, AlarmIncident, AlarmRule, HealthSection,
    HeartbeatSnapshot, Progress, Telemetry, DEFAULT_HEARTBEAT_EVERY_MS, HEARTBEAT_FILE,
    METRICS_FILE,
};
pub use timing::{PhaseTiming, SpanClock, TimingRegistry, TimingSnapshot, UNPHASED};
pub use tracer::{PhaseSummary, SpanTrace, TimedTracer, Tracer};
