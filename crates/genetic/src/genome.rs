//! Chromosomes, individuals and the species layout.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-locus inclusive bounds for one chromosome.
///
/// # Examples
///
/// ```
/// use cichar_genetic::GenomeSpec;
/// use rand::SeedableRng;
///
/// let spec = GenomeSpec::new(vec![(0, 3), (10, 20)]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let genes = spec.random(&mut rng);
/// assert!(spec.validate(&genes));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenomeSpec {
    bounds: Vec<(u32, u32)>,
}

impl GenomeSpec {
    /// Creates a spec from per-locus `(low, high)` inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics if any `low > high` or the spec is empty.
    pub fn new(bounds: Vec<(u32, u32)>) -> Self {
        assert!(!bounds.is_empty(), "empty genome spec");
        for &(lo, hi) in &bounds {
            assert!(lo <= hi, "inverted bounds ({lo}, {hi})");
        }
        Self { bounds }
    }

    /// A spec with `len` identical loci in `[lo, hi]`.
    pub fn uniform(len: usize, lo: u32, hi: u32) -> Self {
        Self::new(vec![(lo, hi); len])
    }

    /// Number of loci.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Specs are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The per-locus bounds.
    pub fn bounds(&self) -> &[(u32, u32)] {
        &self.bounds
    }

    /// Draws a uniformly random gene string.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u32> {
        self.bounds
            .iter()
            .map(|&(lo, hi)| rng.gen_range(lo..=hi))
            .collect()
    }

    /// Whether every gene respects its bounds.
    pub fn validate(&self, genes: &[u32]) -> bool {
        genes.len() == self.len()
            && genes
                .iter()
                .zip(&self.bounds)
                .all(|(g, &(lo, hi))| *g >= lo && *g <= hi)
    }

    /// Mutates in place: each locus independently, with probability
    /// `rate`, either re-draws uniformly or creeps by a small delta
    /// (half/half) — staying in bounds.
    pub fn mutate<R: Rng + ?Sized>(&self, genes: &mut [u32], rate: f64, rng: &mut R) {
        debug_assert_eq!(genes.len(), self.len());
        for (g, &(lo, hi)) in genes.iter_mut().zip(&self.bounds) {
            if rng.gen::<f64>() >= rate {
                continue;
            }
            if lo == hi {
                continue;
            }
            if rng.gen::<bool>() {
                *g = rng.gen_range(lo..=hi);
            } else {
                // Creep: ±up to 10% of the span, at least 1.
                let span = hi - lo;
                let step = (span / 10).max(1);
                let delta = rng.gen_range(1..=step);
                *g = if rng.gen::<bool>() {
                    g.saturating_add(delta).min(hi)
                } else {
                    g.saturating_sub(delta).max(lo)
                };
            }
        }
    }

    /// One-point crossover of two parents into two children.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on length mismatch.
    pub fn crossover_one_point<R: Rng + ?Sized>(
        &self,
        a: &[u32],
        b: &[u32],
        rng: &mut R,
    ) -> (Vec<u32>, Vec<u32>) {
        debug_assert_eq!(a.len(), self.len());
        debug_assert_eq!(b.len(), self.len());
        if self.len() < 2 {
            return (a.to_vec(), b.to_vec());
        }
        let cut = rng.gen_range(1..self.len());
        let child_a = a[..cut].iter().chain(&b[cut..]).copied().collect();
        let child_b = b[..cut].iter().chain(&a[cut..]).copied().collect();
        (child_a, child_b)
    }

    /// Uniform crossover: each locus comes from either parent with equal
    /// probability.
    pub fn crossover_uniform<R: Rng + ?Sized>(
        &self,
        a: &[u32],
        b: &[u32],
        rng: &mut R,
    ) -> (Vec<u32>, Vec<u32>) {
        debug_assert_eq!(a.len(), self.len());
        debug_assert_eq!(b.len(), self.len());
        let mut child_a = Vec::with_capacity(self.len());
        let mut child_b = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            if rng.gen::<bool>() {
                child_a.push(a[i]);
                child_b.push(b[i]);
            } else {
                child_a.push(b[i]);
                child_b.push(a[i]);
            }
        }
        (child_a, child_b)
    }
}

/// The fixed chromosome layout every individual of a run shares — §5's
/// "two different types of chromosomes" is a two-entry layout (test
/// sequence genes, test condition genes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpeciesLayout {
    specs: Vec<GenomeSpec>,
}

impl SpeciesLayout {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn new(specs: Vec<GenomeSpec>) -> Self {
        assert!(!specs.is_empty(), "layout needs at least one chromosome");
        Self { specs }
    }

    /// The chromosome specs.
    pub fn specs(&self) -> &[GenomeSpec] {
        &self.specs
    }

    /// Number of chromosomes per individual.
    pub fn chromosome_count(&self) -> usize {
        self.specs.len()
    }

    /// Draws a fully random individual.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Individual {
        Individual {
            chromosomes: self.specs.iter().map(|s| s.random(rng)).collect(),
        }
    }

    /// Whether an individual matches the layout.
    pub fn validate(&self, ind: &Individual) -> bool {
        ind.chromosomes.len() == self.specs.len()
            && ind
                .chromosomes
                .iter()
                .zip(&self.specs)
                .all(|(genes, spec)| spec.validate(genes))
    }

    /// Crossover per chromosome (one-point for long chromosomes, uniform
    /// for short condition-style ones), producing two children.
    pub fn crossover<R: Rng + ?Sized>(
        &self,
        a: &Individual,
        b: &Individual,
        rng: &mut R,
    ) -> (Individual, Individual) {
        let mut ca = Vec::with_capacity(self.specs.len());
        let mut cb = Vec::with_capacity(self.specs.len());
        for (spec, (ga, gb)) in self
            .specs
            .iter()
            .zip(a.chromosomes.iter().zip(&b.chromosomes))
        {
            let (x, y) = if spec.len() >= 8 {
                spec.crossover_one_point(ga, gb, rng)
            } else {
                spec.crossover_uniform(ga, gb, rng)
            };
            ca.push(x);
            cb.push(y);
        }
        (Individual { chromosomes: ca }, Individual { chromosomes: cb })
    }

    /// Mutates every chromosome of an individual in place.
    pub fn mutate<R: Rng + ?Sized>(&self, ind: &mut Individual, rate: f64, rng: &mut R) {
        for (spec, genes) in self.specs.iter().zip(&mut ind.chromosomes) {
            spec.mutate(genes, rate, rng);
        }
    }
}

/// One candidate solution: a gene string per chromosome in the layout.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Individual {
    /// Gene strings, one per chromosome of the [`SpeciesLayout`].
    pub chromosomes: Vec<Vec<u32>>,
}

impl Individual {
    /// Builds an individual from explicit chromosomes.
    pub fn new(chromosomes: Vec<Vec<u32>>) -> Self {
        Self { chromosomes }
    }

    /// The `i`-th chromosome.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn chromosome(&self, i: usize) -> &[u32] {
        &self.chromosomes[i]
    }
}

impl fmt::Display for Individual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "individual[{} chromosomes: {:?} loci]",
            self.chromosomes.len(),
            self.chromosomes.iter().map(Vec::len).collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn random_respects_bounds() {
        let spec = GenomeSpec::new(vec![(0, 0), (5, 5), (1, 100)]);
        let mut r = rng();
        for _ in 0..50 {
            let g = spec.random(&mut r);
            assert!(spec.validate(&g), "{g:?}");
            assert_eq!(g[0], 0);
            assert_eq!(g[1], 5);
        }
    }

    #[test]
    fn mutation_keeps_bounds_and_changes_something() {
        let spec = GenomeSpec::uniform(64, 0, 1000);
        let mut r = rng();
        let original = spec.random(&mut r);
        let mut mutated = original.clone();
        spec.mutate(&mut mutated, 0.5, &mut r);
        assert!(spec.validate(&mutated));
        assert_ne!(mutated, original, "rate 0.5 over 64 loci must change some");
    }

    #[test]
    fn zero_rate_mutation_is_identity() {
        let spec = GenomeSpec::uniform(32, 0, 9);
        let mut r = rng();
        let original = spec.random(&mut r);
        let mut copy = original.clone();
        spec.mutate(&mut copy, 0.0, &mut r);
        assert_eq!(copy, original);
    }

    #[test]
    fn one_point_crossover_preserves_material() {
        let spec = GenomeSpec::uniform(10, 0, 9);
        let a = vec![0u32; 10];
        let b = vec![9u32; 10];
        let mut r = rng();
        let (ca, cb) = spec.crossover_one_point(&a, &b, &mut r);
        // Each child locus comes from one parent; the two children are
        // complementary.
        for i in 0..10 {
            assert_eq!(ca[i] + cb[i], 9);
        }
        assert!(ca.contains(&0) && ca.contains(&9));
    }

    #[test]
    fn uniform_crossover_is_complementary() {
        let spec = GenomeSpec::uniform(16, 0, 9);
        let a = vec![1u32; 16];
        let b = vec![8u32; 16];
        let mut r = rng();
        let (ca, cb) = spec.crossover_uniform(&a, &b, &mut r);
        for i in 0..16 {
            assert_eq!(ca[i] + cb[i], 9);
        }
    }

    #[test]
    fn layout_random_and_validate() {
        let layout = SpeciesLayout::new(vec![
            GenomeSpec::uniform(57, 0, 100),
            GenomeSpec::uniform(3, 0, 1000),
        ]);
        let mut r = rng();
        let ind = layout.random(&mut r);
        assert!(layout.validate(&ind));
        assert_eq!(ind.chromosome(0).len(), 57);
        assert_eq!(ind.chromosome(1).len(), 3);
    }

    #[test]
    fn layout_crossover_keeps_validity() {
        let layout = SpeciesLayout::new(vec![
            GenomeSpec::uniform(20, 0, 50),
            GenomeSpec::uniform(3, 0, 10),
        ]);
        let mut r = rng();
        let a = layout.random(&mut r);
        let b = layout.random(&mut r);
        let (ca, cb) = layout.crossover(&a, &b, &mut r);
        assert!(layout.validate(&ca));
        assert!(layout.validate(&cb));
    }

    #[test]
    fn single_locus_crossover_is_identity() {
        let spec = GenomeSpec::uniform(1, 0, 9);
        let mut r = rng();
        let (a, b) = spec.crossover_one_point(&[3], &[7], &mut r);
        assert_eq!((a, b), (vec![3], vec![7]));
    }

    #[test]
    #[should_panic(expected = "inverted bounds")]
    fn spec_rejects_inverted_bounds() {
        let _ = GenomeSpec::new(vec![(5, 1)]);
    }

    #[test]
    fn individual_display() {
        let ind = Individual::new(vec![vec![1, 2], vec![3]]);
        assert!(ind.to_string().contains("2 chromosomes"));
    }
}
