//! The multi-population GA engine (fig. 5, steps 3–4).

use crate::genome::{Individual, SpeciesLayout};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// GA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Individuals per island population.
    pub population_size: usize,
    /// Number of island populations ("evolving multiple populations of
    /// different individuals", §5).
    pub islands: usize,
    /// Generation budget across the whole run (fig. 5's "maximum
    /// optimization steps").
    pub generations: usize,
    /// Probability a selected pair recombines (else the parents clone).
    pub crossover_rate: f64,
    /// Per-locus mutation probability.
    pub mutation_rate: f64,
    /// Individuals copied unchanged into the next generation, per island.
    pub elitism: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Generations between migrations of the best individuals.
    pub migration_interval: usize,
    /// Individuals migrating per island at each migration.
    pub migrants: usize,
    /// Restart an island with fresh random individuals after this many
    /// generations without improvement (fig. 5: "a brand new population
    /// will start GA again"). Zero disables restarts.
    pub stagnation_restart: usize,
    /// Stop the run as soon as the best fitness reaches this value —
    /// fig. 5's "until … the worst case is detected based on worst case
    /// ratio theorem". `None` runs the full generation budget.
    pub target_fitness: Option<f64>,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            population_size: 40,
            islands: 3,
            generations: 80,
            crossover_rate: 0.9,
            mutation_rate: 0.08,
            elitism: 2,
            tournament: 3,
            migration_interval: 10,
            migrants: 2,
            stagnation_restart: 15,
            target_fitness: None,
        }
    }
}

/// Per-generation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Best fitness seen so far (across all islands and generations).
    pub best_so_far: f64,
    /// Best fitness within this generation.
    pub generation_best: f64,
    /// Mean fitness of this generation across islands.
    pub mean: f64,
}

/// The result of a GA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaResult {
    /// The best individual ever evaluated.
    pub best: Individual,
    /// Its fitness.
    pub best_fitness: f64,
    /// Per-generation statistics.
    pub history: Vec<GenerationStats>,
    /// Total fitness evaluations performed (= ATE measurements in the
    /// characterization setting).
    pub evaluations: usize,
    /// How many island restarts stagnation triggered.
    pub restarts: usize,
}

impl fmt::Display for GaResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "best fitness {:.4} after {} evaluations ({} restarts)",
            self.best_fitness, self.evaluations, self.restarts
        )
    }
}

#[derive(Debug, Clone)]
struct Scored {
    individual: Individual,
    fitness: f64,
}

/// Scores individuals for the engine.
///
/// The engine generates every child of a generation *before* scoring any
/// of them (generation draws from the engine RNG; scoring must not), then
/// hands the whole brood to [`FitnessEvaluator::evaluate_batch`]. A plain
/// `FnMut(&Individual) -> f64` closure is an evaluator via the blanket
/// impl and scores the batch one by one; [`ParallelFitness`] fans the
/// batch out across worker threads instead; measurement-backed evaluators
/// (the characterization stack's WCR fitness) override `evaluate_batch`
/// to route each individual's probes through a batched oracle rather than
/// letting the default per-individual loop pay scalar bookkeeping per
/// probe. Either way the engine's RNG stream and the order fitness values
/// are consumed in are identical, so the GA result is the same.
pub trait FitnessEvaluator {
    /// Scores one individual.
    fn evaluate(&mut self, individual: &Individual) -> f64;

    /// Scores a batch, returning fitnesses index-aligned with `batch`.
    /// Implementations may evaluate concurrently, but the returned order
    /// must match the input order.
    fn evaluate_batch(&mut self, batch: &[Individual]) -> Vec<f64> {
        batch.iter().map(|ind| self.evaluate(ind)).collect()
    }
}

impl<F: FnMut(&Individual) -> f64> FitnessEvaluator for F {
    fn evaluate(&mut self, individual: &Individual) -> f64 {
        self(individual)
    }
}

/// A [`FitnessEvaluator`] that scores each generation's brood across
/// worker threads.
///
/// The evaluation function receives the **global evaluation index** (how
/// many evaluations preceded this one in the run) alongside the
/// individual. Stochastic fitness functions derive their RNG seed from
/// that index (e.g. `cichar_exec::derive_seed(campaign_seed, index)`), so
/// the score of evaluation *i* does not depend on which thread ran it or
/// when — the GA trajectory is bit-identical for every thread count.
///
/// # Examples
///
/// ```
/// use cichar_exec::ExecPolicy;
/// use cichar_genetic::{FitnessEvaluator, ParallelFitness};
///
/// let mut eval = ParallelFitness::new(ExecPolicy::with_threads(4), |index, ind| {
///     let _ = index; // seed per-evaluation randomness from this
///     ind.chromosome(0).iter().sum::<u32>() as f64
/// });
/// # let _ = &mut eval;
/// ```
#[derive(Debug, Clone)]
pub struct ParallelFitness<F> {
    policy: cichar_exec::ExecPolicy,
    evaluated: usize,
    eval: F,
}

impl<F> ParallelFitness<F>
where
    F: Fn(usize, &Individual) -> f64 + Sync,
{
    /// Creates the evaluator; `eval` is called as `eval(global_index,
    /// individual)` and must be pure given its arguments (derive any
    /// randomness from `global_index`).
    pub fn new(policy: cichar_exec::ExecPolicy, eval: F) -> Self {
        Self {
            policy,
            evaluated: 0,
            eval,
        }
    }

    /// Evaluations performed so far.
    pub fn evaluations(&self) -> usize {
        self.evaluated
    }
}

impl<F> FitnessEvaluator for ParallelFitness<F>
where
    F: Fn(usize, &Individual) -> f64 + Sync,
{
    fn evaluate(&mut self, individual: &Individual) -> f64 {
        let index = self.evaluated;
        self.evaluated += 1;
        (self.eval)(index, individual)
    }

    fn evaluate_batch(&mut self, batch: &[Individual]) -> Vec<f64> {
        let base = self.evaluated;
        self.evaluated += batch.len();
        cichar_exec::par_map_ref(self.policy, batch, |i, ind| (self.eval)(base + i, ind))
    }
}

/// Scores `individuals` in order through the evaluator, charging the
/// engine's evaluation counter.
fn score_batch<F: FitnessEvaluator + ?Sized>(
    individuals: Vec<Individual>,
    evaluations: &mut usize,
    fitness: &mut F,
) -> Vec<Scored> {
    *evaluations += individuals.len();
    let fits = fitness.evaluate_batch(&individuals);
    debug_assert_eq!(fits.len(), individuals.len(), "evaluator must score all");
    individuals
        .into_iter()
        .zip(fits)
        .map(|(individual, fitness)| Scored {
            individual,
            fitness,
        })
        .collect()
}

/// The engine: island populations, tournament selection, elitism,
/// migration and stagnation restarts. Fitness is always *maximized*; the
/// characterization stack maximizes WCR directly (eqs. 5–6 are both
/// "largest WCR wins").
///
/// # Examples
///
/// See the [crate-level docs](crate) for a complete run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaEngine {
    config: GaConfig,
    layout: SpeciesLayout,
}

impl GaEngine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (empty populations, zero
    /// islands, zero tournament).
    pub fn new(config: GaConfig, layout: SpeciesLayout) -> Self {
        assert!(config.population_size >= 2, "population too small");
        assert!(config.islands >= 1, "need at least one island");
        assert!(config.tournament >= 1, "tournament needs entrants");
        assert!(
            config.elitism < config.population_size,
            "elitism must leave room for offspring"
        );
        Self { config, layout }
    }

    /// The engine's layout.
    pub fn layout(&self) -> &SpeciesLayout {
        &self.layout
    }

    /// Runs with random initial populations.
    pub fn run<F, R>(&self, mut fitness: F, rng: &mut R) -> GaResult
    where
        F: FnMut(&Individual) -> f64,
        R: Rng + ?Sized,
    {
        self.run_seeded_with(Vec::new(), &mut fitness, rng)
    }

    /// Runs with random initial populations and an explicit
    /// [`FitnessEvaluator`] (e.g. [`ParallelFitness`]). The evaluator is
    /// borrowed so callers can inspect any state it accumulated after the
    /// run.
    pub fn run_with<F, R>(&self, fitness: &mut F, rng: &mut R) -> GaResult
    where
        F: FitnessEvaluator + ?Sized,
        R: Rng + ?Sized,
    {
        self.run_seeded_with(Vec::new(), fitness, rng)
    }

    /// Runs with the first population(s) seeded by known-promising
    /// individuals — fig. 5 step (1): "a number of GA test populations are
    /// initialized by a set of sub-optimal tests selected by fuzzy-neural
    /// network test generator".
    ///
    /// Seeds are distributed round-robin across islands; remaining slots
    /// fill randomly. Seeds that do not match the layout are ignored.
    pub fn run_seeded<F, R>(&self, seeds: Vec<Individual>, mut fitness: F, rng: &mut R) -> GaResult
    where
        F: FnMut(&Individual) -> f64,
        R: Rng + ?Sized,
    {
        self.run_seeded_with(seeds, &mut fitness, rng)
    }

    /// [`GaEngine::run_seeded`] with an explicit [`FitnessEvaluator`].
    /// Closures route here through the blanket impl; a batch-parallel
    /// evaluator with a pure, index-seeded fitness function produces the
    /// same result for every thread count.
    pub fn run_seeded_with<F, R>(
        &self,
        seeds: Vec<Individual>,
        fitness: &mut F,
        rng: &mut R,
    ) -> GaResult
    where
        F: FitnessEvaluator + ?Sized,
        R: Rng + ?Sized,
    {
        let c = &self.config;
        let mut evaluations = 0usize;

        // Initialize islands. Valid seeds go round-robin (capped at total
        // capacity), scored as one batch in seed order; each island's
        // random remainder is generated first — all engine-RNG draws —
        // then scored as a second batch.
        let accepted: Vec<Individual> = seeds
            .into_iter()
            .filter(|s| self.layout.validate(s))
            .take(c.islands * c.population_size)
            .collect();
        let mut islands: Vec<Vec<Scored>> = Vec::with_capacity(c.islands);
        for _ in 0..c.islands {
            islands.push(Vec::with_capacity(c.population_size));
        }
        for (j, scored) in score_batch(accepted, &mut evaluations, fitness)
            .into_iter()
            .enumerate()
        {
            islands[j % c.islands].push(scored);
        }
        for island in &mut islands {
            let fresh: Vec<Individual> = (island.len()..c.population_size)
                .map(|_| self.layout.random(rng))
                .collect();
            island.extend(score_batch(fresh, &mut evaluations, fitness));
        }

        let mut best: Scored = islands
            .iter()
            .flatten()
            .max_by(|a, b| a.fitness.total_cmp(&b.fitness))
            .expect("populations non-empty")
            .clone();
        let mut history = Vec::with_capacity(c.generations);
        let mut restarts = 0usize;
        let mut stagnant = vec![0usize; c.islands];
        let mut island_best = vec![f64::NEG_INFINITY; c.islands];

        for generation in 0..c.generations {
            // Migration: each island sends copies of its best to the next.
            if c.migration_interval > 0
                && c.islands > 1
                && generation > 0
                && generation % c.migration_interval == 0
            {
                let emigrants: Vec<Vec<Scored>> = islands
                    .iter()
                    .map(|island| {
                        let mut sorted: Vec<Scored> = island.clone();
                        sorted.sort_by(|a, b| b.fitness.total_cmp(&a.fitness));
                        sorted.into_iter().take(c.migrants).collect()
                    })
                    .collect();
                for (i, movers) in emigrants.into_iter().enumerate() {
                    let target = (i + 1) % c.islands;
                    let island = &mut islands[target];
                    island.sort_by(|a, b| b.fitness.total_cmp(&a.fitness));
                    for (slot, mover) in movers.into_iter().enumerate() {
                        let idx = island.len() - 1 - slot;
                        island[idx] = mover;
                    }
                }
            }

            // Evolve each island one generation. Selection and variation
            // read only the *previous* generation's fitness and exhaust
            // all engine-RNG draws up front, so the whole brood exists
            // before scoring starts and the evaluator may fan it out.
            for (i, island) in islands.iter_mut().enumerate() {
                island.sort_by(|a, b| b.fitness.total_cmp(&a.fitness));
                let elites: Vec<Scored> = island.iter().take(c.elitism).cloned().collect();
                let offspring = c.population_size - elites.len();
                let mut brood: Vec<Individual> = Vec::with_capacity(offspring);
                while brood.len() < offspring {
                    let pa = tournament(island, c.tournament, rng);
                    let pb = tournament(island, c.tournament, rng);
                    let (mut ca, mut cb) = if rng.gen::<f64>() < c.crossover_rate {
                        self.layout
                            .crossover(&pa.individual, &pb.individual, rng)
                    } else {
                        (pa.individual.clone(), pb.individual.clone())
                    };
                    self.layout.mutate(&mut ca, c.mutation_rate, rng);
                    self.layout.mutate(&mut cb, c.mutation_rate, rng);
                    // An odd brood still pays both children's variation
                    // draws; the spare child is simply never scored.
                    brood.push(ca);
                    if brood.len() < offspring {
                        brood.push(cb);
                    }
                }
                let mut next = elites;
                next.extend(score_batch(brood, &mut evaluations, fitness));
                *island = next;

                let gen_best = island
                    .iter()
                    .map(|s| s.fitness)
                    .fold(f64::NEG_INFINITY, f64::max);
                if gen_best > island_best[i] + 1e-12 {
                    island_best[i] = gen_best;
                    stagnant[i] = 0;
                } else {
                    stagnant[i] += 1;
                }

                // Stagnation restart: brand new random population, keeping
                // nothing (the hall-of-fame `best` survives outside).
                if c.stagnation_restart > 0 && stagnant[i] >= c.stagnation_restart {
                    restarts += 1;
                    stagnant[i] = 0;
                    island_best[i] = f64::NEG_INFINITY;
                    let fresh: Vec<Individual> = (0..c.population_size)
                        .map(|_| self.layout.random(rng))
                        .collect();
                    *island = score_batch(fresh, &mut evaluations, fitness);
                }
            }

            // Bookkeeping.
            let all: Vec<&Scored> = islands.iter().flatten().collect();
            let generation_best = all
                .iter()
                .map(|s| s.fitness)
                .fold(f64::NEG_INFINITY, f64::max);
            let mean = all.iter().map(|s| s.fitness).sum::<f64>() / all.len() as f64;
            if let Some(champion) = all
                .iter()
                .max_by(|a, b| a.fitness.total_cmp(&b.fitness))
            {
                if champion.fitness > best.fitness {
                    best = (*champion).clone();
                }
            }
            history.push(GenerationStats {
                generation,
                best_so_far: best.fitness,
                generation_best,
                mean,
            });
            if let Some(target) = c.target_fitness {
                if best.fitness >= target {
                    break;
                }
            }
        }

        GaResult {
            best: best.individual,
            best_fitness: best.fitness,
            history,
            evaluations,
            restarts,
        }
    }
}

fn tournament<'a, R: Rng + ?Sized>(
    island: &'a [Scored],
    k: usize,
    rng: &mut R,
) -> &'a Scored {
    let mut champion = &island[rng.gen_range(0..island.len())];
    for _ in 1..k {
        let challenger = &island[rng.gen_range(0..island.len())];
        if challenger.fitness > champion.fitness {
            champion = challenger;
        }
    }
    champion
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::GenomeSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn onemax_layout() -> SpeciesLayout {
        SpeciesLayout::new(vec![GenomeSpec::uniform(40, 0, 1)])
    }

    fn onemax(ind: &Individual) -> f64 {
        ind.chromosome(0).iter().sum::<u32>() as f64
    }

    #[test]
    fn solves_onemax() {
        let engine = GaEngine::new(
            GaConfig {
                generations: 80,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let result = engine.run(onemax, &mut rng);
        assert!(result.best_fitness >= 38.0, "{result}");
    }

    #[test]
    fn history_best_is_monotone() {
        let engine = GaEngine::new(GaConfig::default(), onemax_layout());
        let mut rng = StdRng::seed_from_u64(4);
        let result = engine.run(onemax, &mut rng);
        for pair in result.history.windows(2) {
            assert!(pair[1].best_so_far >= pair[0].best_so_far);
        }
        assert_eq!(result.history.len(), GaConfig::default().generations);
    }

    #[test]
    fn optimizes_two_chromosome_species() {
        // Sequence chromosome wants all-9s; condition chromosome wants the
        // exact value 500 in each locus — the two-species structure of §5.
        let layout = SpeciesLayout::new(vec![
            GenomeSpec::uniform(16, 0, 9),
            GenomeSpec::uniform(3, 0, 1000),
        ]);
        let engine = GaEngine::new(
            GaConfig {
                generations: 120,
                ..GaConfig::default()
            },
            layout,
        );
        let mut rng = StdRng::seed_from_u64(5);
        let result = engine.run(
            |ind| {
                let seq: f64 = ind.chromosome(0).iter().map(|&g| f64::from(g)).sum();
                let cond: f64 = ind
                    .chromosome(1)
                    .iter()
                    .map(|&g| 1.0 - (f64::from(g) - 500.0).abs() / 500.0)
                    .sum();
                seq / (16.0 * 9.0) + cond / 3.0
            },
            &mut rng,
        );
        assert!(result.best_fitness > 1.6, "{result}");
        for &g in result.best.chromosome(1) {
            assert!((f64::from(g) - 500.0).abs() < 120.0, "condition gene {g}");
        }
    }

    #[test]
    fn seeding_starts_from_known_good_individuals() {
        let layout = onemax_layout();
        // A seed two bits shy of optimal.
        let mut genes = vec![1u32; 40];
        genes[0] = 0;
        genes[1] = 0;
        let seed = Individual::new(vec![genes]);
        let engine = GaEngine::new(
            GaConfig {
                generations: 5,
                ..GaConfig::default()
            },
            layout,
        );
        let mut rng = StdRng::seed_from_u64(6);
        let seeded = engine.run_seeded(vec![seed], onemax, &mut rng);
        // Even a 5-generation budget retains/improves the seed.
        assert!(seeded.best_fitness >= 38.0, "{seeded}");
    }

    #[test]
    fn invalid_seeds_are_ignored() {
        let engine = GaEngine::new(
            GaConfig {
                generations: 2,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
        let bogus = Individual::new(vec![vec![5; 3]]); // wrong shape & bounds
        let mut rng = StdRng::seed_from_u64(7);
        let result = engine.run_seeded(vec![bogus], onemax, &mut rng);
        assert!(result.best_fitness <= 40.0); // simply ran; no panic
    }

    #[test]
    fn stagnation_triggers_restarts_on_flat_fitness() {
        let engine = GaEngine::new(
            GaConfig {
                generations: 40,
                stagnation_restart: 5,
                islands: 2,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
        let mut rng = StdRng::seed_from_u64(8);
        // Constant fitness: every island stagnates immediately.
        let result = engine.run(|_| 1.0, &mut rng);
        assert!(result.restarts >= 10, "restarts = {}", result.restarts);
        assert_eq!(result.best_fitness, 1.0);
    }

    #[test]
    fn zero_stagnation_disables_restarts() {
        let engine = GaEngine::new(
            GaConfig {
                generations: 30,
                stagnation_restart: 0,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
        let mut rng = StdRng::seed_from_u64(9);
        let result = engine.run(|_| 1.0, &mut rng);
        assert_eq!(result.restarts, 0);
    }

    #[test]
    fn evaluations_are_counted() {
        let config = GaConfig {
            generations: 10,
            stagnation_restart: 0,
            ..GaConfig::default()
        };
        let engine = GaEngine::new(config, onemax_layout());
        let mut rng = StdRng::seed_from_u64(10);
        let result = engine.run(onemax, &mut rng);
        // Initial: islands × population; then per generation each island
        // evaluates (population − elitism) children.
        let init = config.islands * config.population_size;
        let per_gen = config.islands * (config.population_size - config.elitism);
        assert_eq!(result.evaluations, init + config.generations * per_gen);
    }

    #[test]
    fn single_island_without_migration_works() {
        let engine = GaEngine::new(
            GaConfig {
                islands: 1,
                migration_interval: 0,
                generations: 60,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
        let mut rng = StdRng::seed_from_u64(11);
        let result = engine.run(onemax, &mut rng);
        assert!(result.best_fitness >= 36.0, "{result}");
    }

    #[test]
    #[should_panic(expected = "population too small")]
    fn rejects_tiny_population() {
        let _ = GaEngine::new(
            GaConfig {
                population_size: 1,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
    }

    #[test]
    fn result_display_mentions_evaluations() {
        let engine = GaEngine::new(
            GaConfig {
                generations: 2,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
        let mut rng = StdRng::seed_from_u64(12);
        let result = engine.run(onemax, &mut rng);
        assert!(result.to_string().contains("evaluations"));
    }

    #[test]
    fn parallel_fitness_reproduces_the_sequential_run() {
        use cichar_exec::ExecPolicy;
        let engine = GaEngine::new(
            GaConfig {
                generations: 20,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
        let sequential = engine.run(onemax, &mut StdRng::seed_from_u64(13));
        for threads in [1, 4, 8] {
            let mut eval =
                ParallelFitness::new(ExecPolicy::with_threads(threads), |_, ind| onemax(ind));
            let parallel = engine.run_with(&mut eval, &mut StdRng::seed_from_u64(13));
            assert_eq!(eval.evaluations(), parallel.evaluations);
            assert_eq!(parallel, sequential, "{threads} threads");
        }
    }

    #[test]
    fn parallel_fitness_indices_cover_every_evaluation_once() {
        use cichar_exec::ExecPolicy;
        use std::sync::Mutex;
        let engine = GaEngine::new(
            GaConfig {
                generations: 6,
                stagnation_restart: 0,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
        let seen = Mutex::new(Vec::new());
        let result = {
            let mut eval = ParallelFitness::new(ExecPolicy::with_threads(4), |index, ind| {
                seen.lock().unwrap().push(index);
                onemax(ind)
            });
            engine.run_with(&mut eval, &mut StdRng::seed_from_u64(14))
        };
        let mut indices = seen.into_inner().unwrap();
        indices.sort_unstable();
        assert_eq!(indices.len(), result.evaluations);
        assert!(indices.iter().enumerate().all(|(i, &idx)| i == idx));
    }

    mod properties {
        use super::*;
        use crate::genome::GenomeSpec;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn evolution_never_leaves_the_gene_bounds(
                seed in 0u64..1000,
                lo in 0u32..50,
                span in 1u32..100,
            ) {
                let layout = SpeciesLayout::new(vec![
                    GenomeSpec::uniform(12, lo, lo + span),
                    GenomeSpec::uniform(3, 0, 10),
                ]);
                let engine = GaEngine::new(
                    GaConfig {
                        population_size: 8,
                        islands: 2,
                        generations: 6,
                        ..GaConfig::default()
                    },
                    layout.clone(),
                );
                let mut rng = StdRng::seed_from_u64(seed);
                let mut all_valid = true;
                let result = engine.run(
                    |ind| {
                        all_valid &= layout.validate(ind);
                        ind.chromosome(0).iter().map(|&g| f64::from(g)).sum()
                    },
                    &mut rng,
                );
                prop_assert!(all_valid, "every evaluated individual in bounds");
                prop_assert!(layout.validate(&result.best));
            }

            #[test]
            fn best_fitness_matches_a_reachable_value(seed in 0u64..200) {
                let layout = SpeciesLayout::new(vec![GenomeSpec::uniform(10, 0, 5)]);
                let engine = GaEngine::new(
                    GaConfig {
                        population_size: 6,
                        islands: 1,
                        generations: 4,
                        ..GaConfig::default()
                    },
                    layout,
                );
                let mut rng = StdRng::seed_from_u64(seed);
                let fitness =
                    |ind: &Individual| ind.chromosome(0).iter().map(|&g| f64::from(g)).sum();
                let result = engine.run(fitness, &mut rng);
                prop_assert_eq!(result.best_fitness, fitness(&result.best));
                prop_assert!(result.best_fitness <= 50.0);
            }
        }
    }
}
