//! The multi-population GA engine (fig. 5, steps 3–4).

use crate::genome::{Individual, SpeciesLayout};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// GA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Individuals per island population.
    pub population_size: usize,
    /// Number of island populations ("evolving multiple populations of
    /// different individuals", §5).
    pub islands: usize,
    /// Generation budget across the whole run (fig. 5's "maximum
    /// optimization steps").
    pub generations: usize,
    /// Probability a selected pair recombines (else the parents clone).
    pub crossover_rate: f64,
    /// Per-locus mutation probability.
    pub mutation_rate: f64,
    /// Individuals copied unchanged into the next generation, per island.
    pub elitism: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Generations between migrations of the best individuals.
    pub migration_interval: usize,
    /// Individuals migrating per island at each migration.
    pub migrants: usize,
    /// Restart an island with fresh random individuals after this many
    /// generations without improvement (fig. 5: "a brand new population
    /// will start GA again"). Zero disables restarts.
    pub stagnation_restart: usize,
    /// Stop the run as soon as the best fitness reaches this value —
    /// fig. 5's "until … the worst case is detected based on worst case
    /// ratio theorem". `None` runs the full generation budget.
    pub target_fitness: Option<f64>,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            population_size: 40,
            islands: 3,
            generations: 80,
            crossover_rate: 0.9,
            mutation_rate: 0.08,
            elitism: 2,
            tournament: 3,
            migration_interval: 10,
            migrants: 2,
            stagnation_restart: 15,
            target_fitness: None,
        }
    }
}

/// Per-generation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Best fitness seen so far (across all islands and generations).
    pub best_so_far: f64,
    /// Best fitness within this generation.
    pub generation_best: f64,
    /// Mean fitness of this generation across islands.
    pub mean: f64,
}

/// The result of a GA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaResult {
    /// The best individual ever evaluated.
    pub best: Individual,
    /// Its fitness.
    pub best_fitness: f64,
    /// Per-generation statistics.
    pub history: Vec<GenerationStats>,
    /// Total fitness evaluations performed (= ATE measurements in the
    /// characterization setting).
    pub evaluations: usize,
    /// How many island restarts stagnation triggered.
    pub restarts: usize,
}

impl fmt::Display for GaResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "best fitness {:.4} after {} evaluations ({} restarts)",
            self.best_fitness, self.evaluations, self.restarts
        )
    }
}

#[derive(Debug, Clone)]
struct Scored {
    individual: Individual,
    fitness: f64,
}

/// The engine: island populations, tournament selection, elitism,
/// migration and stagnation restarts. Fitness is always *maximized*; the
/// characterization stack maximizes WCR directly (eqs. 5–6 are both
/// "largest WCR wins").
///
/// # Examples
///
/// See the [crate-level docs](crate) for a complete run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaEngine {
    config: GaConfig,
    layout: SpeciesLayout,
}

impl GaEngine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (empty populations, zero
    /// islands, zero tournament).
    pub fn new(config: GaConfig, layout: SpeciesLayout) -> Self {
        assert!(config.population_size >= 2, "population too small");
        assert!(config.islands >= 1, "need at least one island");
        assert!(config.tournament >= 1, "tournament needs entrants");
        assert!(
            config.elitism < config.population_size,
            "elitism must leave room for offspring"
        );
        Self { config, layout }
    }

    /// The engine's layout.
    pub fn layout(&self) -> &SpeciesLayout {
        &self.layout
    }

    /// Runs with random initial populations.
    pub fn run<F, R>(&self, fitness: F, rng: &mut R) -> GaResult
    where
        F: FnMut(&Individual) -> f64,
        R: Rng + ?Sized,
    {
        self.run_seeded(Vec::new(), fitness, rng)
    }

    /// Runs with the first population(s) seeded by known-promising
    /// individuals — fig. 5 step (1): "a number of GA test populations are
    /// initialized by a set of sub-optimal tests selected by fuzzy-neural
    /// network test generator".
    ///
    /// Seeds are distributed round-robin across islands; remaining slots
    /// fill randomly. Seeds that do not match the layout are ignored.
    pub fn run_seeded<F, R>(&self, seeds: Vec<Individual>, mut fitness: F, rng: &mut R) -> GaResult
    where
        F: FnMut(&Individual) -> f64,
        R: Rng + ?Sized,
    {
        let c = &self.config;
        let mut evaluations = 0usize;
        let score = |ind: &Individual, evals: &mut usize, f: &mut F| {
            *evals += 1;
            f(ind)
        };

        // Initialize islands.
        let mut islands: Vec<Vec<Scored>> = Vec::with_capacity(c.islands);
        let mut seed_iter = seeds
            .into_iter()
            .filter(|s| self.layout.validate(s))
            .peekable();
        for _ in 0..c.islands {
            islands.push(Vec::with_capacity(c.population_size));
        }
        let mut island_idx = 0;
        while seed_iter.peek().is_some() {
            if islands[island_idx].len() < c.population_size {
                let ind = seed_iter.next().expect("peeked");
                let fit = score(&ind, &mut evaluations, &mut fitness);
                islands[island_idx].push(Scored {
                    individual: ind,
                    fitness: fit,
                });
            } else {
                break;
            }
            island_idx = (island_idx + 1) % c.islands;
        }
        for island in &mut islands {
            while island.len() < c.population_size {
                let ind = self.layout.random(rng);
                let fit = score(&ind, &mut evaluations, &mut fitness);
                island.push(Scored {
                    individual: ind,
                    fitness: fit,
                });
            }
        }

        let mut best: Scored = islands
            .iter()
            .flatten()
            .max_by(|a, b| a.fitness.total_cmp(&b.fitness))
            .expect("populations non-empty")
            .clone();
        let mut history = Vec::with_capacity(c.generations);
        let mut restarts = 0usize;
        let mut stagnant = vec![0usize; c.islands];
        let mut island_best = vec![f64::NEG_INFINITY; c.islands];

        for generation in 0..c.generations {
            // Migration: each island sends copies of its best to the next.
            if c.migration_interval > 0
                && c.islands > 1
                && generation > 0
                && generation % c.migration_interval == 0
            {
                let emigrants: Vec<Vec<Scored>> = islands
                    .iter()
                    .map(|island| {
                        let mut sorted: Vec<Scored> = island.clone();
                        sorted.sort_by(|a, b| b.fitness.total_cmp(&a.fitness));
                        sorted.into_iter().take(c.migrants).collect()
                    })
                    .collect();
                for (i, movers) in emigrants.into_iter().enumerate() {
                    let target = (i + 1) % c.islands;
                    let island = &mut islands[target];
                    island.sort_by(|a, b| b.fitness.total_cmp(&a.fitness));
                    for (slot, mover) in movers.into_iter().enumerate() {
                        let idx = island.len() - 1 - slot;
                        island[idx] = mover;
                    }
                }
            }

            // Evolve each island one generation.
            for (i, island) in islands.iter_mut().enumerate() {
                let mut next: Vec<Scored> = Vec::with_capacity(c.population_size);
                island.sort_by(|a, b| b.fitness.total_cmp(&a.fitness));
                next.extend(island.iter().take(c.elitism).cloned());
                while next.len() < c.population_size {
                    let pa = tournament(island, c.tournament, rng);
                    let pb = tournament(island, c.tournament, rng);
                    let (mut ca, mut cb) = if rng.gen::<f64>() < c.crossover_rate {
                        self.layout
                            .crossover(&pa.individual, &pb.individual, rng)
                    } else {
                        (pa.individual.clone(), pb.individual.clone())
                    };
                    self.layout.mutate(&mut ca, c.mutation_rate, rng);
                    self.layout.mutate(&mut cb, c.mutation_rate, rng);
                    for child in [ca, cb] {
                        if next.len() >= c.population_size {
                            break;
                        }
                        let fit = score(&child, &mut evaluations, &mut fitness);
                        next.push(Scored {
                            individual: child,
                            fitness: fit,
                        });
                    }
                }
                *island = next;

                let gen_best = island
                    .iter()
                    .map(|s| s.fitness)
                    .fold(f64::NEG_INFINITY, f64::max);
                if gen_best > island_best[i] + 1e-12 {
                    island_best[i] = gen_best;
                    stagnant[i] = 0;
                } else {
                    stagnant[i] += 1;
                }

                // Stagnation restart: brand new random population, keeping
                // nothing (the hall-of-fame `best` survives outside).
                if c.stagnation_restart > 0 && stagnant[i] >= c.stagnation_restart {
                    restarts += 1;
                    stagnant[i] = 0;
                    island_best[i] = f64::NEG_INFINITY;
                    island.clear();
                    while island.len() < c.population_size {
                        let ind = self.layout.random(rng);
                        let fit = score(&ind, &mut evaluations, &mut fitness);
                        island.push(Scored {
                            individual: ind,
                            fitness: fit,
                        });
                    }
                }
            }

            // Bookkeeping.
            let all: Vec<&Scored> = islands.iter().flatten().collect();
            let generation_best = all
                .iter()
                .map(|s| s.fitness)
                .fold(f64::NEG_INFINITY, f64::max);
            let mean = all.iter().map(|s| s.fitness).sum::<f64>() / all.len() as f64;
            if let Some(champion) = all
                .iter()
                .max_by(|a, b| a.fitness.total_cmp(&b.fitness))
            {
                if champion.fitness > best.fitness {
                    best = (*champion).clone();
                }
            }
            history.push(GenerationStats {
                generation,
                best_so_far: best.fitness,
                generation_best,
                mean,
            });
            if let Some(target) = c.target_fitness {
                if best.fitness >= target {
                    break;
                }
            }
        }

        GaResult {
            best: best.individual,
            best_fitness: best.fitness,
            history,
            evaluations,
            restarts,
        }
    }
}

fn tournament<'a, R: Rng + ?Sized>(
    island: &'a [Scored],
    k: usize,
    rng: &mut R,
) -> &'a Scored {
    let mut champion = &island[rng.gen_range(0..island.len())];
    for _ in 1..k {
        let challenger = &island[rng.gen_range(0..island.len())];
        if challenger.fitness > champion.fitness {
            champion = challenger;
        }
    }
    champion
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::GenomeSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn onemax_layout() -> SpeciesLayout {
        SpeciesLayout::new(vec![GenomeSpec::uniform(40, 0, 1)])
    }

    fn onemax(ind: &Individual) -> f64 {
        ind.chromosome(0).iter().sum::<u32>() as f64
    }

    #[test]
    fn solves_onemax() {
        let engine = GaEngine::new(
            GaConfig {
                generations: 80,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let result = engine.run(onemax, &mut rng);
        assert!(result.best_fitness >= 38.0, "{result}");
    }

    #[test]
    fn history_best_is_monotone() {
        let engine = GaEngine::new(GaConfig::default(), onemax_layout());
        let mut rng = StdRng::seed_from_u64(4);
        let result = engine.run(onemax, &mut rng);
        for pair in result.history.windows(2) {
            assert!(pair[1].best_so_far >= pair[0].best_so_far);
        }
        assert_eq!(result.history.len(), GaConfig::default().generations);
    }

    #[test]
    fn optimizes_two_chromosome_species() {
        // Sequence chromosome wants all-9s; condition chromosome wants the
        // exact value 500 in each locus — the two-species structure of §5.
        let layout = SpeciesLayout::new(vec![
            GenomeSpec::uniform(16, 0, 9),
            GenomeSpec::uniform(3, 0, 1000),
        ]);
        let engine = GaEngine::new(
            GaConfig {
                generations: 120,
                ..GaConfig::default()
            },
            layout,
        );
        let mut rng = StdRng::seed_from_u64(5);
        let result = engine.run(
            |ind| {
                let seq: f64 = ind.chromosome(0).iter().map(|&g| f64::from(g)).sum();
                let cond: f64 = ind
                    .chromosome(1)
                    .iter()
                    .map(|&g| 1.0 - (f64::from(g) - 500.0).abs() / 500.0)
                    .sum();
                seq / (16.0 * 9.0) + cond / 3.0
            },
            &mut rng,
        );
        assert!(result.best_fitness > 1.6, "{result}");
        for &g in result.best.chromosome(1) {
            assert!((f64::from(g) - 500.0).abs() < 120.0, "condition gene {g}");
        }
    }

    #[test]
    fn seeding_starts_from_known_good_individuals() {
        let layout = onemax_layout();
        // A seed two bits shy of optimal.
        let mut genes = vec![1u32; 40];
        genes[0] = 0;
        genes[1] = 0;
        let seed = Individual::new(vec![genes]);
        let engine = GaEngine::new(
            GaConfig {
                generations: 5,
                ..GaConfig::default()
            },
            layout,
        );
        let mut rng = StdRng::seed_from_u64(6);
        let seeded = engine.run_seeded(vec![seed], onemax, &mut rng);
        // Even a 5-generation budget retains/improves the seed.
        assert!(seeded.best_fitness >= 38.0, "{seeded}");
    }

    #[test]
    fn invalid_seeds_are_ignored() {
        let engine = GaEngine::new(
            GaConfig {
                generations: 2,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
        let bogus = Individual::new(vec![vec![5; 3]]); // wrong shape & bounds
        let mut rng = StdRng::seed_from_u64(7);
        let result = engine.run_seeded(vec![bogus], onemax, &mut rng);
        assert!(result.best_fitness <= 40.0); // simply ran; no panic
    }

    #[test]
    fn stagnation_triggers_restarts_on_flat_fitness() {
        let engine = GaEngine::new(
            GaConfig {
                generations: 40,
                stagnation_restart: 5,
                islands: 2,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
        let mut rng = StdRng::seed_from_u64(8);
        // Constant fitness: every island stagnates immediately.
        let result = engine.run(|_| 1.0, &mut rng);
        assert!(result.restarts >= 10, "restarts = {}", result.restarts);
        assert_eq!(result.best_fitness, 1.0);
    }

    #[test]
    fn zero_stagnation_disables_restarts() {
        let engine = GaEngine::new(
            GaConfig {
                generations: 30,
                stagnation_restart: 0,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
        let mut rng = StdRng::seed_from_u64(9);
        let result = engine.run(|_| 1.0, &mut rng);
        assert_eq!(result.restarts, 0);
    }

    #[test]
    fn evaluations_are_counted() {
        let config = GaConfig {
            generations: 10,
            stagnation_restart: 0,
            ..GaConfig::default()
        };
        let engine = GaEngine::new(config, onemax_layout());
        let mut rng = StdRng::seed_from_u64(10);
        let result = engine.run(onemax, &mut rng);
        // Initial: islands × population; then per generation each island
        // evaluates (population − elitism) children.
        let init = config.islands * config.population_size;
        let per_gen = config.islands * (config.population_size - config.elitism);
        assert_eq!(result.evaluations, init + config.generations * per_gen);
    }

    #[test]
    fn single_island_without_migration_works() {
        let engine = GaEngine::new(
            GaConfig {
                islands: 1,
                migration_interval: 0,
                generations: 60,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
        let mut rng = StdRng::seed_from_u64(11);
        let result = engine.run(onemax, &mut rng);
        assert!(result.best_fitness >= 36.0, "{result}");
    }

    #[test]
    #[should_panic(expected = "population too small")]
    fn rejects_tiny_population() {
        let _ = GaEngine::new(
            GaConfig {
                population_size: 1,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
    }

    #[test]
    fn result_display_mentions_evaluations() {
        let engine = GaEngine::new(
            GaConfig {
                generations: 2,
                ..GaConfig::default()
            },
            onemax_layout(),
        );
        let mut rng = StdRng::seed_from_u64(12);
        let result = engine.run(onemax, &mut rng);
        assert!(result.to_string().contains("evaluations"));
    }

    mod properties {
        use super::*;
        use crate::genome::GenomeSpec;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn evolution_never_leaves_the_gene_bounds(
                seed in 0u64..1000,
                lo in 0u32..50,
                span in 1u32..100,
            ) {
                let layout = SpeciesLayout::new(vec![
                    GenomeSpec::uniform(12, lo, lo + span),
                    GenomeSpec::uniform(3, 0, 10),
                ]);
                let engine = GaEngine::new(
                    GaConfig {
                        population_size: 8,
                        islands: 2,
                        generations: 6,
                        ..GaConfig::default()
                    },
                    layout.clone(),
                );
                let mut rng = StdRng::seed_from_u64(seed);
                let mut all_valid = true;
                let result = engine.run(
                    |ind| {
                        all_valid &= layout.validate(ind);
                        ind.chromosome(0).iter().map(|&g| f64::from(g)).sum()
                    },
                    &mut rng,
                );
                prop_assert!(all_valid, "every evaluated individual in bounds");
                prop_assert!(layout.validate(&result.best));
            }

            #[test]
            fn best_fitness_matches_a_reachable_value(seed in 0u64..200) {
                let layout = SpeciesLayout::new(vec![GenomeSpec::uniform(10, 0, 5)]);
                let engine = GaEngine::new(
                    GaConfig {
                        population_size: 6,
                        islands: 1,
                        generations: 4,
                        ..GaConfig::default()
                    },
                    layout,
                );
                let mut rng = StdRng::seed_from_u64(seed);
                let fitness =
                    |ind: &Individual| ind.chromosome(0).iter().map(|&g| f64::from(g)).sum();
                let result = engine.run(fitness, &mut rng);
                prop_assert_eq!(result.best_fitness, fitness(&result.best));
                prop_assert!(result.best_fitness <= 50.0);
            }
        }
    }
}
