//! Genetic algorithm for worst-case test optimization.
//!
//! §5 of the paper: "In order to deal with two different types of
//! chromosomes — test sequences and test conditions — we have developed a
//! GA method evolving multiple populations of different individuals over a
//! number of generations", with fitness measured on the ATE, restart of "a
//! brand new population" whenever "GA fitness value can not improve
//! anymore", and termination on a step budget (fig. 5).
//!
//! The crate is domain-agnostic: an [`Individual`] is a fixed layout of
//! integer chromosomes described by [`GenomeSpec`]s; the characterization
//! stack supplies the decoding (genes → test) and the fitness (measured
//! WCR). The [`GaEngine`] provides tournament selection, one-point /
//! uniform crossover, bounded mutation, elitism, island populations with
//! migration, stagnation-triggered restarts and seeding (the fuzzy-neural
//! generator's sub-optimal tests initialize the first population).
//!
//! # Examples
//!
//! Maximize the number of ones — the canonical GA smoke test:
//!
//! ```
//! use cichar_genetic::{GaConfig, GaEngine, GenomeSpec, SpeciesLayout};
//! use rand::SeedableRng;
//!
//! let layout = SpeciesLayout::new(vec![GenomeSpec::uniform(32, 0, 1)]);
//! let config = GaConfig { generations: 60, ..GaConfig::default() };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let result = GaEngine::new(config, layout).run(
//!     |ind| ind.chromosome(0).iter().sum::<u32>() as f64,
//!     &mut rng,
//! );
//! assert!(result.best_fitness >= 30.0, "got {}", result.best_fitness);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod genome;

pub use engine::{
    FitnessEvaluator, GaConfig, GaEngine, GaResult, GenerationStats, ParallelFitness,
};
pub use genome::{GenomeSpec, Individual, SpeciesLayout};
