//! Chrome trace-event export: renders a JSONL trace stream as a JSON
//! object loadable by Perfetto (<https://ui.perfetto.dev>) or the legacy
//! `chrome://tracing` viewer.
//!
//! Mapping:
//! - campaign phases → complete (`"X"`) slices on `tid 0` ("campaign")
//! - each trip-point search → a `"X"` slice on `tid = test + 1`, with the
//!   probe/step counts in `args`
//! - retries, faults, votes, quarantines → instant (`"i"`) events
//! - GA `best_so_far` → a counter (`"C"`) track
//! - process/thread names → metadata (`"M"`) events
//!
//! Timestamps come from the records' `ts_us` wall clock. A *normalized*
//! trace (golden fixture) has all timestamps zeroed; the export still
//! loads, but every slice collapses to t=0 — profile from raw traces.

use crate::analysis::TraceAnalysis;
use cichar_trace::{TraceEvent, TraceRecord};
use serde::{map_get, Value};
use std::collections::BTreeMap;

/// The `pid` used for every event; there is only one process.
const PID: u64 = 1;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

fn u(n: u64) -> Value {
    Value::U64(n)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn complete_event(name: &str, cat: &str, tid: u64, ts: u64, dur: u64, args: Value) -> Value {
    obj(vec![
        ("name", s(name)),
        ("cat", s(cat)),
        ("ph", s("X")),
        ("ts", u(ts)),
        ("dur", u(dur.max(1))),
        ("pid", u(PID)),
        ("tid", u(tid)),
        ("args", args),
    ])
}

fn instant_event(name: &str, cat: &str, tid: u64, ts: u64, args: Value) -> Value {
    obj(vec![
        ("name", s(name)),
        ("cat", s(cat)),
        ("ph", s("i")),
        ("s", s("t")),
        ("ts", u(ts)),
        ("pid", u(PID)),
        ("tid", u(tid)),
        ("args", args),
    ])
}

fn counter_event(name: &str, ts: u64, values: Value) -> Value {
    obj(vec![
        ("name", s(name)),
        ("cat", s("ga")),
        ("ph", s("C")),
        ("ts", u(ts)),
        ("pid", u(PID)),
        ("tid", u(0)),
        ("args", values),
    ])
}

fn metadata_event(name: &str, tid: u64, args: Value) -> Value {
    obj(vec![
        ("name", s(name)),
        ("ph", s("M")),
        ("pid", u(PID)),
        ("tid", u(tid)),
        ("args", args),
    ])
}

fn tid_for(test: Option<u64>) -> u64 {
    match test {
        Some(t) => t + 1,
        None => 0,
    }
}

/// Renders a record stream as a Chrome trace-event JSON object.
pub fn to_chrome_trace(records: &[TraceRecord]) -> Value {
    let mut events: Vec<Value> = Vec::new();
    events.push(metadata_event(
        "process_name",
        0,
        obj(vec![("name", s("cichar campaign"))]),
    ));
    events.push(metadata_event(
        "thread_name",
        0,
        obj(vec![("name", s("campaign"))]),
    ));

    let mut named_tests: Vec<u64> = records.iter().filter_map(|r| r.test).collect();
    named_tests.sort_unstable();
    named_tests.dedup();
    for test in &named_tests {
        events.push(metadata_event(
            "thread_name",
            test + 1,
            obj(vec![("name", s(&format!("test {test}")))]),
        ));
    }

    // Phase slices: close each phase when the next begins (or at the last
    // timestamp in the stream).
    let last_ts = records.iter().map(|r| r.ts_us).max().unwrap_or(0);
    let mut open_phase: Option<(String, u64)> = None;

    // Search slices; one can be open per test at a time. The tuple is
    // (label, started_us, probes_observed, steps_observed).
    let mut open_searches: BTreeMap<Option<u64>, (String, u64, u64, u64)> = BTreeMap::new();

    for record in records {
        match &record.event {
            TraceEvent::CampaignPhaseChanged { phase } => {
                if let Some((name, started)) = open_phase.take() {
                    events.push(complete_event(
                        &name,
                        "phase",
                        0,
                        started,
                        record.ts_us.saturating_sub(started),
                        obj(vec![]),
                    ));
                }
                open_phase = Some((phase.clone(), record.ts_us));
            }
            TraceEvent::SearchStarted { strategy, order, .. } => {
                open_searches.insert(
                    record.test,
                    (format!("{strategy} ({order})"), record.ts_us, 0, 0),
                );
            }
            TraceEvent::ProbeResolved { .. } => {
                if let Some(entry) = open_searches.get_mut(&record.test) {
                    entry.2 += 1;
                }
            }
            TraceEvent::StepTaken { .. } => {
                if let Some(entry) = open_searches.get_mut(&record.test) {
                    entry.3 += 1;
                }
            }
            TraceEvent::SearchFinished {
                trip_point,
                converged,
                probes,
                ..
            } => {
                if let Some((name, started, probes_seen, steps)) =
                    open_searches.remove(&record.test)
                {
                    let trip = match trip_point {
                        Some(t) => Value::F64(*t),
                        None => Value::Null,
                    };
                    events.push(complete_event(
                        &name,
                        "search",
                        tid_for(record.test),
                        started,
                        record.ts_us.saturating_sub(started),
                        obj(vec![
                            ("probes", u(*probes)),
                            ("probes_observed", u(probes_seen)),
                            ("steps", u(steps)),
                            ("converged", Value::Bool(*converged)),
                            ("trip_point", trip),
                        ]),
                    ));
                }
            }
            TraceEvent::RetryScheduled { attempt, backoff_us } => {
                events.push(instant_event(
                    "retry",
                    "recovery",
                    tid_for(record.test),
                    record.ts_us,
                    obj(vec![
                        ("attempt", u(*attempt)),
                        ("backoff_us", Value::F64(*backoff_us)),
                    ]),
                ));
            }
            TraceEvent::VoteResolved {
                passes,
                fails,
                invalids,
                ..
            } => {
                events.push(instant_event(
                    "vote",
                    "recovery",
                    tid_for(record.test),
                    record.ts_us,
                    obj(vec![
                        ("passes", u(*passes)),
                        ("fails", u(*fails)),
                        ("invalids", u(*invalids)),
                    ]),
                ));
            }
            TraceEvent::FaultInjected { kind } => {
                events.push(instant_event(
                    "fault",
                    "fault",
                    tid_for(record.test),
                    record.ts_us,
                    obj(vec![("kind", s(&format!("{kind:?}")))]),
                ));
            }
            TraceEvent::Quarantined { reason } => {
                events.push(instant_event(
                    "quarantine",
                    "fault",
                    tid_for(record.test),
                    record.ts_us,
                    obj(vec![("reason", s(reason))]),
                ));
            }
            TraceEvent::GaGenerationEvaluated {
                generation,
                best_so_far,
                mean,
                ..
            } => {
                events.push(counter_event(
                    "ga fitness",
                    // Generation events are batch-emitted with near-equal
                    // timestamps; offset by index so the counter track
                    // keeps its x-order in the viewer.
                    record.ts_us + generation,
                    obj(vec![
                        ("best_so_far", Value::F64(*best_so_far)),
                        ("mean", Value::F64(*mean)),
                    ]),
                ));
            }
            TraceEvent::AlarmRaised { alarm, detail, .. } => {
                events.push(instant_event(
                    &format!("alarm raised: {alarm}"),
                    "health",
                    0,
                    record.ts_us,
                    obj(vec![("alarm", s(alarm)), ("detail", s(detail))]),
                ));
            }
            TraceEvent::AlarmCleared { alarm, .. } => {
                events.push(instant_event(
                    &format!("alarm cleared: {alarm}"),
                    "health",
                    0,
                    record.ts_us,
                    obj(vec![("alarm", s(alarm))]),
                ));
            }
            _ => {}
        }
    }
    if let Some((name, started)) = open_phase.take() {
        events.push(complete_event(
            &name,
            "phase",
            0,
            started,
            last_ts.saturating_sub(started),
            obj(vec![]),
        ));
    }

    let count = records.len() as u64;
    obj(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", s("ms")),
        (
            "otherData",
            obj(vec![("exporter", s("cichar-report")), ("records", u(count))]),
        ),
    ])
}

/// Validates that a JSON value is structurally a Chrome trace-event
/// object: a `traceEvents` array whose members all carry the required
/// `ph`/`pid`/`tid` fields and a `ts` (plus `dur`) wherever the phase
/// demands one. Returns the event count, or an error naming the first
/// offence.
pub fn validate_chrome_trace(value: &Value) -> Result<usize, String> {
    let map = value
        .as_map()
        .ok_or_else(|| "top level is not an object".to_string())?;
    let events = map_get(map, "traceEvents")
        .ok_or_else(|| "missing traceEvents".to_string())?
        .as_seq()
        .ok_or_else(|| "traceEvents is not an array".to_string())?;
    for (i, event) in events.iter().enumerate() {
        let event = event
            .as_map()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let ph = map_get(event, "ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} has no ph"))?;
        for key in ["pid", "tid"] {
            if map_get(event, key).and_then(as_u64).is_none() {
                return Err(format!("event {i} ({ph}) has no integer {key}"));
            }
        }
        match ph {
            "M" => {}
            "X" => {
                for key in ["ts", "dur"] {
                    if map_get(event, key).and_then(as_u64).is_none() {
                        return Err(format!("event {i} (X) has no integer {key}"));
                    }
                }
            }
            "i" | "C" => {
                if map_get(event, "ts").and_then(as_u64).is_none() {
                    return Err(format!("event {i} ({ph}) has no integer ts"));
                }
            }
            other => return Err(format!("event {i} has unknown ph {other:?}")),
        }
        if map_get(event, "name").and_then(Value::as_str).is_none() {
            return Err(format!("event {i} has no name"));
        }
    }
    Ok(events.len())
}

/// Convenience: export + analysis from one JSONL text.
pub fn chrome_trace_from_jsonl(text: &str) -> (Value, TraceAnalysis) {
    let mut records = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Ok(record) = serde_json::from_str::<TraceRecord>(line) {
            records.push(record);
        }
    }
    let value = to_chrome_trace(&records);
    (value, TraceAnalysis::from_jsonl(text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_trace::{FaultKind, TraceVerdict};

    fn sample() -> Vec<TraceRecord> {
        let mk = |seq, test, ts_us, event| TraceRecord { seq, test, ts_us, event };
        vec![
            mk(0, None, 0, TraceEvent::CampaignPhaseChanged { phase: "sweep".into() }),
            mk(1, Some(0), 5, TraceEvent::SearchStarted {
                strategy: "stp".into(),
                order: "eq4".into(),
                window: [0.0, 10.0],
                reference: Some(4.0),
                sf: Some(0.5),
            }),
            mk(2, Some(0), 6, TraceEvent::ProbeResolved {
                value: 4.0,
                verdict: TraceVerdict::Pass,
                cached: false,
            }),
            mk(3, Some(0), 7, TraceEvent::StepTaken {
                iteration: 1,
                step_factor: 0.5,
                value: 4.5,
                clamped: false,
                verdict: TraceVerdict::Fail,
            }),
            mk(4, Some(0), 9, TraceEvent::FaultInjected { kind: FaultKind::Flip }),
            mk(5, Some(0), 12, TraceEvent::SearchFinished {
                strategy: "stp".into(),
                trip_point: Some(4.2),
                converged: true,
                probes: 2,
            }),
            mk(6, None, 20, TraceEvent::GaGenerationEvaluated {
                generation: 0,
                best_so_far: 0.9,
                generation_best: 0.9,
                mean: 0.4,
            }),
        ]
    }

    #[test]
    fn export_round_trips_and_validates() {
        let value = to_chrome_trace(&sample());
        let text = serde_json::to_string(&value).expect("serializes");
        let parsed: Value = serde_json::from_str(&text).expect("parses back");
        assert_eq!(parsed, value, "round trip is lossless");
        let count = validate_chrome_trace(&parsed).expect("schema-valid");
        // 2 process/thread metadata + 1 test thread name + 1 search slice
        // + 1 fault instant + 1 counter + 1 trailing phase slice.
        assert_eq!(count, 7);
    }

    #[test]
    fn search_slice_carries_anatomy_args() {
        let value = to_chrome_trace(&sample());
        let events = map_get(value.as_map().unwrap(), "traceEvents")
            .unwrap()
            .as_seq()
            .unwrap();
        let search = events
            .iter()
            .filter_map(Value::as_map)
            .find(|e| map_get(e, "cat").and_then(Value::as_str) == Some("search"))
            .expect("search slice present");
        assert_eq!(map_get(search, "name").and_then(Value::as_str), Some("stp (eq4)"));
        assert_eq!(map_get(search, "ts").and_then(as_u64), Some(5));
        assert_eq!(map_get(search, "dur").and_then(as_u64), Some(7));
        let args = map_get(search, "args").unwrap().as_map().unwrap();
        assert_eq!(map_get(args, "probes").and_then(as_u64), Some(2));
        assert_eq!(map_get(args, "steps").and_then(as_u64), Some(1));
    }

    #[test]
    fn validator_rejects_malformed_events() {
        let bad: Value = serde_json::from_str(
            r#"{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":0,"ts":3}]}"#,
        )
        .unwrap();
        let err = validate_chrome_trace(&bad).unwrap_err();
        assert!(err.contains("dur"), "unexpected error: {err}");
        let not_obj: Value = serde_json::from_str(r#"{"traceEvents":7}"#).unwrap();
        assert!(validate_chrome_trace(&not_obj).is_err());
    }

    #[test]
    fn empty_stream_still_exports_metadata() {
        let value = to_chrome_trace(&[]);
        let count = validate_chrome_trace(&value).expect("valid");
        assert_eq!(count, 2); // process + campaign thread names
    }
}
