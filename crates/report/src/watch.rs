//! The live campaign follower: turns the telemetry sidecars
//! (`heartbeat.jsonl`, `metrics.prom`, and any co-located wafer journal)
//! into a progress/health view.
//!
//! The `cichar-report watch <dir>` subcommand refreshes this view until
//! interrupted; `--once` renders a single frame and `--json` emits the
//! latest heartbeat verbatim for scripting. All parsing lives here so it
//! is unit-testable without a terminal.

use cichar_trace::{parse_openmetrics, HeartbeatSnapshot};
use std::fmt::Write as _;
use std::path::Path;

/// One frame of the follower: the latest heartbeat plus everything else
/// the telemetry directory reveals about the run.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchView {
    /// The newest parseable heartbeat in the stream.
    pub heartbeat: HeartbeatSnapshot,
    /// Heartbeat lines that failed to parse (torn tails are not fatal —
    /// the stream is appended live).
    pub skipped_lines: u64,
    /// Wafer-journal chunk files co-located with the sidecars (0 when
    /// the campaign runs unjournaled or journals elsewhere).
    pub journal_chunks: u64,
    /// OpenMetrics exposition state: `None` when `metrics.prom` is
    /// absent, `Ok(samples)` when it parsed, `Err(why)` when torn.
    pub metrics: Option<Result<usize, String>>,
}

/// Scans a `heartbeat.jsonl` stream for its newest parseable snapshot.
/// Returns the snapshot (if any line parsed) and the count of lines that
/// did not — a live stream's last line may be mid-append.
pub fn latest_heartbeat(text: &str) -> (Option<HeartbeatSnapshot>, u64) {
    let mut latest: Option<HeartbeatSnapshot> = None;
    let mut skipped = 0u64;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<HeartbeatSnapshot>(line) {
            Ok(snapshot) => latest = Some(snapshot),
            Err(_) => skipped += 1,
        }
    }
    (latest, skipped)
}

/// Assembles a [`WatchView`] from the telemetry directory's current
/// contents. `Ok(None)` when no heartbeat has been written yet.
pub fn read_watch_view(dir: &Path) -> Result<Option<WatchView>, String> {
    let path = dir.join(cichar_trace::HEARTBEAT_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(format!("no heartbeat stream at {}", path.display()))
        }
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let (heartbeat, skipped_lines) = latest_heartbeat(&text);
    let Some(heartbeat) = heartbeat else {
        return Ok(None);
    };
    let metrics = std::fs::read_to_string(dir.join(cichar_trace::METRICS_FILE))
        .ok()
        .map(|text| parse_openmetrics(&text).map(|samples| samples.len()));
    let journal_chunks = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| {
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    name.starts_with("journal_chunk_") && name.ends_with(".jsonl")
                })
                .count() as u64
        })
        .unwrap_or(0);
    Ok(Some(WatchView {
        heartbeat,
        skipped_lines,
        journal_chunks,
        metrics,
    }))
}

/// A 24-cell progress bar for `fraction` in `[0, 1]`.
fn bar(fraction: f64) -> String {
    const CELLS: usize = 24;
    let filled = (fraction.clamp(0.0, 1.0) * CELLS as f64).round() as usize;
    format!("[{}{}]", "=".repeat(filled), " ".repeat(CELLS - filled))
}

/// Renders the follower's progress/health table.
pub fn render_watch(view: &WatchView) -> String {
    let hb = &view.heartbeat;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign {} | phase {} | heartbeat #{}",
        hb.campaign, hb.phase, hb.seq
    );

    if let Some(fraction) = hb.fraction_done() {
        let _ = writeln!(
            out,
            "  progress:   {} {:5.1}% ({}/{} units)",
            bar(fraction),
            100.0 * fraction,
            hb.units_done,
            hb.units_total
        );
    } else {
        let _ = writeln!(out, "  progress:   {} units (total open-ended)", hb.units_done);
    }
    if hb.touchdowns_done > 0 || hb.chunks_done > 0 {
        let _ = writeln!(
            out,
            "  wafer:      {} touchdowns, {} chunks committed{}",
            hb.touchdowns_done,
            hb.chunks_done,
            if view.journal_chunks > 0 {
                format!(" ({} journal chunks on disk)", view.journal_chunks)
            } else {
                String::new()
            }
        );
    }
    let _ = writeln!(
        out,
        "  sim clock:  {:.1} ms | {:.1} trips/s (sim)",
        hb.sim_time_us as f64 / 1e3,
        hb.sim_trips_per_sec
    );
    let _ = writeln!(
        out,
        "  wall clock: {:.1} s | {:.1} trips/s{}",
        hb.wall_ms as f64 / 1e3,
        hb.trips_per_sec,
        hb.eta_ms
            .map(|eta| format!(" | eta {:.1} s", eta as f64 / 1e3))
            .unwrap_or_default()
    );
    let _ = writeln!(
        out,
        "  probes:     {} resolved ({} issued, {} cached, {} speculative)",
        hb.probes_resolved, hb.probes_issued, hb.probes_cached, hb.probes_speculative
    );
    let _ = writeln!(
        out,
        "  searches:   {} finished, {} converged, {} quarantined ({:.1}%)",
        hb.searches_finished,
        hb.searches_converged,
        hb.quarantined,
        100.0 * hb.quarantine_rate
    );
    let faults =
        hb.faults_dropout + hb.faults_flip + hb.faults_stuck + hb.faults_abort + hb.faults_stall;
    if faults + hb.retries + hb.vote_rounds + hb.watchdog_timeouts > 0 {
        let _ = writeln!(
            out,
            "  funnel:     {} faults, {} retries, {} votes, {} watchdog timeouts",
            faults, hb.retries, hb.vote_rounds, hb.watchdog_timeouts
        );
    }
    if !hb.breaker_open_sites.is_empty() {
        let _ = writeln!(out, "  breakers:   sites open: {:?}", hb.breaker_open_sites);
    }
    if hb.alarms_active.is_empty() {
        let _ = writeln!(out, "  health:     OK (no active alarms)");
    } else {
        let _ = writeln!(out, "  health:     ALARM {}", hb.alarms_active.join(", "));
    }
    match &view.metrics {
        None => {}
        Some(Ok(samples)) => {
            let _ = writeln!(out, "  metrics:    {samples} OpenMetrics samples");
        }
        Some(Err(why)) => {
            let _ = writeln!(out, "  metrics:    torn exposition ({why})");
        }
    }
    if view.skipped_lines > 0 {
        let _ = writeln!(
            out,
            "  (skipped {} unparseable heartbeat lines — stream may be mid-append)",
            view.skipped_lines
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heartbeat() -> HeartbeatSnapshot {
        let (snapshot, skipped) = latest_heartbeat(
            r#"{"seq":0,"campaign":"wafer","phase":"wafer","sim_time_us":25000,"units_done":48,"units_total":384,"touchdowns_done":12,"chunks_done":1,"probes_resolved":500,"probes_issued":480,"probes_cached":20,"probes_speculative":0,"searches_finished":48,"searches_converged":47,"retries":2,"vote_rounds":1,"quarantined":1,"faults_dropout":1,"faults_flip":1,"faults_stuck":0,"faults_abort":0,"faults_stall":0,"watchdog_timeouts":0,"breaker_open_sites":[2],"quarantine_rate":0.0208,"sim_trips_per_sec":1920.0,"alarms_active":["stall_silence"],"wall_ms":40,"trips_per_sec":1200.0,"eta_ms":280}"#,
        );
        assert_eq!(skipped, 0);
        snapshot.expect("parses")
    }

    #[test]
    fn latest_heartbeat_takes_the_newest_line_and_tolerates_torn_tails() {
        let a = serde_json::to_string(&heartbeat()).expect("serializes");
        let mut b = heartbeat();
        b.seq = 7;
        let b = serde_json::to_string(&b).expect("serializes");
        let text = format!("{a}\n{b}\n{{\"seq\":8,\"camp");
        let (latest, skipped) = latest_heartbeat(&text);
        assert_eq!(latest.expect("two parseable lines").seq, 7);
        assert_eq!(skipped, 1);
        assert_eq!(latest_heartbeat(""), (None, 0));
    }

    #[test]
    fn render_covers_progress_funnel_breakers_and_alarms() {
        let view = WatchView {
            heartbeat: heartbeat(),
            skipped_lines: 1,
            journal_chunks: 2,
            metrics: Some(Ok(31)),
        };
        let rendered = render_watch(&view);
        for needle in [
            "campaign wafer",
            "heartbeat #0",
            "12.5%",
            "48/384 units",
            "12 touchdowns",
            "2 journal chunks on disk",
            "25.0 ms",
            "eta 0.3 s",
            "500 resolved",
            "1 quarantined (2.1%)",
            "2 faults, 2 retries, 1 votes",
            "sites open: [2]",
            "ALARM stall_silence",
            "31 OpenMetrics samples",
            "skipped 1 unparseable",
        ] {
            assert!(rendered.contains(needle), "missing {needle:?} in:\n{rendered}");
        }
    }

    #[test]
    fn healthy_open_ended_runs_render_without_noise() {
        let mut hb = heartbeat();
        hb.units_total = 0;
        hb.retries = 0;
        hb.vote_rounds = 0;
        hb.quarantined = 0;
        hb.faults_dropout = 0;
        hb.faults_flip = 0;
        hb.breaker_open_sites.clear();
        hb.alarms_active.clear();
        hb.eta_ms = None;
        let view = WatchView {
            heartbeat: hb,
            skipped_lines: 0,
            journal_chunks: 0,
            metrics: Some(Err(String::from("missing `# EOF` terminator"))),
        };
        let rendered = render_watch(&view);
        assert!(rendered.contains("total open-ended"), "{rendered}");
        assert!(rendered.contains("OK (no active alarms)"), "{rendered}");
        assert!(rendered.contains("torn exposition"), "{rendered}");
        assert!(!rendered.contains("funnel:"), "{rendered}");
        assert!(!rendered.contains("breakers:"), "{rendered}");
        assert!(!rendered.contains("eta"), "{rendered}");
    }

    #[test]
    fn read_watch_view_reports_absent_streams_and_empty_streams_apart() {
        let dir = std::env::temp_dir().join(format!("cichar_watch_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        std::fs::remove_file(dir.join(cichar_trace::HEARTBEAT_FILE)).ok();
        let err = read_watch_view(&dir).expect_err("no stream yet");
        assert!(err.contains("no heartbeat stream"), "{err}");
        std::fs::write(dir.join(cichar_trace::HEARTBEAT_FILE), b"").expect("touch");
        assert_eq!(read_watch_view(&dir).expect("readable"), None);
        let line = serde_json::to_string(&heartbeat()).expect("serializes");
        std::fs::write(dir.join(cichar_trace::HEARTBEAT_FILE), format!("{line}\n"))
            .expect("write");
        let view = read_watch_view(&dir).expect("readable").expect("one heartbeat");
        assert_eq!(view.heartbeat.seq, 0);
        assert_eq!(view.metrics, None, "no metrics.prom in this dir");
        std::fs::remove_dir_all(&dir).ok();
    }
}
