//! The trace-query engine: loads a JSONL trace stream and computes the
//! campaign's *search anatomy* — where the probes went.
//!
//! The paper's efficiency claims (fig. 3's STP saving, Table 1's
//! technique comparison) are statements about probe budgets; this module
//! turns a raw event stream back into those numbers, per search and per
//! phase: probes per search, STP step-count distributions split by the
//! eq. 3 / eq. 4 walk orientations, cache-hit ratios, the
//! retry → vote → quarantine recovery funnel, and GA / committee
//! convergence trajectories.

use cichar_trace::{FaultKind, TraceEvent, TraceRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One finished trip-point search, reassembled from its events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchAnatomy {
    /// The test index the search belongs to (`None` for campaign-scoped
    /// searches, which the current instrumentation never emits).
    pub test: Option<u64>,
    /// The algorithm (`stp`, `successive_approximation`, …).
    pub strategy: String,
    /// The walk orientation: `eq3` (pass below fail) or `eq4`.
    pub order: String,
    /// The reference trip point anchoring an STP walk, if any.
    pub reference: Option<f64>,
    /// STP window-walk iterations observed.
    pub steps: u64,
    /// Steps whose growing window saturated at the `CR` edge.
    pub clamped_steps: u64,
    /// Probe verdicts observed during the search.
    pub probes: u64,
    /// Of those, answered from the oracle memo cache.
    pub cached: u64,
    /// Whether the search converged on a trip point.
    pub converged: bool,
    /// The reported trip point, when converged.
    pub trip_point: Option<f64>,
    /// Wall-clock microseconds from start to finish record (0 in
    /// normalized streams, whose timestamps are stripped).
    pub wall_us: u64,
}

/// Summary statistics over one quantity (integer-valued observations).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Stats {
    /// Number of observations.
    pub count: u64,
    /// Sum of the observations.
    pub sum: u64,
    /// Smallest observation (0 when `count == 0`).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

impl Stats {
    fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One GA generation's convergence record (fitness trajectory from the
/// event stream; probe cost is amortized, see
/// [`TraceAnalysis::ga_amortized_probes_per_generation`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaGeneration {
    /// The generation index (0-based).
    pub generation: u64,
    /// Best fitness seen so far.
    pub best_so_far: f64,
    /// Best fitness within this generation.
    pub generation_best: f64,
    /// Mean fitness of this generation.
    pub mean: f64,
}

/// One campaign phase's share of the stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSlice {
    /// The phase name.
    pub phase: String,
    /// Records attributed to the phase.
    pub records: u64,
    /// Probe verdicts observed during the phase.
    pub probes: u64,
    /// Searches finished during the phase.
    pub searches: u64,
    /// Wall-clock microseconds covered by the phase (from record
    /// timestamps; 0 in normalized streams).
    pub wall_us: u64,
}

/// The recovery funnel: injected faults at the top, quarantines at the
/// bottom.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RecoveryFunnel {
    /// Probe-contact dropouts injected.
    pub faults_dropout: u64,
    /// Transient verdict flips injected.
    pub faults_flip: u64,
    /// Stuck-channel replays injected.
    pub faults_stuck: u64,
    /// Session-abort bursts injected.
    pub faults_abort: u64,
    /// Hung-strobe stalls injected.
    pub faults_stall: u64,
    /// Stall-watchdog firings (per-site touchdown budgets that expired).
    pub watchdog_timeouts: u64,
    /// Site health circuit breakers latched open.
    pub breaker_trips: u64,
    /// Retries scheduled.
    pub retries: u64,
    /// Majority votes resolved.
    pub votes: u64,
    /// Quarantines, by reason.
    pub quarantined: BTreeMap<String, u64>,
}

impl RecoveryFunnel {
    /// Total injected faults.
    pub fn faults(&self) -> u64 {
        self.faults_dropout
            + self.faults_flip
            + self.faults_stuck
            + self.faults_abort
            + self.faults_stall
    }

    /// Total quarantined measurement points.
    pub fn quarantines(&self) -> u64 {
        self.quarantined.values().sum()
    }
}

/// A search still being assembled while scanning the stream.
#[derive(Debug)]
struct OpenSearch {
    anatomy: SearchAnatomy,
    started_us: u64,
}

/// The full analysis of one trace stream.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceAnalysis {
    /// Records analyzed.
    pub records: u64,
    /// Input lines that failed to parse as trace records.
    pub skipped_lines: u64,
    /// Every finished search, in stream order.
    pub searches: Vec<SearchAnatomy>,
    /// Probe verdicts observed (cache hits included).
    pub probes_resolved: u64,
    /// Probes issued as physical measurements.
    pub probes_issued: u64,
    /// Probes answered from the oracle memo cache.
    pub probes_cached: u64,
    /// The recovery funnel.
    pub funnel: RecoveryFunnel,
    /// GA generations, in emission order.
    pub ga: Vec<GaGeneration>,
    /// Committee learning rounds: (epoch, members, train_error).
    pub committee: Vec<(u64, u64, f64)>,
    /// Per-phase slices, in phase order.
    pub phases: Vec<PhaseSlice>,
    /// Health alarms raised by the live telemetry engine.
    #[serde(default)]
    pub alarms_raised: u64,
    /// Health alarms that cleared again.
    #[serde(default)]
    pub alarms_cleared: u64,
}

impl TraceAnalysis {
    /// Analyzes a JSONL trace stream. Unparseable lines are counted in
    /// [`TraceAnalysis::skipped_lines`], not fatal — a truncated or
    /// hand-edited trace still yields the anatomy of what parsed.
    pub fn from_jsonl(text: &str) -> Self {
        let mut records = Vec::new();
        let mut skipped = 0u64;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<TraceRecord>(line) {
                Ok(record) => records.push(record),
                Err(_) => skipped += 1,
            }
        }
        let mut analysis = Self::from_records(&records);
        analysis.skipped_lines = skipped;
        analysis
    }

    /// Analyzes a record stream directly (the in-memory path).
    pub fn from_records(records: &[TraceRecord]) -> Self {
        let mut analysis = TraceAnalysis::default();
        // One search can be open per test at a time: events of one span
        // are contiguous in the stream, and searches within a span are
        // strictly sequential.
        let mut open: BTreeMap<Option<u64>, OpenSearch> = BTreeMap::new();
        let mut last_ts = 0u64;

        for record in records {
            analysis.records += 1;
            last_ts = last_ts.max(record.ts_us);
            if let Some(slice) = analysis.phases.last_mut() {
                slice.records += 1;
            }
            match &record.event {
                TraceEvent::CampaignPhaseChanged { phase } => {
                    if let Some(previous) = analysis.phases.last_mut() {
                        previous.records -= 1; // the change belongs to the new phase
                    }
                    analysis.close_phase(record.ts_us);
                    analysis.phases.push(PhaseSlice {
                        phase: phase.clone(),
                        records: 1,
                        probes: 0,
                        searches: 0,
                        wall_us: record.ts_us, // start mark; closed later
                    });
                }
                TraceEvent::ProbeIssued { .. } => {
                    analysis.probes_issued += 1;
                }
                TraceEvent::ProbeResolved { cached, .. } => {
                    analysis.probes_resolved += 1;
                    if *cached {
                        analysis.probes_cached += 1;
                    }
                    if let Some(slice) = analysis.phases.last_mut() {
                        slice.probes += 1;
                    }
                    if let Some(search) = open.get_mut(&record.test) {
                        search.anatomy.probes += 1;
                        if *cached {
                            search.anatomy.cached += 1;
                        }
                    }
                }
                TraceEvent::SearchStarted {
                    strategy,
                    order,
                    reference,
                    ..
                } => {
                    open.insert(
                        record.test,
                        OpenSearch {
                            anatomy: SearchAnatomy {
                                test: record.test,
                                strategy: strategy.clone(),
                                order: order.clone(),
                                reference: *reference,
                                steps: 0,
                                clamped_steps: 0,
                                probes: 0,
                                cached: 0,
                                converged: false,
                                trip_point: None,
                                wall_us: 0,
                            },
                            started_us: record.ts_us,
                        },
                    );
                }
                TraceEvent::StepTaken { clamped, .. } => {
                    if let Some(search) = open.get_mut(&record.test) {
                        search.anatomy.steps += 1;
                        if *clamped {
                            search.anatomy.clamped_steps += 1;
                        }
                    }
                }
                TraceEvent::Bracketed { .. } => {}
                TraceEvent::SearchFinished {
                    trip_point,
                    converged,
                    ..
                } => {
                    if let Some(mut search) = open.remove(&record.test) {
                        search.anatomy.converged = *converged;
                        search.anatomy.trip_point = *trip_point;
                        search.anatomy.wall_us =
                            record.ts_us.saturating_sub(search.started_us);
                        analysis.searches.push(search.anatomy);
                        if let Some(slice) = analysis.phases.last_mut() {
                            slice.searches += 1;
                        }
                    }
                }
                TraceEvent::RetryScheduled { .. } => analysis.funnel.retries += 1,
                TraceEvent::VoteResolved { .. } => analysis.funnel.votes += 1,
                TraceEvent::FaultInjected { kind } => match kind {
                    FaultKind::Dropout => analysis.funnel.faults_dropout += 1,
                    FaultKind::Flip => analysis.funnel.faults_flip += 1,
                    FaultKind::Stuck => analysis.funnel.faults_stuck += 1,
                    FaultKind::Abort => analysis.funnel.faults_abort += 1,
                    FaultKind::Stall => analysis.funnel.faults_stall += 1,
                },
                TraceEvent::WatchdogFired { .. } => analysis.funnel.watchdog_timeouts += 1,
                TraceEvent::SiteBreakerTripped { .. } => analysis.funnel.breaker_trips += 1,
                TraceEvent::Quarantined { reason } => {
                    *analysis.funnel.quarantined.entry(reason.clone()).or_insert(0) += 1;
                }
                TraceEvent::GaGenerationEvaluated {
                    generation,
                    best_so_far,
                    generation_best,
                    mean,
                } => analysis.ga.push(GaGeneration {
                    generation: *generation,
                    best_so_far: *best_so_far,
                    generation_best: *generation_best,
                    mean: *mean,
                }),
                TraceEvent::AlarmRaised { .. } => analysis.alarms_raised += 1,
                TraceEvent::AlarmCleared { .. } => analysis.alarms_cleared += 1,
                TraceEvent::CommitteeEpochFinished {
                    epoch,
                    members,
                    train_error,
                } => analysis.committee.push((*epoch, *members, *train_error)),
            }
        }
        analysis.close_phase(last_ts);
        analysis
    }

    /// Closes the open phase slice: its `wall_us` start mark becomes the
    /// covered duration.
    fn close_phase(&mut self, now_us: u64) {
        if let Some(slice) = self.phases.last_mut() {
            slice.wall_us = now_us.saturating_sub(slice.wall_us);
        }
    }

    /// Cache-hit ratio over all resolved probes, in [0, 1].
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.probes_resolved == 0 {
            0.0
        } else {
            self.probes_cached as f64 / self.probes_resolved as f64
        }
    }

    /// Probes-per-search statistics over searches matching `filter`.
    pub fn probe_stats(&self, filter: impl Fn(&SearchAnatomy) -> bool) -> Stats {
        let mut stats = Stats::default();
        for search in self.searches.iter().filter(|s| filter(s)) {
            stats.observe(search.probes);
        }
        stats
    }

    /// Step-count statistics over STP walks with the given orientation
    /// (`eq3` or `eq4`) — the paper's two step-factor directions.
    pub fn step_stats(&self, order: &str) -> Stats {
        let mut stats = Stats::default();
        for search in self
            .searches
            .iter()
            .filter(|s| s.order == order && s.reference.is_some())
        {
            stats.observe(search.steps);
        }
        stats
    }

    /// Searches that walked from a reference trip point (eqs. 3/4).
    pub fn stp_walks(&self) -> impl Iterator<Item = &SearchAnatomy> {
        self.searches.iter().filter(|s| s.reference.is_some())
    }

    /// Amortized probe cost per GA generation: probes in the stream
    /// divided by generations. Per-generation attribution is impossible
    /// from the stream alone — generation events are emitted as a batch
    /// after the run — so this is an average, labeled as such.
    pub fn ga_amortized_probes_per_generation(&self) -> Option<f64> {
        if self.ga.is_empty() {
            return None;
        }
        let ga_phase_probes: u64 = self
            .phases
            .iter()
            .filter(|p| p.phase.contains("nnga") || p.phase.contains("ga"))
            .map(|p| p.probes)
            .sum();
        let probes = if ga_phase_probes > 0 {
            ga_phase_probes
        } else {
            self.probes_resolved
        };
        Some(probes as f64 / self.ga.len() as f64)
    }

    /// The human-readable summary table (`cichar-report summarize`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace summary: {} records{}",
            self.records,
            if self.skipped_lines > 0 {
                format!(" ({} unparseable lines skipped)", self.skipped_lines)
            } else {
                String::new()
            }
        );
        let _ = writeln!(
            out,
            "probes: {} resolved ({} issued, {} cached) | cache-hit ratio {:.1}%",
            self.probes_resolved,
            self.probes_issued,
            self.probes_cached,
            100.0 * self.cache_hit_ratio()
        );
        let converged = self.searches.iter().filter(|s| s.converged).count();
        let _ = writeln!(
            out,
            "searches: {} finished, {} converged ({:.1}%)",
            self.searches.len(),
            converged,
            if self.searches.is_empty() {
                100.0
            } else {
                100.0 * converged as f64 / self.searches.len() as f64
            }
        );

        let _ = writeln!(out, "\nsearch anatomy:");
        let _ = writeln!(
            out,
            "  {:<24} {:>7} {:>14} {:>13}",
            "kind", "count", "probes/search", "steps/search"
        );
        let full = self.probe_stats(|s| s.reference.is_none());
        let _ = writeln!(
            out,
            "  {:<24} {:>7} {:>14.1} {:>13}",
            "full-range (eq. 2)", full.count, full.mean(), "-"
        );
        for order in ["eq3", "eq4"] {
            let probes = self.probe_stats(|s| s.reference.is_some() && s.order == order);
            let steps = self.step_stats(order);
            let _ = writeln!(
                out,
                "  {:<24} {:>7} {:>14.1} {:>10.1} [{}..{}]",
                format!("stp walk ({order})"),
                probes.count,
                probes.mean(),
                steps.mean(),
                steps.min,
                steps.max
            );
        }
        let clamped: u64 = self.searches.iter().map(|s| s.clamped_steps).sum();
        if clamped > 0 {
            let _ = writeln!(out, "  window clamps at CR edge: {clamped}");
        }

        let f = &self.funnel;
        if f.faults() + f.retries + f.votes + f.quarantines() > 0 {
            let _ = writeln!(out, "\nrecovery funnel:");
            let _ = writeln!(
                out,
                "  faults injected: {} ({} dropout, {} flip, {} stuck, {} abort, {} stall)",
                f.faults(),
                f.faults_dropout,
                f.faults_flip,
                f.faults_stuck,
                f.faults_abort,
                f.faults_stall
            );
            if f.watchdog_timeouts + f.breaker_trips > 0 {
                let _ = writeln!(
                    out,
                    "  -> watchdog timeouts: {} | breaker trips: {}",
                    f.watchdog_timeouts, f.breaker_trips
                );
            }
            let _ = writeln!(out, "  -> retries scheduled: {}", f.retries);
            let _ = writeln!(out, "  -> votes resolved:    {}", f.votes);
            let quarantined: Vec<String> = f
                .quarantined
                .iter()
                .map(|(reason, n)| format!("{reason}: {n}"))
                .collect();
            let _ = writeln!(
                out,
                "  -> quarantined:       {}{}",
                f.quarantines(),
                if quarantined.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", quarantined.join(", "))
                }
            );
        }

        if self.alarms_raised > 0 {
            let _ = writeln!(
                out,
                "\nhealth alarms: {} raised, {} cleared",
                self.alarms_raised, self.alarms_cleared
            );
        }

        if !self.phases.is_empty() {
            let _ = writeln!(out, "\nphases:");
            let _ = writeln!(
                out,
                "  {:<16} {:>9} {:>9} {:>9} {:>11}",
                "phase", "records", "probes", "searches", "wall ms"
            );
            for slice in &self.phases {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>9} {:>9} {:>9} {:>11.1}",
                    slice.phase,
                    slice.records,
                    slice.probes,
                    slice.searches,
                    slice.wall_us as f64 / 1e3
                );
            }
        }

        if !self.ga.is_empty() {
            let best = self
                .ga
                .iter()
                .map(|g| g.best_so_far)
                .fold(f64::NEG_INFINITY, f64::max);
            let _ = writeln!(
                out,
                "\nga: {} generations, best fitness {:.4}, amortized {:.1} probes/generation",
                self.ga.len(),
                best,
                self.ga_amortized_probes_per_generation().unwrap_or(0.0)
            );
            let _ = writeln!(
                out,
                "  {:>5} {:>13} {:>13} {:>13}",
                "gen", "best_so_far", "gen_best", "mean"
            );
            for g in &self.ga {
                let _ = writeln!(
                    out,
                    "  {:>5} {:>13.4} {:>13.4} {:>13.4}",
                    g.generation, g.best_so_far, g.generation_best, g.mean
                );
            }
        }
        if !self.committee.is_empty() {
            let _ = writeln!(out, "\ncommittee epochs:");
            for (epoch, members, error) in &self.committee {
                let _ = writeln!(
                    out,
                    "  epoch {epoch}: {members} members, train error {error:.5}"
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cichar_trace::TraceVerdict;

    fn record(seq: u64, test: Option<u64>, ts_us: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord { seq, test, ts_us, event }
    }

    /// A two-phase mini stream: one full-range search, one eq3 STP walk
    /// with a cached probe, a retry, and a quarantine.
    fn stream() -> Vec<TraceRecord> {
        let mut seq = 0u64;
        let mut next = |test: Option<u64>, ts: u64, event: TraceEvent| {
            let r = record(seq, test, ts, event);
            seq += 1;
            r
        };
        vec![
            next(None, 0, TraceEvent::CampaignPhaseChanged { phase: "full_range".into() }),
            next(Some(0), 10, TraceEvent::SearchStarted {
                strategy: "successive_approximation".into(),
                order: "eq3".into(),
                window: [80.0, 130.0],
                reference: None,
                sf: None,
            }),
            next(Some(0), 11, TraceEvent::ProbeIssued { value: 105.0, speculative: false }),
            next(Some(0), 12, TraceEvent::ProbeResolved {
                value: 105.0,
                verdict: TraceVerdict::Pass,
                cached: false,
            }),
            next(Some(0), 20, TraceEvent::SearchFinished {
                strategy: "successive_approximation".into(),
                trip_point: Some(105.0),
                converged: true,
                probes: 1,
            }),
            next(None, 30, TraceEvent::CampaignPhaseChanged { phase: "stp".into() }),
            next(Some(1), 40, TraceEvent::SearchStarted {
                strategy: "stp".into(),
                order: "eq3".into(),
                window: [80.0, 130.0],
                reference: Some(105.0),
                sf: Some(1.0),
            }),
            next(Some(1), 41, TraceEvent::ProbeResolved {
                value: 105.0,
                verdict: TraceVerdict::Pass,
                cached: true,
            }),
            next(Some(1), 42, TraceEvent::StepTaken {
                iteration: 1,
                step_factor: 1.0,
                value: 106.0,
                clamped: false,
                verdict: TraceVerdict::Fail,
            }),
            next(Some(1), 43, TraceEvent::RetryScheduled { attempt: 1, backoff_us: 50.0 }),
            next(Some(1), 44, TraceEvent::FaultInjected { kind: FaultKind::Dropout }),
            next(Some(1), 45, TraceEvent::StepTaken {
                iteration: 2,
                step_factor: 2.0,
                value: 108.0,
                clamped: true,
                verdict: TraceVerdict::Fail,
            }),
            next(Some(1), 50, TraceEvent::SearchFinished {
                strategy: "stp".into(),
                trip_point: Some(105.5),
                converged: true,
                probes: 2,
            }),
            next(Some(2), 55, TraceEvent::Quarantined { reason: "dropout".into() }),
            next(None, 60, TraceEvent::GaGenerationEvaluated {
                generation: 0,
                best_so_far: 0.8,
                generation_best: 0.8,
                mean: 0.5,
            }),
        ]
    }

    #[test]
    fn anatomy_reassembles_searches() {
        let analysis = TraceAnalysis::from_records(&stream());
        assert_eq!(analysis.searches.len(), 2);
        let full = &analysis.searches[0];
        assert_eq!(full.strategy, "successive_approximation");
        assert_eq!(full.reference, None);
        assert_eq!(full.probes, 1);
        assert_eq!(full.wall_us, 10);
        let stp = &analysis.searches[1];
        assert_eq!(stp.order, "eq3");
        assert_eq!(stp.steps, 2);
        assert_eq!(stp.clamped_steps, 1);
        assert_eq!(stp.cached, 1);
        assert!(stp.converged);
    }

    #[test]
    fn aggregates_split_full_range_from_stp_walks() {
        let analysis = TraceAnalysis::from_records(&stream());
        let full = analysis.probe_stats(|s| s.reference.is_none());
        assert_eq!((full.count, full.sum), (1, 1));
        let eq3 = analysis.step_stats("eq3");
        assert_eq!((eq3.count, eq3.sum, eq3.min, eq3.max), (1, 2, 2, 2));
        assert_eq!(analysis.step_stats("eq4").count, 0);
        assert_eq!(analysis.stp_walks().count(), 1);
        assert!((analysis.cache_hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn funnel_and_phases_are_accounted() {
        let analysis = TraceAnalysis::from_records(&stream());
        assert_eq!(analysis.funnel.retries, 1);
        assert_eq!(analysis.funnel.faults_dropout, 1);
        assert_eq!(analysis.funnel.quarantines(), 1);
        assert_eq!(analysis.funnel.quarantined.get("dropout"), Some(&1));
        assert_eq!(analysis.phases.len(), 2);
        assert_eq!(analysis.phases[0].phase, "full_range");
        assert_eq!(analysis.phases[0].probes, 1);
        assert_eq!(analysis.phases[0].searches, 1);
        assert_eq!(analysis.phases[1].probes, 1);
        assert_eq!(analysis.ga.len(), 1);
    }

    #[test]
    fn jsonl_path_counts_skipped_lines() {
        let mut text = String::new();
        for r in stream() {
            text.push_str(&serde_json::to_string(&r).expect("serializes"));
            text.push('\n');
        }
        text.push_str("not json\n\n");
        let analysis = TraceAnalysis::from_jsonl(&text);
        assert_eq!(analysis.records, 15);
        assert_eq!(analysis.skipped_lines, 1);
        assert_eq!(analysis, {
            let mut direct = TraceAnalysis::from_records(&stream());
            direct.skipped_lines = 1;
            direct
        });
    }

    #[test]
    fn render_mentions_every_section() {
        let rendered = TraceAnalysis::from_records(&stream()).render();
        for needle in [
            "trace summary",
            "cache-hit ratio",
            "full-range (eq. 2)",
            "stp walk (eq3)",
            "recovery funnel",
            "quarantined",
            "phases:",
            "ga: 1 generations",
        ] {
            assert!(rendered.contains(needle), "missing {needle:?} in:\n{rendered}");
        }
    }

    #[test]
    fn alarm_events_are_counted_and_the_analysis_round_trips_as_json() {
        let mut records = stream();
        let n = records.len() as u64;
        records.push(record(n, None, 70, TraceEvent::AlarmRaised {
            alarm: "stall_silence".into(),
            heartbeat: 3,
            detail: "no probes resolved".into(),
        }));
        records.push(record(n + 1, None, 80, TraceEvent::AlarmCleared {
            alarm: "stall_silence".into(),
            heartbeat: 4,
        }));
        let analysis = TraceAnalysis::from_records(&records);
        assert_eq!((analysis.alarms_raised, analysis.alarms_cleared), (1, 1));
        assert!(analysis.render().contains("health alarms: 1 raised, 1 cleared"));
        // The machine-readable path (`summarize --json`) is the same
        // struct serialized; it must survive a round trip losslessly.
        let json = serde_json::to_string(&analysis).expect("serializes");
        let back: TraceAnalysis = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, analysis);
    }

    #[test]
    fn empty_stream_is_harmless() {
        let analysis = TraceAnalysis::from_records(&[]);
        assert_eq!(analysis.records, 0);
        assert_eq!(analysis.cache_hit_ratio(), 0.0);
        assert_eq!(analysis.ga_amortized_probes_per_generation(), None);
        assert!(analysis.render().contains("0 records"));
    }
}
