//! Manifest diffing with a regression gate.
//!
//! `cichar-report diff baseline.json current.json --gate` compares two
//! [`RunManifest`] artifacts and exits non-zero when the current run
//! drifted past configurable thresholds on the metrics that matter for a
//! characterization campaign: probe budget (the paper's test-time
//! currency), quarantine rate (measurement trustworthiness), wall time
//! (optional — meaningless across machines, useful on one), and the
//! trip-point extrema recorded in the manifest config.

use cichar_trace::RunManifest;
use std::fmt::Write as _;

/// Gate thresholds. Every threshold has a CLI flag; the defaults are
/// deliberately loose enough to absorb seed-stable noise and tight
/// enough to catch a real regression (the acceptance bar is a 2×
/// probe-count blowup, caught at +10%).
#[derive(Debug, Clone, PartialEq)]
pub struct GateConfig {
    /// Maximum allowed growth of resolved/issued probe counts, percent.
    pub max_probe_growth_pct: f64,
    /// Maximum allowed growth of the probe-economy headline — honest
    /// (non-speculative) probes per finished trip-point search — percent.
    pub max_probes_per_trip_growth_pct: f64,
    /// Maximum allowed quarantine-rate increase, percentage points.
    pub max_quarantine_delta_pts: f64,
    /// Maximum allowed wall-clock growth, percent. `None` disables the
    /// wall gate (the default: wall time is machine-dependent, so gating
    /// it in shared CI is flake, not signal).
    pub max_wall_growth_pct: Option<f64>,
    /// Maximum allowed relative drift of the `trip_min` / `trip_max`
    /// config extrema, percent.
    pub max_extrema_drift_pct: f64,
    /// Maximum allowed drop of the trips/s-per-core throughput, percent.
    /// `None` disables the throughput gate. Per-core (not absolute)
    /// throughput is gated so the check survives baseline and current
    /// runs landing on hosts with different core counts.
    pub max_throughput_drop_pct: Option<f64>,
    /// Maximum allowed growth of the peak resident set size, percent.
    /// `None` disables the memory gate.
    pub max_peak_rss_growth_pct: Option<f64>,
    /// Maximum live probe bill of a **resumed** run, as a percentage of
    /// the baseline's resolved probes. `None` disables the gate; when
    /// armed it judges only manifests whose durability section says the
    /// run was resumed (anything else is skipped with a note). A resumed
    /// campaign replays its journal instead of re-measuring, so its live
    /// probes should be a small fraction of the uninterrupted bill —
    /// growth here means recovery is re-doing committed work.
    pub max_recovery_overhead_pct: Option<f64>,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            max_probe_growth_pct: 10.0,
            max_probes_per_trip_growth_pct: 10.0,
            max_quarantine_delta_pts: 0.5,
            max_wall_growth_pct: None,
            max_extrema_drift_pct: 0.25,
            max_throughput_drop_pct: None,
            max_peak_rss_growth_pct: None,
            max_recovery_overhead_pct: None,
        }
    }
}

/// One compared quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// What was compared.
    pub metric: String,
    /// Baseline rendering.
    pub baseline: String,
    /// Current rendering.
    pub current: String,
    /// Delta rendering (`+12.0%`, `+0.3pts`, `=`).
    pub delta: String,
    /// The gate breach this row caused, if any.
    pub breach: Option<String>,
}

/// The full comparison of two manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestDiff {
    /// Every compared quantity, in report order.
    pub rows: Vec<DiffRow>,
    /// Human-readable breach descriptions (empty ⇒ gate passes).
    pub breaches: Vec<String>,
    /// Comparisons that were skipped rather than judged — optional
    /// metrics present in only one manifest, or gates that don't apply
    /// on this host. Notes never fail the gate; they keep the report
    /// honest about what it did *not* check.
    pub notes: Vec<String>,
}

fn growth_pct(baseline: u64, current: u64) -> f64 {
    if baseline == 0 {
        if current == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (current as f64 / baseline as f64 - 1.0)
    }
}

fn fmt_pct(p: f64) -> String {
    if p.is_infinite() {
        "+inf%".to_string()
    } else if p == 0.0 {
        "=".to_string()
    } else {
        format!("{p:+.1}%")
    }
}

fn config_f64(manifest: &RunManifest, key: &str) -> Option<f64> {
    manifest
        .config
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.parse::<f64>().ok())
}

impl ManifestDiff {
    /// Compares `current` against `baseline` under `gate`.
    pub fn compare(baseline: &RunManifest, current: &RunManifest, gate: &GateConfig) -> Self {
        let mut rows = Vec::new();
        let mut breaches = Vec::new();
        let mut notes = Vec::new();
        let mut push = |row: DiffRow| {
            if let Some(breach) = &row.breach {
                breaches.push(breach.clone());
            }
            rows.push(row);
        };

        // Identity: comparing different campaigns is a gate failure, not a
        // silent apples-to-oranges report.
        push(DiffRow {
            metric: "campaign".into(),
            baseline: baseline.campaign.clone(),
            current: current.campaign.clone(),
            delta: if baseline.campaign == current.campaign {
                "=".into()
            } else {
                "differs".into()
            },
            breach: (baseline.campaign != current.campaign).then(|| {
                format!(
                    "campaign mismatch: baseline is {:?}, current is {:?}",
                    baseline.campaign, current.campaign
                )
            }),
        });
        push(DiffRow {
            metric: "seed".into(),
            baseline: format!("{:#x}", baseline.seed),
            current: format!("{:#x}", current.seed),
            delta: if baseline.seed == current.seed { "=".into() } else { "differs".into() },
            breach: None,
        });

        // Probe budget: the paper's test-time currency.
        for (name, base, cur) in [
            (
                "probes_resolved",
                baseline.metrics.probes_resolved,
                current.metrics.probes_resolved,
            ),
            (
                "probes_issued",
                baseline.metrics.probes_issued,
                current.metrics.probes_issued,
            ),
        ] {
            let growth = growth_pct(base, cur);
            push(DiffRow {
                metric: name.into(),
                baseline: base.to_string(),
                current: cur.to_string(),
                delta: fmt_pct(growth),
                breach: (growth > gate.max_probe_growth_pct).then(|| {
                    format!(
                        "{name} grew {} (limit +{:.1}%): {base} -> {cur}",
                        fmt_pct(growth),
                        gate.max_probe_growth_pct
                    )
                }),
            });
        }
        // Probe economy: honest (non-speculative) probes per finished
        // trip-point search — the headline the warm-start and speculation
        // machinery exists to shrink. One-sided values (searches finished
        // in only one run) are not comparable: reported and skipped, never
        // a hard error — a baseline from an older binary must not brick
        // the gate.
        match (baseline.probes_per_trip(), current.probes_per_trip()) {
            (Some(base), Some(cur)) => {
                let growth = if base == 0.0 {
                    if cur == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    100.0 * (cur / base - 1.0)
                };
                push(DiffRow {
                    metric: "probes_per_trip".into(),
                    baseline: format!("{base:.2}"),
                    current: format!("{cur:.2}"),
                    delta: fmt_pct(growth),
                    breach: (growth > gate.max_probes_per_trip_growth_pct).then(|| {
                        format!(
                            "probes_per_trip grew {} (limit +{:.1}%): {base:.2} -> {cur:.2}",
                            fmt_pct(growth),
                            gate.max_probes_per_trip_growth_pct
                        )
                    }),
                });
            }
            (None, None) => {}
            (base, cur) => {
                push(DiffRow {
                    metric: "probes_per_trip".into(),
                    baseline: base.map_or("absent".into(), |v| format!("{v:.2}")),
                    current: cur.map_or("absent".into(), |v| format!("{v:.2}")),
                    delta: "not comparable — skipped".into(),
                    breach: None,
                });
                notes.push(String::from(
                    "probes_per_trip computable in only one manifest — \
                     not comparable, skipped (regenerate the baseline to re-arm)",
                ));
            }
        }
        push(DiffRow {
            metric: "searches_finished".into(),
            baseline: baseline.metrics.searches_finished.to_string(),
            current: current.metrics.searches_finished.to_string(),
            delta: fmt_pct(growth_pct(
                baseline.metrics.searches_finished,
                current.metrics.searches_finished,
            )),
            breach: None,
        });

        // Quarantine rate, in percentage points of resolved probes.
        let rate = |m: &RunManifest| {
            if m.metrics.probes_resolved == 0 {
                0.0
            } else {
                100.0 * m.metrics.quarantined as f64 / m.metrics.probes_resolved as f64
            }
        };
        let (base_rate, cur_rate) = (rate(baseline), rate(current));
        let delta_pts = cur_rate - base_rate;
        push(DiffRow {
            metric: "quarantine_rate".into(),
            baseline: format!("{base_rate:.3}%"),
            current: format!("{cur_rate:.3}%"),
            delta: if delta_pts == 0.0 {
                "=".into()
            } else {
                format!("{delta_pts:+.3}pts")
            },
            breach: (delta_pts > gate.max_quarantine_delta_pts).then(|| {
                format!(
                    "quarantine rate rose {delta_pts:+.3}pts (limit +{:.3}pts): \
                     {base_rate:.3}% -> {cur_rate:.3}%",
                    gate.max_quarantine_delta_pts
                )
            }),
        });

        // Wall time: gated only when explicitly armed, and only on a host
        // that actually had the cores the run asked for — on an
        // underprovisioned box (hardware_threads < worker threads) a
        // wall-clock "speedup regression" is scheduling noise, so the
        // check is skipped with an explicit note and throughput-per-core
        // carries the gate instead.
        let (base_wall, cur_wall) = (baseline.total_wall_ms(), current.total_wall_ms());
        let wall_growth = growth_pct(base_wall, cur_wall);
        let underprovisioned = [baseline, current].into_iter().find_map(|m| {
            m.hardware_threads
                .and_then(|hw| (hw < m.threads).then_some((hw, m.threads)))
        });
        let wall_breach = match (gate.max_wall_growth_pct, underprovisioned) {
            (Some(_), Some((hw, workers))) => {
                notes.push(format!(
                    "wall gate skipped: host offered {hw} hardware threads for {workers} \
                     workers, so wall-clock growth is scheduling noise — \
                     trips_per_sec_per_core carries the throughput gate instead"
                ));
                None
            }
            (Some(limit), None) => (wall_growth > limit).then(|| {
                format!(
                    "wall time grew {} (limit +{limit:.1}%): {base_wall}ms -> {cur_wall}ms",
                    fmt_pct(wall_growth)
                )
            }),
            (None, _) => None,
        };
        push(DiffRow {
            metric: "wall_ms".into(),
            baseline: base_wall.to_string(),
            current: cur_wall.to_string(),
            delta: if gate.max_wall_growth_pct.is_some() && underprovisioned.is_some() {
                format!("{} (not gated)", fmt_pct(wall_growth))
            } else {
                fmt_pct(wall_growth)
            },
            breach: wall_breach,
        });

        // Wafer throughput: finished searches per second per worker
        // thread, and the memory high-water mark — both optional
        // (recorded by throughput-aware campaigns), both skipped with a
        // note when only one side carries them.
        match (
            baseline.trips_per_second_per_core(),
            current.trips_per_second_per_core(),
        ) {
            (Some(base), Some(cur)) => {
                let drop_pct = 100.0 * (1.0 - cur / base);
                push(DiffRow {
                    metric: "trips_per_sec_per_core".into(),
                    baseline: format!("{base:.2}"),
                    current: format!("{cur:.2}"),
                    delta: if drop_pct == 0.0 {
                        "=".into()
                    } else {
                        format!("{:+.1}%", -drop_pct)
                    },
                    breach: gate.max_throughput_drop_pct.and_then(|limit| {
                        (drop_pct > limit).then(|| {
                            format!(
                                "trips_per_sec_per_core dropped {drop_pct:.1}% \
                                 (limit -{limit:.1}%): {base:.2} -> {cur:.2}",
                            )
                        })
                    }),
                });
            }
            (None, None) => {}
            (base, cur) => {
                push(DiffRow {
                    metric: "trips_per_sec_per_core".into(),
                    baseline: base.map_or("absent".into(), |v| format!("{v:.2}")),
                    current: cur.map_or("absent".into(), |v| format!("{v:.2}")),
                    delta: "not comparable — skipped".into(),
                    breach: None,
                });
                notes.push(String::from(
                    "trips_per_sec_per_core derivable in only one manifest — \
                     not comparable, skipped",
                ));
            }
        }
        let fmt_rss = |bytes: u64| format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64);
        match (baseline.peak_rss_bytes, current.peak_rss_bytes) {
            (Some(base), Some(cur)) => {
                let growth = growth_pct(base, cur);
                push(DiffRow {
                    metric: "peak_rss".into(),
                    baseline: fmt_rss(base),
                    current: fmt_rss(cur),
                    delta: fmt_pct(growth),
                    breach: gate.max_peak_rss_growth_pct.and_then(|limit| {
                        (growth > limit).then(|| {
                            format!(
                                "peak rss grew {} (limit +{limit:.1}%): {} -> {}",
                                fmt_pct(growth),
                                fmt_rss(base),
                                fmt_rss(cur)
                            )
                        })
                    }),
                });
            }
            (None, None) => {}
            (base, cur) => {
                push(DiffRow {
                    metric: "peak_rss".into(),
                    baseline: base.map_or("absent".into(), fmt_rss),
                    current: cur.map_or("absent".into(), fmt_rss),
                    delta: "not comparable — skipped".into(),
                    breach: None,
                });
                notes.push(String::from(
                    "peak_rss recorded in only one manifest — not comparable, skipped",
                ));
            }
        }

        // Recovery overhead: how much of the baseline's probe bill a
        // *resumed* run re-measured live. Journal replay re-folds
        // committed chunks without issuing probes, so a healthy resume
        // stays far below the uninterrupted bill. Armed but not resumed
        // (or resumed against an empty baseline) is a skip, not a breach.
        match (
            gate.max_recovery_overhead_pct,
            current.recovery.as_ref().filter(|r| r.resumed),
        ) {
            (Some(limit), Some(recovery)) => {
                let (base, cur) = (
                    baseline.metrics.probes_resolved,
                    current.metrics.probes_resolved,
                );
                let overhead = if base == 0 {
                    if cur == 0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    100.0 * cur as f64 / base as f64
                };
                push(DiffRow {
                    metric: "recovery_overhead".into(),
                    baseline: format!("{base} probes"),
                    current: format!(
                        "{cur} live ({}/{} chunks replayed)",
                        recovery.chunks_replayed, recovery.chunks_total
                    ),
                    delta: if overhead.is_infinite() {
                        "+inf%".into()
                    } else {
                        format!("{overhead:.1}% of baseline")
                    },
                    breach: (overhead > limit).then(|| {
                        format!(
                            "recovery overhead: resumed run re-measured {overhead:.1}% \
                             of the baseline probe bill (limit {limit:.1}%): {cur} live \
                             probes vs {base} baseline"
                        )
                    }),
                });
            }
            (Some(_), None) => {
                push(DiffRow {
                    metric: "recovery_overhead".into(),
                    baseline: "-".into(),
                    current: "not a resumed run".into(),
                    delta: "not comparable — skipped".into(),
                    breach: None,
                });
                notes.push(String::from(
                    "recovery overhead gate skipped: current manifest carries no \
                     resumed durability section",
                ));
            }
            (None, _) => {}
        }

        // Trip-point extrema, when both manifests record them.
        for key in ["trip_min", "trip_max"] {
            let (base, cur) = (config_f64(baseline, key), config_f64(current, key));
            match (base, cur) {
                (Some(base), Some(cur)) => {
                    let scale = base.abs().max(1e-12);
                    let drift_pct = 100.0 * (cur - base).abs() / scale;
                    push(DiffRow {
                        metric: key.into(),
                        baseline: format!("{base}"),
                        current: format!("{cur}"),
                        delta: if drift_pct == 0.0 {
                            "=".into()
                        } else {
                            format!("{drift_pct:.3}% drift")
                        },
                        breach: (drift_pct > gate.max_extrema_drift_pct).then(|| {
                            format!(
                                "{key} drifted {drift_pct:.3}% (limit {:.3}%): {base} -> {cur}",
                                gate.max_extrema_drift_pct
                            )
                        }),
                    });
                }
                (None, None) => {}
                _ => {
                    push(DiffRow {
                        metric: key.into(),
                        baseline: base.map_or("absent".into(), |v| format!("{v}")),
                        current: cur.map_or("absent".into(), |v| format!("{v}")),
                        delta: "not comparable — skipped".into(),
                        breach: None,
                    });
                    notes.push(format!(
                        "{key} recorded in only one manifest — not comparable, skipped \
                         (regenerate the baseline to re-arm)"
                    ));
                }
            }
        }

        ManifestDiff { rows, breaches, notes }
    }

    /// Whether the gate passes (no breaches).
    pub fn passes(&self) -> bool {
        self.breaches.is_empty()
    }

    /// The comparison as a table, with breach lines at the bottom.
    pub fn render(&self, gated: bool) -> String {
        let mut out = String::new();
        let width = self
            .rows
            .iter()
            .map(|r| r.metric.len())
            .max()
            .unwrap_or(8)
            .max("metric".len());
        let _ = writeln!(
            out,
            "{:<width$}  {:>16} {:>16} {:>14}",
            "metric", "baseline", "current", "delta"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<width$}  {:>16} {:>16} {:>14}{}",
                row.metric,
                row.baseline,
                row.current,
                row.delta,
                if row.breach.is_some() { "  <- BREACH" } else { "" }
            );
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out, "\nnotes:");
            for note in &self.notes {
                let _ = writeln!(out, "  - {note}");
            }
        }
        if gated {
            if self.passes() {
                let _ = writeln!(out, "\ngate: PASS");
            } else {
                let _ = writeln!(out, "\ngate: FAIL ({} breaches)", self.breaches.len());
                for breach in &self.breaches {
                    let _ = writeln!(out, "  - {breach}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(probes: u64, quarantined: u64, wall_ms: u64) -> RunManifest {
        let mut m = RunManifest::new("fig2", 0xDA7E_2005, 1)
            .with_config("trip_min", 82.5)
            .with_config("trip_max", 118.75);
        m.metrics.probes_resolved = probes;
        m.metrics.probes_issued = probes;
        m.metrics.searches_finished = 12;
        m.metrics.quarantined = quarantined;
        m.phases = vec![cichar_trace::PhaseSummary {
            name: "dsv".into(),
            wall_ms,
            probes,
        }];
        m
    }

    #[test]
    fn self_compare_passes() {
        let m = manifest(1000, 2, 40);
        let diff = ManifestDiff::compare(&m, &m, &GateConfig::default());
        assert!(diff.passes(), "breaches: {:?}", diff.breaches);
        assert!(diff.render(true).contains("gate: PASS"));
    }

    #[test]
    fn doubled_probe_count_breaches() {
        let base = manifest(1000, 2, 40);
        let cur = manifest(2000, 2, 40);
        let diff = ManifestDiff::compare(&base, &cur, &GateConfig::default());
        assert!(!diff.passes());
        assert!(
            diff.breaches.iter().any(|b| b.contains("probes_resolved")),
            "{:?}",
            diff.breaches
        );
        assert!(diff.render(true).contains("gate: FAIL"));
    }

    #[test]
    fn quarantine_rate_gate_uses_percentage_points() {
        let base = manifest(1000, 0, 40);
        let cur = manifest(1000, 10, 40); // 1.0% > 0.5pts limit
        let diff = ManifestDiff::compare(&base, &cur, &GateConfig::default());
        assert!(diff.breaches.iter().any(|b| b.contains("quarantine")));
        // Within the limit: 4 of 1000 is +0.4pts.
        let ok = ManifestDiff::compare(&base, &manifest(1000, 4, 40), &GateConfig::default());
        assert!(ok.passes(), "{:?}", ok.breaches);
    }

    #[test]
    fn wall_gate_is_off_by_default_and_arms_explicitly() {
        let base = manifest(1000, 0, 10);
        let cur = manifest(1000, 0, 1000); // 100x slower
        assert!(ManifestDiff::compare(&base, &cur, &GateConfig::default()).passes());
        let armed = GateConfig {
            max_wall_growth_pct: Some(50.0),
            ..GateConfig::default()
        };
        let diff = ManifestDiff::compare(&base, &cur, &armed);
        assert!(diff.breaches.iter().any(|b| b.contains("wall time")));
    }

    #[test]
    fn extrema_drift_breaches_and_one_sided_extrema_breach() {
        let base = manifest(1000, 0, 40);
        let mut cur = manifest(1000, 0, 40);
        for (k, v) in cur.config.iter_mut() {
            if k == "trip_max" {
                *v = "119.75".into(); // ~0.84% drift > 0.25% limit
            }
        }
        let diff = ManifestDiff::compare(&base, &cur, &GateConfig::default());
        assert!(diff.breaches.iter().any(|b| b.contains("trip_max")), "{:?}", diff.breaches);

        let mut naked = manifest(1000, 0, 40);
        naked.config.retain(|(k, _)| !k.starts_with("trip_"));
        let diff = ManifestDiff::compare(&base, &naked, &GateConfig::default());
        assert!(diff.passes(), "one-sided optional metric must not fail the gate");
        assert!(
            diff.notes.iter().any(|n| n.contains("trip_min") && n.contains("skipped")),
            "{:?}",
            diff.notes
        );
        assert!(diff.render(true).contains("not comparable — skipped"));
    }

    #[test]
    fn probes_per_trip_gate_rewards_speculation_and_catches_regression() {
        // Same resolved probes, but the current run marks a third of them
        // speculative: the honest per-trip bill *improves* and the gate
        // passes with headroom.
        let base = manifest(1200, 0, 40);
        let mut improved = manifest(1200, 0, 40);
        improved.metrics.probes_speculative = 400;
        let diff = ManifestDiff::compare(&base, &improved, &GateConfig::default());
        assert!(diff.passes(), "{:?}", diff.breaches);
        let row = diff
            .rows
            .iter()
            .find(|r| r.metric == "probes_per_trip")
            .expect("row present");
        assert_eq!(row.baseline, "100.00");
        assert_eq!(row.current, "66.67");
        // The reverse direction — losing the speculation accounting —
        // reads as a +50% per-trip blowup and breaches.
        let diff = ManifestDiff::compare(&improved, &base, &GateConfig::default());
        assert!(
            diff.breaches.iter().any(|b| b.contains("probes_per_trip")),
            "{:?}",
            diff.breaches
        );
    }

    #[test]
    fn one_sided_probes_per_trip_is_skipped_with_a_note() {
        let base = manifest(1000, 0, 40);
        let mut searchless = manifest(1000, 0, 40);
        searchless.metrics.searches_finished = 0;
        let diff = ManifestDiff::compare(&base, &searchless, &GateConfig::default());
        assert!(diff.passes(), "{:?}", diff.breaches);
        assert!(
            diff.notes
                .iter()
                .any(|n| n.contains("probes_per_trip") && n.contains("only one manifest")),
            "{:?}",
            diff.notes
        );
    }

    #[test]
    fn wall_gate_defers_to_per_core_throughput_on_underprovisioned_hosts() {
        // Baseline from a 8-core box, current from a 1-core box running a
        // 4-thread policy: the armed wall gate must skip (with a note),
        // while the armed throughput gate still judges per-core numbers.
        let armed = GateConfig {
            max_wall_growth_pct: Some(20.0),
            max_throughput_drop_pct: Some(30.0),
            ..GateConfig::default()
        };
        let mut base = manifest(1000, 0, 100);
        base.threads = 4;
        base.hardware_threads = Some(8);
        let mut cur = manifest(1000, 0, 400); // 4x slower wall
        cur.threads = 4;
        cur.hardware_threads = Some(1);
        let diff = ManifestDiff::compare(&base, &cur, &armed);
        assert!(
            !diff.breaches.iter().any(|b| b.contains("wall time")),
            "{:?}",
            diff.breaches
        );
        assert!(
            diff.notes.iter().any(|n| n.contains("wall gate skipped")),
            "{:?}",
            diff.notes
        );
        // 12 searches in 100ms vs 400ms: per-core throughput dropped 75%.
        assert!(
            diff.breaches
                .iter()
                .any(|b| b.contains("trips_per_sec_per_core")),
            "{:?}",
            diff.breaches
        );
        // On a fully provisioned host the same wall growth breaches.
        cur.hardware_threads = Some(8);
        let diff = ManifestDiff::compare(&base, &cur, &armed);
        assert!(diff.breaches.iter().any(|b| b.contains("wall time")));
    }

    #[test]
    fn peak_rss_gate_judges_growth_and_skips_one_sided() {
        let armed = GateConfig {
            max_peak_rss_growth_pct: Some(25.0),
            ..GateConfig::default()
        };
        let mut base = manifest(1000, 0, 40);
        base.peak_rss_bytes = Some(100 << 20);
        let mut cur = manifest(1000, 0, 40);
        cur.peak_rss_bytes = Some(200 << 20);
        let diff = ManifestDiff::compare(&base, &cur, &armed);
        assert!(diff.breaches.iter().any(|b| b.contains("peak rss")), "{:?}", diff.breaches);

        // Baseline without the field (older binary): skipped, not failed.
        let naked = manifest(1000, 0, 40);
        let diff = ManifestDiff::compare(&naked, &cur, &armed);
        assert!(diff.passes(), "{:?}", diff.breaches);
        assert!(diff.notes.iter().any(|n| n.contains("peak_rss")), "{:?}", diff.notes);
    }

    #[test]
    fn recovery_overhead_gate_judges_resumed_runs_only() {
        let armed = GateConfig {
            max_recovery_overhead_pct: Some(5.0),
            ..GateConfig::default()
        };
        let base = manifest(1000, 0, 40);

        // A healthy resume: the journal replayed nearly everything, the
        // live bill is 2% of baseline.
        let mut resumed = manifest(20, 0, 40);
        resumed.recovery = Some(cichar_trace::RecoverySection {
            resumed: true,
            chunks_replayed: 9,
            chunks_total: 10,
            ..cichar_trace::RecoverySection::default()
        });
        let diff = ManifestDiff::compare(&base, &resumed, &armed);
        assert!(diff.passes(), "{:?}", diff.breaches);
        assert!(diff.render(false).contains("9/10 chunks replayed"));

        // A resume that re-measured half the campaign breaches.
        let mut wasteful = manifest(500, 0, 40);
        wasteful.recovery = resumed.recovery.clone();
        let diff = ManifestDiff::compare(&base, &wasteful, &armed);
        assert!(
            diff.breaches.iter().any(|b| b.contains("recovery")),
            "{:?}",
            diff.breaches
        );

        // Armed against a non-resumed current: skipped with a note, and
        // the probe gate still judges the run on its own merits.
        let fresh = manifest(1000, 0, 40);
        let diff = ManifestDiff::compare(&base, &fresh, &armed);
        assert!(diff.passes(), "{:?}", diff.breaches);
        assert!(
            diff.notes.iter().any(|n| n.contains("recovery overhead gate skipped")),
            "{:?}",
            diff.notes
        );
    }

    #[test]
    fn campaign_mismatch_breaches() {
        let base = manifest(1000, 0, 40);
        let mut cur = manifest(1000, 0, 40);
        cur.campaign = "fig3".into();
        let diff = ManifestDiff::compare(&base, &cur, &GateConfig::default());
        assert!(diff.breaches.iter().any(|b| b.contains("campaign mismatch")));
    }

    #[test]
    fn zero_baseline_growth_is_infinite_and_breaches() {
        let base = manifest(0, 0, 40);
        let cur = manifest(10, 0, 40);
        let diff = ManifestDiff::compare(&base, &cur, &GateConfig::default());
        assert!(!diff.passes());
        assert!(diff.render(false).contains("+inf%"));
    }
}
