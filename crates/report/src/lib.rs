//! Trace analytics for characterization campaigns.
//!
//! The tracing layer (`cichar-trace`) writes two artifacts per campaign:
//! a JSONL event stream and a JSON run manifest. This crate turns those
//! artifacts into answers:
//!
//! - [`analysis`] — the trace-query engine: per-search probe anatomy,
//!   STP step distributions split by eq. 3 / eq. 4 walk orientation,
//!   cache-hit ratios, the retry → vote → quarantine recovery funnel,
//!   and GA / committee convergence, from one pass over the stream.
//! - [`perfetto`] — Chrome trace-event export, loadable in Perfetto or
//!   `chrome://tracing`, with phases and per-test searches as slices.
//! - [`diff`] — manifest comparison with a regression gate for CI:
//!   probe budget, quarantine rate, optional wall time, and trip-point
//!   extrema, each with a configurable threshold.
//! - [`watch`] — the live campaign follower: reads the telemetry
//!   sidecars (`heartbeat.jsonl`, `metrics.prom`) and renders a
//!   progress/health table.
//!
//! The `cichar-report` binary wraps all four as `summarize`,
//! `perfetto`, `diff` and `watch` subcommands.

pub mod analysis;
pub mod diff;
pub mod perfetto;
pub mod watch;

pub use analysis::{GaGeneration, PhaseSlice, RecoveryFunnel, SearchAnatomy, Stats, TraceAnalysis};
pub use diff::{DiffRow, GateConfig, ManifestDiff};
pub use perfetto::{chrome_trace_from_jsonl, to_chrome_trace, validate_chrome_trace};
pub use watch::{latest_heartbeat, read_watch_view, render_watch, WatchView};
