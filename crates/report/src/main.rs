//! The `cichar-report` CLI: trace analytics from the command line.
//!
//! ```text
//! cichar-report summarize <trace.jsonl> [--json]
//! cichar-report perfetto  <trace.jsonl> [--out <chrome_trace.json>]
//! cichar-report diff      <baseline.json> <current.json> [--gate]
//!                         [--max-probe-growth-pct X]
//!                         [--max-probes-per-trip-growth-pct X]
//!                         [--max-quarantine-delta-pts X]
//!                         [--max-wall-growth-pct X]
//!                         [--max-extrema-drift-pct X]
//!                         [--max-throughput-drop-pct X]
//!                         [--max-peak-rss-growth-pct X]
//!                         [--max-recovery-overhead-pct X]
//! cichar-report watch     <telemetry-dir> [--once] [--json]
//!                         [--interval-ms N]
//! ```
//!
//! Exit codes follow the repro-binary convention: `0` success, `1` gate
//! breach (`diff --gate` only), `2` usage error (bad flag, unreadable
//! input, unwritable output).

use cichar_report::{
    read_watch_view, render_watch, to_chrome_trace, validate_chrome_trace, GateConfig,
    ManifestDiff, TraceAnalysis,
};
use cichar_trace::{RunManifest, TraceRecord};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: cichar-report <summarize|perfetto|diff|watch> ...
  summarize <trace.jsonl> [--json]             search-anatomy summary table
  perfetto  <trace.jsonl> [--out <file.json>]  Chrome trace-event export
  diff <baseline.json> <current.json> [--gate] manifest comparison
       [--max-probe-growth-pct X] [--max-probes-per-trip-growth-pct X]
       [--max-quarantine-delta-pts X] [--max-wall-growth-pct X]
       [--max-extrema-drift-pct X] [--max-throughput-drop-pct X]
       [--max-peak-rss-growth-pct X] [--max-recovery-overhead-pct X]
  watch <telemetry-dir> [--once] [--json]      live progress/health follower
        [--interval-ms N]                      (--json emits raw heartbeats)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (command, rest) = args
        .split_first()
        .ok_or_else(|| String::from("missing subcommand"))?;
    match command.as_str() {
        "summarize" => summarize(rest),
        "perfetto" => perfetto(rest),
        "diff" => diff(rest),
        "watch" => watch(rest),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn read_input(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn summarize(args: &[String]) -> Result<ExitCode, String> {
    let mut path: Option<&str> = None;
    let mut json = false;
    for arg in args {
        if arg == "--json" {
            json = true;
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag {arg:?}"));
        } else if path.is_none() {
            path = Some(arg);
        } else {
            return Err(format!("unexpected argument {arg:?}"));
        }
    }
    let path = path.ok_or_else(|| String::from("summarize takes exactly one trace path"))?;
    let analysis = TraceAnalysis::from_jsonl(&read_input(path)?);
    if json {
        // The machine-readable form is the same analysis struct
        // serialized — field for field what `render` prints.
        let text = serde_json::to_string_pretty(&analysis)
            .map_err(|e| format!("serialization failed: {e}"))?;
        println!("{text}");
    } else {
        print!("{}", analysis.render());
    }
    Ok(ExitCode::SUCCESS)
}

fn watch(args: &[String]) -> Result<ExitCode, String> {
    let mut dir: Option<&str> = None;
    let mut once = false;
    let mut json = false;
    let mut interval_ms = 500u64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--once" {
            once = true;
        } else if arg == "--json" {
            json = true;
        } else if let Some(v) = flag_value("--interval-ms", arg, &mut iter)? {
            interval_ms = match v.trim().parse::<u64>() {
                Ok(n) if n > 0 => n,
                _ => {
                    return Err(format!(
                        "invalid --interval-ms value {v:?}: expected a positive integer"
                    ))
                }
            };
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag {arg:?}"));
        } else if dir.is_none() {
            dir = Some(arg);
        } else {
            return Err(format!("unexpected argument {arg:?}"));
        }
    }
    let dir = Path::new(dir.ok_or_else(|| String::from("watch takes a telemetry directory"))?);

    // Follow mode re-reads the sidecars and redraws whenever a new
    // heartbeat lands; `--once` renders exactly one frame (waiting for
    // the first heartbeat is the campaign's job, not ours).
    let mut last_seq: Option<u64> = None;
    loop {
        let view = read_watch_view(dir)?;
        match view {
            Some(view) => {
                let fresh = last_seq != Some(view.heartbeat.seq);
                last_seq = Some(view.heartbeat.seq);
                if fresh {
                    if json {
                        let text = serde_json::to_string(&view.heartbeat)
                            .map_err(|e| format!("serialization failed: {e}"))?;
                        println!("{text}");
                    } else {
                        if !once {
                            // ANSI clear + home: redraw in place.
                            print!("\x1b[2J\x1b[H");
                        }
                        print!("{}", render_watch(&view));
                    }
                }
            }
            None if once => {
                return Err(format!(
                    "no heartbeats yet in {} (is the campaign running with --telemetry?)",
                    dir.display()
                ))
            }
            None => {}
        }
        if once {
            return Ok(ExitCode::SUCCESS);
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

fn perfetto(args: &[String]) -> Result<ExitCode, String> {
    let mut path: Option<&str> = None;
    let mut out: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = flag_value("--out", arg, &mut iter)? {
            out = Some(value);
        } else if path.is_none() {
            path = Some(arg);
        } else {
            return Err(format!("unexpected argument {arg:?}"));
        }
    }
    let path = path.ok_or_else(|| String::from("perfetto takes a trace path"))?;

    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in read_input(path)?.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<TraceRecord>(line) {
            Ok(record) => records.push(record),
            Err(_) => skipped += 1,
        }
    }
    let trace = to_chrome_trace(&records);
    let events = validate_chrome_trace(&trace)
        .map_err(|e| format!("internal: produced an invalid chrome trace: {e}"))?;
    let text = serde_json::to_string(&trace).map_err(|e| format!("serialization failed: {e}"))?;
    match out {
        Some(out) => {
            write_atomic(Path::new(&out), &text)?;
            eprintln!(
                "wrote {events} trace events from {} records to {out}{}",
                records.len(),
                if skipped > 0 {
                    format!(" ({skipped} unparseable lines skipped)")
                } else {
                    String::new()
                }
            );
        }
        None => println!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// Writes via temp + rename so a crash mid-write never leaves a
/// truncated export at the destination (same contract as `JsonlSink`).
fn write_atomic(path: &Path, text: &str) -> Result<(), String> {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "chrome_trace.json".into());
    name.push(".tmp");
    let scratch = path.with_file_name(name);
    std::fs::write(&scratch, text)
        .and_then(|()| std::fs::rename(&scratch, path))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn diff(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<&str> = Vec::new();
    let mut gated = false;
    let mut gate = GateConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--gate" {
            gated = true;
        } else if let Some(v) = flag_value("--max-probe-growth-pct", arg, &mut iter)? {
            gate.max_probe_growth_pct = parse_pct("--max-probe-growth-pct", &v)?;
        } else if let Some(v) = flag_value("--max-probes-per-trip-growth-pct", arg, &mut iter)? {
            gate.max_probes_per_trip_growth_pct =
                parse_pct("--max-probes-per-trip-growth-pct", &v)?;
        } else if let Some(v) = flag_value("--max-quarantine-delta-pts", arg, &mut iter)? {
            gate.max_quarantine_delta_pts = parse_pct("--max-quarantine-delta-pts", &v)?;
        } else if let Some(v) = flag_value("--max-wall-growth-pct", arg, &mut iter)? {
            gate.max_wall_growth_pct = Some(parse_pct("--max-wall-growth-pct", &v)?);
        } else if let Some(v) = flag_value("--max-extrema-drift-pct", arg, &mut iter)? {
            gate.max_extrema_drift_pct = parse_pct("--max-extrema-drift-pct", &v)?;
        } else if let Some(v) = flag_value("--max-throughput-drop-pct", arg, &mut iter)? {
            gate.max_throughput_drop_pct = Some(parse_pct("--max-throughput-drop-pct", &v)?);
        } else if let Some(v) = flag_value("--max-peak-rss-growth-pct", arg, &mut iter)? {
            gate.max_peak_rss_growth_pct = Some(parse_pct("--max-peak-rss-growth-pct", &v)?);
        } else if let Some(v) = flag_value("--max-recovery-overhead-pct", arg, &mut iter)? {
            gate.max_recovery_overhead_pct = Some(parse_pct("--max-recovery-overhead-pct", &v)?);
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag {arg:?}"));
        } else {
            paths.push(arg);
        }
    }
    let [baseline, current] = paths[..] else {
        return Err(String::from("diff takes exactly two manifest paths"));
    };
    let baseline = load_manifest(baseline)?;
    let current = load_manifest(current)?;
    let diff = ManifestDiff::compare(&baseline, &current, &gate);
    print!("{}", diff.render(gated));
    if gated && !diff.passes() {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn load_manifest(path: &str) -> Result<RunManifest, String> {
    serde_json::from_str(&read_input(path)?).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn parse_pct(flag: &str, raw: &str) -> Result<f64, String> {
    match raw.trim().parse::<f64>() {
        Ok(v) if v >= 0.0 && v.is_finite() => Ok(v),
        _ => Err(format!(
            "invalid {flag} value {raw:?}: expected a non-negative number"
        )),
    }
}

/// Extracts the operand of `flag` from `arg` (`flag=value` or `flag`
/// followed by the next argument). Mirrors the repro binaries' parser.
fn flag_value<'a, I>(flag: &str, arg: &str, rest: &mut I) -> Result<Option<String>, String>
where
    I: Iterator<Item = &'a String>,
{
    if let Some(v) = arg.strip_prefix(flag) {
        if let Some(v) = v.strip_prefix('=') {
            return Ok(Some(v.to_string()));
        }
        if v.is_empty() {
            return match rest.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{flag} requires a value")),
            };
        }
    }
    Ok(None)
}
