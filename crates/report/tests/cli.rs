//! CLI tests for the `cichar-report` binary, covering the acceptance
//! criteria: the Perfetto export round-trips through the Chrome
//! trace-event schema, and `diff --gate` exits 0 on a self-compare but
//! non-zero on an injected 2× probe-count regression.

use cichar_report::validate_chrome_trace;
use cichar_trace::{RunManifest, TraceEvent, TraceRecord, TraceVerdict};
use serde::Value;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cichar-report"))
        .args(args)
        .output()
        .expect("cichar-report spawns")
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cichar_report_cli_{name}"));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// A small but representative trace: a phase change, one full-range
/// search, one eq4 STP walk with a cached probe and a fault.
fn sample_trace(path: &Path) {
    let mut seq = 0u64;
    let mut lines = String::new();
    let mut push = |test: Option<u64>, ts_us: u64, event: TraceEvent| {
        let record = TraceRecord { seq, test, ts_us, event };
        seq += 1;
        lines.push_str(&serde_json::to_string(&record).expect("serializes"));
        lines.push('\n');
    };
    push(None, 0, TraceEvent::CampaignPhaseChanged { phase: "dsv".into() });
    push(Some(0), 5, TraceEvent::SearchStarted {
        strategy: "successive_approximation".into(),
        order: "eq3".into(),
        window: [80.0, 130.0],
        reference: None,
        sf: None,
    });
    push(Some(0), 6, TraceEvent::ProbeIssued { value: 105.0, speculative: false });
    push(Some(0), 7, TraceEvent::ProbeResolved {
        value: 105.0,
        verdict: TraceVerdict::Pass,
        cached: false,
    });
    push(Some(0), 9, TraceEvent::SearchFinished {
        strategy: "successive_approximation".into(),
        trip_point: Some(105.0),
        converged: true,
        probes: 1,
    });
    push(Some(1), 12, TraceEvent::SearchStarted {
        strategy: "stp".into(),
        order: "eq4".into(),
        window: [80.0, 130.0],
        reference: Some(105.0),
        sf: Some(0.5),
    });
    push(Some(1), 13, TraceEvent::ProbeResolved {
        value: 105.0,
        verdict: TraceVerdict::Pass,
        cached: true,
    });
    push(Some(1), 14, TraceEvent::StepTaken {
        iteration: 1,
        step_factor: 0.5,
        value: 104.0,
        clamped: false,
        verdict: TraceVerdict::Fail,
    });
    push(Some(1), 15, TraceEvent::FaultInjected { kind: cichar_trace::FaultKind::Flip });
    push(Some(1), 18, TraceEvent::SearchFinished {
        strategy: "stp".into(),
        trip_point: Some(104.5),
        converged: true,
        probes: 2,
    });
    std::fs::write(path, lines).expect("trace written");
}

fn manifest(probes: u64) -> RunManifest {
    let mut m = RunManifest::new("fig2", 0xDA7E_2005, 1)
        .with_config("trip_min", 82.5)
        .with_config("trip_max", 118.75);
    m.metrics.probes_resolved = probes;
    m.metrics.probes_issued = probes;
    m.metrics.searches_finished = 12;
    m
}

fn save(manifest: &RunManifest, path: &Path) {
    std::fs::write(path, serde_json::to_string(manifest).expect("serializes"))
        .expect("manifest written");
}

#[test]
fn summarize_prints_the_anatomy_table() {
    let dir = scratch_dir("summarize");
    let trace = dir.join("trace.jsonl");
    sample_trace(&trace);
    let output = run(&["summarize", trace.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr_of(&output));
    let stdout = stdout_of(&output);
    for needle in ["trace summary", "stp walk (eq4)", "cache-hit ratio"] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
}

#[test]
fn perfetto_export_round_trips_through_the_chrome_schema() {
    let dir = scratch_dir("perfetto");
    let trace = dir.join("trace.jsonl");
    let out = dir.join("chrome.json");
    sample_trace(&trace);
    let output = run(&[
        "perfetto",
        trace.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr_of(&output));
    // Round trip: the file the CLI wrote parses back as JSON and
    // validates against the Chrome trace-event schema.
    let text = std::fs::read_to_string(&out).expect("export exists");
    let value: Value = serde_json::from_str(&text).expect("export is valid JSON");
    let events = validate_chrome_trace(&value).expect("export is schema-valid");
    assert!(events >= 5, "expected a non-trivial event count, got {events}");
    // No leftover scratch file from the atomic write.
    assert!(!dir.join("chrome.json.tmp").exists());
}

#[test]
fn perfetto_defaults_to_stdout() {
    let dir = scratch_dir("perfetto_stdout");
    let trace = dir.join("trace.jsonl");
    sample_trace(&trace);
    let output = run(&["perfetto", trace.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr_of(&output));
    let value: Value = serde_json::from_str(&stdout_of(&output)).expect("stdout is JSON");
    validate_chrome_trace(&value).expect("stdout is schema-valid");
}

#[test]
fn diff_gate_passes_on_self_compare() {
    let dir = scratch_dir("diff_self");
    let base = dir.join("baseline.json");
    save(&manifest(1000), &base);
    let output = run(&[
        "diff",
        base.to_str().unwrap(),
        base.to_str().unwrap(),
        "--gate",
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stdout_of(&output));
    assert!(stdout_of(&output).contains("gate: PASS"));
}

#[test]
fn diff_gate_fails_on_a_doubled_probe_count() {
    let dir = scratch_dir("diff_regression");
    let base = dir.join("baseline.json");
    let cur = dir.join("current.json");
    save(&manifest(1000), &base);
    save(&manifest(2000), &cur); // the injected 2× regression
    let output = run(&[
        "diff",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--gate",
    ]);
    assert_eq!(output.status.code(), Some(1), "{}", stdout_of(&output));
    let stdout = stdout_of(&output);
    assert!(stdout.contains("gate: FAIL"), "{stdout}");
    assert!(stdout.contains("probes_resolved"), "{stdout}");
    // Ungated, the same comparison reports but exits 0.
    let ungated = run(&["diff", base.to_str().unwrap(), cur.to_str().unwrap()]);
    assert_eq!(ungated.status.code(), Some(0), "{}", stdout_of(&ungated));
    assert!(stdout_of(&ungated).contains("+100.0%"));
}

#[test]
fn diff_thresholds_are_configurable() {
    let dir = scratch_dir("diff_thresholds");
    let base = dir.join("baseline.json");
    let cur = dir.join("current.json");
    save(&manifest(1000), &base);
    save(&manifest(1050), &cur); // +5%: inside the default +10% budget
    let default_gate = run(&["diff", base.to_str().unwrap(), cur.to_str().unwrap(), "--gate"]);
    assert_eq!(default_gate.status.code(), Some(0), "{}", stdout_of(&default_gate));
    let tightened = run(&[
        "diff",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--gate",
        "--max-probe-growth-pct=2",
    ]);
    assert_eq!(tightened.status.code(), Some(1), "{}", stdout_of(&tightened));
}

#[test]
fn probes_per_trip_threshold_is_configurable() {
    let dir = scratch_dir("diff_ppt_threshold");
    let base = dir.join("baseline.json");
    let cur = dir.join("current.json");
    // Resolved-probe growth stays inside the default +10% budget, but the
    // current run finishes fewer searches, so the per-trip bill jumps +31%.
    let mut cheap = manifest(1000);
    cheap.metrics.searches_finished = 16;
    let mut pricey = manifest(1050);
    pricey.metrics.searches_finished = 13;
    save(&cheap, &base);
    save(&pricey, &cur);
    let default_gate = run(&["diff", base.to_str().unwrap(), cur.to_str().unwrap(), "--gate"]);
    assert_eq!(default_gate.status.code(), Some(1), "{}", stdout_of(&default_gate));
    assert!(stdout_of(&default_gate).contains("probes_per_trip"));
    let loosened = run(&[
        "diff",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--gate",
        "--max-probes-per-trip-growth-pct=50",
    ]);
    assert_eq!(loosened.status.code(), Some(0), "{}", stdout_of(&loosened));
}

#[test]
fn usage_errors_exit_2() {
    let dir = scratch_dir("usage");
    let base = dir.join("baseline.json");
    save(&manifest(1), &base);
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["summarize"][..],
        &["summarize", "/nonexistent_cichar/trace.jsonl"][..],
        &["perfetto"][..],
        &["diff", "only-one.json"][..],
        &["diff", "a.json", "b.json", "--max-probe-growth-pct", "nope"][..],
        &["diff", "a.json", "b.json", "--unknown-flag"][..],
    ] {
        let output = run(args);
        assert_eq!(output.status.code(), Some(2), "{args:?}");
        let stderr = stderr_of(&output);
        assert!(stderr.contains("error:"), "{args:?}: {stderr}");
        assert!(stderr.contains("usage:"), "{args:?}: {stderr}");
    }
}
