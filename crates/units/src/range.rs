//! Closed search ranges over a scalar characterization parameter.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error constructing or refining a [`ParamRange`].
#[derive(Debug, Clone, PartialEq)]
pub enum RangeError {
    /// The start of the range was not strictly below its end.
    Inverted {
        /// Offending start bound.
        start: f64,
        /// Offending end bound.
        end: f64,
    },
    /// A bound was NaN or infinite.
    NotFinite,
    /// A step or resolution was zero, negative, NaN or infinite.
    InvalidStep(f64),
}

impl fmt::Display for RangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RangeError::Inverted { start, end } => {
                write!(f, "range start {start} is not below end {end}")
            }
            RangeError::NotFinite => f.write_str("range bound was NaN or infinite"),
            RangeError::InvalidStep(s) => write!(f, "step {s} is not a positive finite value"),
        }
    }
}

impl Error for RangeError {}

/// A closed interval `[start, end]` a trip-point search sweeps over.
///
/// This is the paper's "generous starting range" `CR` (§4): the search
/// begins at `S1 = start`, ends at `S2 = end`, and the trip point is assumed
/// to lie strictly inside. The paper's worked example uses
/// `S1 = 80 MHz, S2 = 130 MHz`, so `CR = 50 MHz`.
///
/// # Examples
///
/// ```
/// use cichar_units::ParamRange;
///
/// let cr = ParamRange::new(80.0, 130.0)?;
/// assert_eq!(cr.width(), 50.0);
/// assert_eq!(cr.midpoint(), 105.0);
/// assert!(cr.contains(100.0));
/// assert!(!cr.contains(130.1));
/// # Ok::<(), cichar_units::RangeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParamRange {
    start: f64,
    end: f64,
}

impl ParamRange {
    /// Creates a range from `start` to `end`.
    ///
    /// # Errors
    ///
    /// Returns [`RangeError::Inverted`] if `start >= end` and
    /// [`RangeError::NotFinite`] if either bound is NaN or infinite.
    pub fn new(start: f64, end: f64) -> Result<Self, RangeError> {
        if !start.is_finite() || !end.is_finite() {
            return Err(RangeError::NotFinite);
        }
        if start >= end {
            return Err(RangeError::Inverted { start, end });
        }
        Ok(Self { start, end })
    }

    /// Lower bound (`S1`).
    pub fn start(self) -> f64 {
        self.start
    }

    /// Upper bound (`S2`).
    pub fn end(self) -> f64 {
        self.end
    }

    /// Width of the range (the paper's `CR`).
    pub fn width(self) -> f64 {
        self.end - self.start
    }

    /// Center of the range — the first probe of a binary search.
    pub fn midpoint(self) -> f64 {
        self.start + (self.end - self.start) / 2.0
    }

    /// Whether `value` lies inside the closed interval.
    pub fn contains(self, value: f64) -> bool {
        value >= self.start && value <= self.end
    }

    /// Clamps `value` into the interval.
    pub fn clamp(self, value: f64) -> f64 {
        value.clamp(self.start, self.end)
    }

    /// Linear interpolation: `t = 0` at start, `t = 1` at end.
    pub fn lerp(self, t: f64) -> f64 {
        self.start + t * self.width()
    }

    /// Inverse of [`lerp`](Self::lerp): the normalized position of `value`.
    pub fn unlerp(self, value: f64) -> f64 {
        (value - self.start) / self.width()
    }

    /// Number of `step`-sized probes a linear search needs to cross the
    /// whole range (rounded up, at least one).
    ///
    /// # Errors
    ///
    /// Returns [`RangeError::InvalidStep`] if `step` is not positive finite.
    pub fn steps_at(self, step: f64) -> Result<usize, RangeError> {
        if !(step.is_finite() && step > 0.0) {
            return Err(RangeError::InvalidStep(step));
        }
        Ok(((self.width() / step).ceil() as usize).max(1))
    }

    /// Iterator over `count` evenly spaced grid points including both ends.
    ///
    /// Useful for shmoo axes. With `count == 1` yields only the start.
    pub fn grid(self, count: usize) -> impl Iterator<Item = f64> {
        let step = if count > 1 {
            self.width() / (count - 1) as f64
        } else {
            0.0
        };
        let start = self.start;
        (0..count).map(move |i| start + step * i as f64)
    }

    /// Shrinks the range symmetrically around its midpoint by `factor`
    /// (0 < factor ≤ 1).
    ///
    /// # Errors
    ///
    /// Returns [`RangeError::InvalidStep`] if `factor` is not in `(0, 1]`.
    pub fn shrink(self, factor: f64) -> Result<Self, RangeError> {
        if !(factor.is_finite() && factor > 0.0 && factor <= 1.0) {
            return Err(RangeError::InvalidStep(factor));
        }
        let half = self.width() * factor / 2.0;
        let mid = self.midpoint();
        ParamRange::new(mid - half, mid + half)
    }
}

impl fmt::Display for ParamRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.3}, {:.3}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(ParamRange::new(0.0, 1.0).is_ok());
        assert_eq!(
            ParamRange::new(1.0, 1.0),
            Err(RangeError::Inverted { start: 1.0, end: 1.0 })
        );
        assert_eq!(ParamRange::new(f64::NAN, 1.0), Err(RangeError::NotFinite));
        assert_eq!(
            ParamRange::new(0.0, f64::INFINITY),
            Err(RangeError::NotFinite)
        );
    }

    #[test]
    fn paper_worked_example_dimensions() {
        // §4: S1 = 80 MHz, S2 = 130 MHz ⇒ CR = 50 MHz.
        let cr = ParamRange::new(80.0, 130.0).expect("valid range");
        assert_eq!(cr.width(), 50.0);
        assert!(cr.contains(110.0));
    }

    #[test]
    fn lerp_unlerp_inverse_at_ends() {
        let r = ParamRange::new(-2.0, 6.0).expect("valid range");
        assert_eq!(r.lerp(0.0), -2.0);
        assert_eq!(r.lerp(1.0), 6.0);
        assert_eq!(r.unlerp(-2.0), 0.0);
        assert_eq!(r.unlerp(6.0), 1.0);
    }

    #[test]
    fn steps_at_rounds_up() {
        let r = ParamRange::new(0.0, 10.0).expect("valid range");
        assert_eq!(r.steps_at(3.0).expect("valid step"), 4);
        assert_eq!(r.steps_at(10.0).expect("valid step"), 1);
        assert_eq!(r.steps_at(0.0), Err(RangeError::InvalidStep(0.0)));
        assert_eq!(r.steps_at(-1.0), Err(RangeError::InvalidStep(-1.0)));
    }

    #[test]
    fn grid_includes_both_endpoints() {
        let r = ParamRange::new(1.0, 2.0).expect("valid range");
        let pts: Vec<f64> = r.grid(5).collect();
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], 1.0);
        assert!((pts[4] - 2.0).abs() < 1e-12);
        assert!((pts[2] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn grid_degenerate_counts() {
        let r = ParamRange::new(0.0, 1.0).expect("valid range");
        assert_eq!(r.grid(0).count(), 0);
        assert_eq!(r.grid(1).collect::<Vec<_>>(), vec![0.0]);
    }

    #[test]
    fn shrink_preserves_midpoint() {
        let r = ParamRange::new(0.0, 8.0).expect("valid range");
        let s = r.shrink(0.5).expect("valid factor");
        assert_eq!(s.midpoint(), r.midpoint());
        assert_eq!(s.width(), 4.0);
        assert!(r.shrink(0.0).is_err());
        assert!(r.shrink(1.5).is_err());
    }

    #[test]
    fn display_shows_bounds() {
        let r = ParamRange::new(80.0, 130.0).expect("valid range");
        assert_eq!(r.to_string(), "[80.000, 130.000]");
    }

    proptest! {
        #[test]
        fn clamp_result_always_contained(
            a in -1e4f64..1e4, w in 1e-3f64..1e4, v in -1e6f64..1e6
        ) {
            let r = ParamRange::new(a, a + w).unwrap();
            prop_assert!(r.contains(r.clamp(v)));
        }

        #[test]
        fn lerp_of_unit_interval_is_contained(
            a in -1e4f64..1e4, w in 1e-3f64..1e4, t in 0.0f64..=1.0
        ) {
            let r = ParamRange::new(a, a + w).unwrap();
            prop_assert!(r.contains(r.lerp(t)));
        }

        #[test]
        fn unlerp_lerp_round_trip(
            a in -1e4f64..1e4, w in 1e-1f64..1e4, t in 0.0f64..=1.0
        ) {
            let r = ParamRange::new(a, a + w).unwrap();
            let back = r.unlerp(r.lerp(t));
            prop_assert!((back - t).abs() < 1e-9);
        }

        #[test]
        fn grid_is_monotone(a in -1e4f64..1e4, w in 1e-3f64..1e4, n in 2usize..64) {
            let r = ParamRange::new(a, a + w).unwrap();
            let pts: Vec<f64> = r.grid(n).collect();
            for pair in pts.windows(2) {
                prop_assert!(pair[0] < pair[1]);
            }
        }
    }
}
