//! Typed physical quantities for semiconductor device characterization.
//!
//! Characterization code juggles many `f64`s with incompatible meanings — a
//! strobe delay in nanoseconds, a supply voltage, a clock frequency, a die
//! temperature. This crate wraps each in a newtype ([`Nanoseconds`],
//! [`Volts`], [`Megahertz`], [`Celsius`]) so the compiler rejects a shmoo
//! axis fed with the wrong unit, and provides the shared vocabulary the rest
//! of the workspace searches over: [`ParamKind`], [`ParamValue`],
//! [`ParamRange`] and [`Axis`].
//!
//! # Examples
//!
//! ```
//! use cichar_units::{Nanoseconds, ParamRange, Volts};
//!
//! let strobe = Nanoseconds::new(20.0) + Nanoseconds::new(2.5);
//! assert_eq!(strobe, Nanoseconds::new(22.5));
//!
//! let range = ParamRange::new(10.0, 50.0)?;
//! assert!(range.contains(strobe.value()));
//! assert_eq!(range.midpoint(), 30.0);
//!
//! let vdd = Volts::new(1.8);
//! assert_eq!(format!("{vdd}"), "1.800 V");
//! # Ok::<(), cichar_units::RangeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod axis;
mod quantity;
mod range;

pub use axis::Axis;
pub use quantity::{Celsius, Megahertz, Nanoseconds, Volts};
pub use range::{ParamRange, RangeError};

use serde::{Deserialize, Serialize};
use std::fmt;

/// The characterization parameter a search or shmoo sweeps over.
///
/// Matches the DC/AC parameters the paper's §1 lists as characterization
/// targets: timing edges, supply voltage and clock frequency.
///
/// # Examples
///
/// ```
/// use cichar_units::ParamKind;
///
/// assert_eq!(ParamKind::StrobeDelay.unit_symbol(), "ns");
/// assert!(ParamKind::SupplyVoltage.to_string().contains("voltage"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// Output-data strobe delay in nanoseconds (the `T_DQ` axis of fig. 8).
    StrobeDelay,
    /// Power-supply voltage in volts (the Vdd axis of fig. 8).
    SupplyVoltage,
    /// Device clock frequency in megahertz (§4's 100 MHz example).
    ClockFrequency,
    /// Die temperature in degrees Celsius.
    Temperature,
}

impl ParamKind {
    /// Unit symbol used when rendering shmoo axes and reports.
    pub fn unit_symbol(self) -> &'static str {
        match self {
            ParamKind::StrobeDelay => "ns",
            ParamKind::SupplyVoltage => "V",
            ParamKind::ClockFrequency => "MHz",
            ParamKind::Temperature => "degC",
        }
    }

    /// Wraps a raw magnitude into the matching [`ParamValue`].
    pub fn value(self, magnitude: f64) -> ParamValue {
        match self {
            ParamKind::StrobeDelay => ParamValue::StrobeDelay(Nanoseconds::new(magnitude)),
            ParamKind::SupplyVoltage => ParamValue::SupplyVoltage(Volts::new(magnitude)),
            ParamKind::ClockFrequency => ParamValue::ClockFrequency(Megahertz::new(magnitude)),
            ParamKind::Temperature => ParamValue::Temperature(Celsius::new(magnitude)),
        }
    }
}

impl fmt::Display for ParamKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ParamKind::StrobeDelay => "strobe delay",
            ParamKind::SupplyVoltage => "supply voltage",
            ParamKind::ClockFrequency => "clock frequency",
            ParamKind::Temperature => "temperature",
        };
        f.write_str(name)
    }
}

/// A parameter magnitude tagged with its kind.
///
/// Searches report their trip point as a `ParamValue` so callers cannot
/// confuse a voltage trip point with a timing one.
///
/// # Examples
///
/// ```
/// use cichar_units::{ParamKind, ParamValue};
///
/// let tp = ParamKind::StrobeDelay.value(22.1);
/// assert_eq!(tp.magnitude(), 22.1);
/// assert_eq!(tp.kind(), ParamKind::StrobeDelay);
/// assert_eq!(format!("{tp}"), "22.100 ns");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// A strobe-delay magnitude.
    StrobeDelay(Nanoseconds),
    /// A supply-voltage magnitude.
    SupplyVoltage(Volts),
    /// A clock-frequency magnitude.
    ClockFrequency(Megahertz),
    /// A temperature magnitude.
    Temperature(Celsius),
}

impl ParamValue {
    /// The raw magnitude in the parameter's natural unit.
    pub fn magnitude(self) -> f64 {
        match self {
            ParamValue::StrobeDelay(v) => v.value(),
            ParamValue::SupplyVoltage(v) => v.value(),
            ParamValue::ClockFrequency(v) => v.value(),
            ParamValue::Temperature(v) => v.value(),
        }
    }

    /// Which parameter this magnitude belongs to.
    pub fn kind(self) -> ParamKind {
        match self {
            ParamValue::StrobeDelay(_) => ParamKind::StrobeDelay,
            ParamValue::SupplyVoltage(_) => ParamKind::SupplyVoltage,
            ParamValue::ClockFrequency(_) => ParamKind::ClockFrequency,
            ParamValue::Temperature(_) => ParamKind::Temperature,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} {}", self.magnitude(), self.kind().unit_symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_kind_round_trips_through_value() {
        for kind in [
            ParamKind::StrobeDelay,
            ParamKind::SupplyVoltage,
            ParamKind::ClockFrequency,
            ParamKind::Temperature,
        ] {
            let v = kind.value(1.25);
            assert_eq!(v.kind(), kind);
            assert_eq!(v.magnitude(), 1.25);
        }
    }

    #[test]
    fn param_value_display_includes_unit() {
        assert_eq!(ParamKind::SupplyVoltage.value(1.8).to_string(), "1.800 V");
        assert_eq!(
            ParamKind::ClockFrequency.value(100.0).to_string(),
            "100.000 MHz"
        );
    }

    #[test]
    fn param_kind_display_is_nonempty() {
        for kind in [
            ParamKind::StrobeDelay,
            ParamKind::SupplyVoltage,
            ParamKind::ClockFrequency,
            ParamKind::Temperature,
        ] {
            assert!(!kind.to_string().is_empty());
            assert!(!kind.unit_symbol().is_empty());
        }
    }

    #[test]
    fn param_value_serde_round_trip() {
        let v = ParamKind::StrobeDelay.value(22.1);
        let json = serde_json::to_string(&v).expect("serialize");
        let back: ParamValue = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, v);
    }
}
