//! Unit newtypes with arithmetic.
//!
//! Each quantity wraps an `f64` magnitude in its natural unit. Arithmetic is
//! provided only where physically meaningful: quantities of the same unit
//! add and subtract, and scale by dimensionless `f64` factors. Cross-unit
//! conversions with a physical meaning ([`Megahertz::period`],
//! [`Nanoseconds::frequency`]) are explicit methods.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $symbol:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw magnitude.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// The raw magnitude in this quantity's natural unit.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// The smaller of two quantities.
            pub fn min(self, other: Self) -> Self {
                if self.0 <= other.0 { self } else { other }
            }

            /// The larger of two quantities.
            pub fn max(self, other: Self) -> Self {
                if self.0 >= other.0 { self } else { other }
            }

            /// Clamps the magnitude into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp bounds inverted: {} > {}", lo, hi);
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Whether the magnitude is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $symbol)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(q: $name) -> f64 {
                q.0
            }
        }

        impl PartialEq<f64> for $name {
            fn eq(&self, other: &f64) -> bool {
                self.0 == *other
            }
        }

        impl PartialOrd<f64> for $name {
            fn partial_cmp(&self, other: &f64) -> Option<Ordering> {
                self.0.partial_cmp(other)
            }
        }
    };
}

quantity!(
    /// A time span or timing edge in nanoseconds.
    ///
    /// This is the unit of the paper's headline parameter, the data-output
    /// valid time `T_DQ` (spec = 20 ns).
    ///
    /// # Examples
    ///
    /// ```
    /// use cichar_units::Nanoseconds;
    ///
    /// let margin = Nanoseconds::new(22.1) - Nanoseconds::new(20.0);
    /// assert!((margin.value() - 2.1).abs() < 1e-12);
    /// ```
    Nanoseconds,
    "ns"
);

quantity!(
    /// A supply or signal voltage in volts.
    ///
    /// The paper's Table 1 is measured at Vdd = 1.8 V; fig. 8's shmoo sweeps
    /// Vdd on its Y axis.
    ///
    /// # Examples
    ///
    /// ```
    /// use cichar_units::Volts;
    ///
    /// let vdd = Volts::new(1.8);
    /// let droop = vdd - Volts::new(0.12);
    /// assert!(droop < vdd);
    /// ```
    Volts,
    "V"
);

quantity!(
    /// A clock frequency in megahertz.
    ///
    /// §4's worked example characterizes a device specified at 100 MHz that
    /// fails above 110 MHz.
    ///
    /// # Examples
    ///
    /// ```
    /// use cichar_units::Megahertz;
    ///
    /// let spec = Megahertz::new(100.0);
    /// assert!((spec.period().value() - 10.0).abs() < 1e-12);
    /// ```
    Megahertz,
    "MHz"
);

quantity!(
    /// A die temperature in degrees Celsius.
    ///
    /// Device heating during long searches is one of the drift sources §1
    /// warns about; the ATE simulator injects it in this unit.
    ///
    /// # Examples
    ///
    /// ```
    /// use cichar_units::Celsius;
    ///
    /// let hot = Celsius::new(25.0) + Celsius::new(60.0);
    /// assert_eq!(hot, Celsius::new(85.0));
    /// ```
    Celsius,
    "degC"
);

impl Megahertz {
    /// The clock period corresponding to this frequency.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the frequency is zero or negative; a clock
    /// must run forward.
    pub fn period(self) -> Nanoseconds {
        debug_assert!(self.0 > 0.0, "period of non-positive frequency {self}");
        Nanoseconds::new(1000.0 / self.0)
    }
}

impl Nanoseconds {
    /// The clock frequency whose period equals this span.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the span is zero or negative.
    pub fn frequency(self) -> Megahertz {
        debug_assert!(self.0 > 0.0, "frequency of non-positive period {self}");
        Megahertz::new(1000.0 / self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn arithmetic_matches_f64() {
        let a = Nanoseconds::new(3.5);
        let b = Nanoseconds::new(1.25);
        assert_eq!((a + b).value(), 4.75);
        assert_eq!((a - b).value(), 2.25);
        assert_eq!((a * 2.0).value(), 7.0);
        assert_eq!((2.0 * a).value(), 7.0);
        assert_eq!((a / 2.0).value(), 1.75);
        assert_eq!(a / b, 2.8);
        assert_eq!((-a).value(), -3.5);
    }

    #[test]
    fn assign_ops_accumulate() {
        let mut v = Volts::new(1.8);
        v += Volts::new(0.2);
        assert_eq!(v, Volts::new(2.0));
        v -= Volts::new(0.5);
        assert_eq!(v, Volts::new(1.5));
    }

    #[test]
    fn min_max_clamp() {
        let lo = Celsius::new(-40.0);
        let hi = Celsius::new(125.0);
        assert_eq!(Celsius::new(150.0).clamp(lo, hi), hi);
        assert_eq!(Celsius::new(-100.0).clamp(lo, hi), lo);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_rejects_inverted_bounds() {
        let _ = Nanoseconds::new(1.0).clamp(Nanoseconds::new(5.0), Nanoseconds::new(2.0));
    }

    #[test]
    fn frequency_period_inverse() {
        let f = Megahertz::new(100.0);
        assert!((f.period().frequency().value() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Nanoseconds = (1..=4).map(|i| Nanoseconds::new(i as f64)).sum();
        assert_eq!(total.value(), 10.0);
    }

    #[test]
    fn compare_against_f64() {
        assert!(Volts::new(1.8) > 1.5);
        assert!(Volts::new(1.8) == 1.8);
    }

    #[test]
    fn display_formats_with_symbol() {
        assert_eq!(Nanoseconds::new(20.0).to_string(), "20.000 ns");
        assert_eq!(Celsius::new(-40.0).to_string(), "-40.000 degC");
    }

    #[test]
    fn conversion_from_into_f64() {
        let q: Megahertz = 50.0.into();
        assert_eq!(q.value(), 50.0);
        let raw: f64 = q.into();
        assert_eq!(raw, 50.0);
    }

    #[test]
    fn zero_and_default_agree() {
        assert_eq!(Nanoseconds::ZERO, Nanoseconds::default());
    }

    proptest! {
        #[test]
        fn add_commutes(a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let x = Nanoseconds::new(a);
            let y = Nanoseconds::new(b);
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn sub_is_inverse_of_add(a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let x = Nanoseconds::new(a);
            let y = Nanoseconds::new(b);
            let back = (x + y) - y;
            prop_assert!((back.value() - a).abs() <= 1e-6_f64.max(a.abs() * 1e-12));
        }

        #[test]
        fn abs_is_nonnegative(a in -1e9f64..1e9) {
            prop_assert!(Volts::new(a).abs().value() >= 0.0);
        }

        #[test]
        fn ratio_times_denominator_recovers(a in 1e-3f64..1e6, b in 1e-3f64..1e6) {
            let x = Megahertz::new(a);
            let y = Megahertz::new(b);
            let r = x / y;
            prop_assert!(((y * r).value() - a).abs() < a.abs() * 1e-9 + 1e-9);
        }

        #[test]
        fn period_frequency_round_trip(f in 1e-2f64..1e5) {
            let mhz = Megahertz::new(f);
            let back = mhz.period().frequency();
            prop_assert!((back.value() - f).abs() < f * 1e-9);
        }
    }
}
