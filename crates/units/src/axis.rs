//! Discretized parameter axes for shmoo plots and sweeps.

use crate::{ParamKind, ParamRange, RangeError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A discretized sweep axis: a [`ParamKind`], a [`ParamRange`] and a point
/// count.
///
/// A shmoo plot (fig. 8) is two `Axis` values — Vdd on Y, strobe delay on X
/// — each rasterized into grid points.
///
/// # Examples
///
/// ```
/// use cichar_units::{Axis, ParamKind};
///
/// let vdd = Axis::new(ParamKind::SupplyVoltage, 1.5, 2.1, 13)?;
/// assert_eq!(vdd.len(), 13);
/// assert_eq!(vdd.at(0), 1.5);
/// assert!((vdd.at(12) - 2.1).abs() < 1e-12);
/// assert_eq!(vdd.index_of(1.8), Some(6));
/// # Ok::<(), cichar_units::RangeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    kind: ParamKind,
    range: ParamRange,
    points: usize,
}

impl Axis {
    /// Creates an axis over `[start, end]` with `points` grid points.
    ///
    /// # Errors
    ///
    /// Returns a [`RangeError`] if the bounds are invalid or `points < 2`
    /// (an axis with fewer than two points cannot be swept).
    pub fn new(kind: ParamKind, start: f64, end: f64, points: usize) -> Result<Self, RangeError> {
        if points < 2 {
            return Err(RangeError::InvalidStep(points as f64));
        }
        Ok(Self {
            kind,
            range: ParamRange::new(start, end)?,
            points,
        })
    }

    /// The parameter this axis sweeps.
    pub fn kind(&self) -> ParamKind {
        self.kind
    }

    /// The underlying continuous range.
    pub fn range(&self) -> ParamRange {
        self.range
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points
    }

    /// Always false: construction requires at least two points.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Spacing between adjacent grid points.
    pub fn step(&self) -> f64 {
        self.range.width() / (self.points - 1) as f64
    }

    /// The magnitude of grid point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn at(&self, i: usize) -> f64 {
        assert!(i < self.points, "axis index {i} out of {}", self.points);
        self.range.start() + self.step() * i as f64
    }

    /// The grid index whose point is nearest `value`, if `value` falls
    /// inside the axis range (with half-step slack at the ends).
    pub fn index_of(&self, value: f64) -> Option<usize> {
        let idx = (value - self.range.start()) / self.step();
        let rounded = idx.round();
        if rounded < -0.5 || rounded > (self.points - 1) as f64 + 0.5 {
            return None;
        }
        Some(rounded.clamp(0.0, (self.points - 1) as f64) as usize)
    }

    /// Iterator over all grid magnitudes, ascending.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.points).map(move |i| self.at(i))
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} x{} ({})",
            self.kind,
            self.range,
            self.points,
            self.kind.unit_symbol()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vdd_axis() -> Axis {
        Axis::new(ParamKind::SupplyVoltage, 1.5, 2.1, 13).expect("valid axis")
    }

    #[test]
    fn construction_validates_points() {
        assert!(Axis::new(ParamKind::StrobeDelay, 0.0, 1.0, 1).is_err());
        assert!(Axis::new(ParamKind::StrobeDelay, 0.0, 1.0, 2).is_ok());
        assert!(Axis::new(ParamKind::StrobeDelay, 1.0, 0.0, 8).is_err());
    }

    #[test]
    fn endpoints_hit_exactly() {
        let a = vdd_axis();
        assert_eq!(a.at(0), 1.5);
        assert!((a.at(a.len() - 1) - 2.1).abs() < 1e-12);
    }

    #[test]
    fn step_times_count_spans_range() {
        let a = vdd_axis();
        assert!((a.step() * (a.len() - 1) as f64 - a.range().width()).abs() < 1e-12);
    }

    #[test]
    fn index_of_rounds_to_nearest() {
        let a = vdd_axis(); // step = 0.05
        assert_eq!(a.index_of(1.5), Some(0));
        assert_eq!(a.index_of(1.524), Some(0));
        assert_eq!(a.index_of(1.526), Some(1));
        assert_eq!(a.index_of(2.1), Some(12));
        assert_eq!(a.index_of(2.2), None);
        assert_eq!(a.index_of(1.3), None);
    }

    #[test]
    #[should_panic(expected = "axis index")]
    fn at_panics_out_of_bounds() {
        let a = vdd_axis();
        let _ = a.at(13);
    }

    #[test]
    fn iter_yields_len_points_ascending() {
        let a = vdd_axis();
        let pts: Vec<f64> = a.iter().collect();
        assert_eq!(pts.len(), a.len());
        for pair in pts.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn display_mentions_kind_and_unit() {
        let s = vdd_axis().to_string();
        assert!(s.contains("supply voltage"));
        assert!(s.contains('V'));
    }

    proptest! {
        #[test]
        fn index_of_at_is_identity(
            start in -100.0f64..100.0,
            width in 0.1f64..100.0,
            points in 2usize..200,
        ) {
            let a = Axis::new(ParamKind::StrobeDelay, start, start + width, points).unwrap();
            for i in 0..a.len() {
                prop_assert_eq!(a.index_of(a.at(i)), Some(i));
            }
        }
    }
}
