//! Deterministic parallel execution layer for characterization hot paths.
//!
//! Every expensive loop in the reproduction — multi-trip-point DSV runs,
//! GA fitness evaluation, committee training, shmoo capture, lot
//! sampling — is a fan-out over independent work items. This crate
//! provides the shared machinery those paths use to go wide **without
//! giving up bit-reproducibility**:
//!
//! * [`ExecPolicy`] — thread-count selection (builder API, the
//!   `CICHAR_THREADS` environment variable, or available parallelism);
//! * [`par_map`] / [`par_map_ref`] — chunked, work-stealing fan-out over a
//!   scoped worker pool that returns results **by input index**, never by
//!   completion order;
//! * [`derive_seed`] — the per-item RNG seed derivation rule
//!   `(campaign seed, item index) → worker seed`, so the random stream an
//!   item sees is a pure function of its identity and not of scheduling.
//!
//! The determinism contract: callers hand each item a fresh RNG seeded
//! with `derive_seed(campaign_seed, index)` and merge outputs by index.
//! Under that contract results are bit-identical for every thread count,
//! including `threads = 1`, which runs the same schedule inline on the
//! caller's thread without spawning.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// How many chunks each worker should expect to claim, on average. More
/// chunks than workers gives the atomic claim counter room to balance
/// uneven per-item cost (the work-stealing effect) without per-item
/// claim traffic.
const CHUNKS_PER_WORKER: usize = 4;

/// Thread-count policy for the parallel characterization paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    threads: usize,
}

impl ExecPolicy {
    /// Policy running everything inline on the caller's thread.
    pub const fn serial() -> Self {
        ExecPolicy { threads: 1 }
    }

    /// Policy with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        ExecPolicy {
            threads: threads.max(1),
        }
    }

    /// Policy from the environment: `CICHAR_THREADS` when set and valid,
    /// otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        match std::env::var("CICHAR_THREADS") {
            Ok(raw) => match parse_thread_count(&raw) {
                Some(n) => ExecPolicy::with_threads(n),
                None => ExecPolicy::default(),
            },
            Err(_) => ExecPolicy::default(),
        }
    }

    /// The worker count this policy fans out to (always at least 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this policy runs inline without spawning workers.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }
}

impl Default for ExecPolicy {
    /// Defaults to the machine's available parallelism.
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExecPolicy { threads }
    }
}

/// Parses a `CICHAR_THREADS`-style value: a positive integer, or `0` /
/// empty meaning "use available parallelism" (`None`).
pub fn parse_thread_count(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(0) | Err(_) => None,
        Ok(n) => Some(n),
    }
}

/// Derives a stable per-item RNG seed from a campaign seed and the item's
/// index.
///
/// This is the workspace's determinism rule: an item's random stream
/// depends only on `(campaign_seed, index)`, never on which worker runs it
/// or in what order. The mix is two rounds of the SplitMix64 finalizer
/// over the campaign seed and index, which decorrelates consecutive
/// indices and consecutive campaign seeds alike.
pub fn derive_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut z = campaign_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for _ in 0..2 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// Maps `f` over `items`, fanning out across `policy.threads()` scoped
/// workers, and returns the outputs **in input order**.
///
/// `f` receives each item's original index alongside the item, so callers
/// can derive per-item seeds ([`derive_seed`]) and label results. Workers
/// claim chunks of consecutive indices from a shared atomic counter
/// (work-stealing: a worker that finishes early claims the next chunk),
/// but every output lands in the slot of its input index, so the result
/// is independent of scheduling.
///
/// With a serial policy (or a single item) this runs inline on the
/// caller's thread with no pool, no locks, and no spawn overhead — the
/// legacy sequential code path.
pub fn par_map<T, U, F>(policy: ExecPolicy, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    if policy.is_serial() || items.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let len = items.len();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let workers = policy.threads().min(len);
    let chunk = (len / (workers * CHUNKS_PER_WORKER)).max(1);
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                for index in start..(start + chunk).min(len) {
                    let item = slots[index]
                        .lock()
                        .take()
                        .expect("each index is claimed exactly once");
                    let output = f(index, item);
                    *results[index].lock() = Some(output);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("every index was processed by some worker")
        })
        .collect()
}

/// Borrowing variant of [`par_map`]: maps `f` over `&items` and returns
/// outputs in input order. Useful when items are reused after the fan-out.
pub fn par_map_ref<T, U, F>(policy: ExecPolicy, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    if policy.is_serial() || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let len = items.len();
    let results: Vec<Mutex<Option<U>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let workers = policy.threads().min(len);
    let chunk = (len / (workers * CHUNKS_PER_WORKER)).max(1);
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                for index in start..(start + chunk).min(len) {
                    let output = f(index, &items[index]);
                    *results[index].lock() = Some(output);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("every index was processed by some worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 4, 8] {
            let got = par_map(ExecPolicy::with_threads(threads), items.clone(), |_, x| {
                x * 3
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_ref_matches_serial() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map_ref(ExecPolicy::serial(), &items, |i, x| i as u64 + x);
        let parallel = par_map_ref(ExecPolicy::with_threads(8), &items, |i, x| i as u64 + x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_passes_original_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = par_map(ExecPolicy::with_threads(4), items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(ExecPolicy::with_threads(4), empty, |_, x: u32| x).is_empty());
        assert_eq!(
            par_map(ExecPolicy::with_threads(4), vec![7u32], |i, x| (i, x)),
            vec![(0, 7)]
        );
    }

    #[test]
    fn uneven_item_cost_still_lands_in_order() {
        // Early indices do far more work than late ones, so with several
        // workers the completion order differs wildly from input order.
        let items: Vec<u64> = (0..64).collect();
        let f = |_: usize, x: u64| {
            let spins = if x < 8 { 20_000 } else { 10 };
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        };
        let serial = par_map(ExecPolicy::serial(), items.clone(), f);
        let parallel = par_map(ExecPolicy::with_threads(8), items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn derive_seed_is_stable_and_spread() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        let seeds: std::collections::HashSet<u64> =
            (0..10_000).map(|i| derive_seed(0xC1C4A7, i)).collect();
        assert_eq!(seeds.len(), 10_000, "no collisions over 10k indices");
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn policy_parsing_and_clamping() {
        assert_eq!(parse_thread_count("4"), Some(4));
        assert_eq!(parse_thread_count(" 16 "), Some(16));
        assert_eq!(parse_thread_count("0"), None);
        assert_eq!(parse_thread_count(""), None);
        assert_eq!(parse_thread_count("not-a-number"), None);
        assert_eq!(ExecPolicy::with_threads(0).threads(), 1);
        assert!(ExecPolicy::serial().is_serial());
        assert!(ExecPolicy::default().threads() >= 1);
    }
}
