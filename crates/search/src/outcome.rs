//! Search results: trip point, probe trace and measurement cost.

use crate::traits::RegionOrder;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single pass/fail verdict from the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Probe {
    /// The device met its expected behaviour at the probed value.
    Pass,
    /// The device failed at the probed value.
    Fail,
    /// No verdict was available — a probe-contact dropout or session abort
    /// left the strobe channel silent. Searches treat this as "cannot
    /// continue" rather than guessing a state.
    Invalid,
}

impl Probe {
    /// `true` for [`Probe::Pass`].
    pub fn is_pass(self) -> bool {
        matches!(self, Probe::Pass)
    }

    /// `true` for [`Probe::Fail`].
    pub fn is_fail(self) -> bool {
        matches!(self, Probe::Fail)
    }

    /// `true` when a verdict was actually delivered (pass or fail).
    pub fn is_valid(self) -> bool {
        !matches!(self, Probe::Invalid)
    }

    /// The opposite verdict; [`Probe::Invalid`] stays invalid (there is
    /// nothing to flip).
    pub fn flipped(self) -> Self {
        match self {
            Probe::Pass => Probe::Fail,
            Probe::Fail => Probe::Pass,
            Probe::Invalid => Probe::Invalid,
        }
    }
}

impl From<Probe> for cichar_trace::TraceVerdict {
    fn from(probe: Probe) -> Self {
        match probe {
            Probe::Pass => cichar_trace::TraceVerdict::Pass,
            Probe::Fail => cichar_trace::TraceVerdict::Fail,
            Probe::Invalid => cichar_trace::TraceVerdict::Invalid,
        }
    }
}

impl fmt::Display for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Probe::Pass => "PASS",
            Probe::Fail => "FAIL",
            Probe::Invalid => "INVALID",
        })
    }
}

/// Whether an ordered-region probe trace is self-consistent: no passing
/// probe sits beyond a failing probe (modulo `tolerance`) on the axis, per
/// the orientation's eq. 3/4 ordering. Invalid probes carry no position
/// information and are ignored.
///
/// An inconsistent trace is the signature of a transient verdict flip —
/// a monotone device cannot pass above a failure (eq. 3) no matter how the
/// search walked the axis.
pub fn trace_is_consistent(trace: &[(f64, Probe)], order: RegionOrder, tolerance: f64) -> bool {
    let mut extreme_pass: Option<f64> = None;
    let mut extreme_fail: Option<f64> = None;
    for &(v, p) in trace {
        match p {
            Probe::Pass => {
                extreme_pass = Some(match order {
                    RegionOrder::PassBelowFail => extreme_pass.map_or(v, |e| e.max(v)),
                    RegionOrder::PassAboveFail => extreme_pass.map_or(v, |e| e.min(v)),
                });
            }
            Probe::Fail => {
                extreme_fail = Some(match order {
                    RegionOrder::PassBelowFail => extreme_fail.map_or(v, |e| e.min(v)),
                    RegionOrder::PassAboveFail => extreme_fail.map_or(v, |e| e.max(v)),
                });
            }
            Probe::Invalid => {}
        }
    }
    match (extreme_pass, extreme_fail) {
        (Some(p), Some(f)) => match order {
            RegionOrder::PassBelowFail => p <= f + tolerance,
            RegionOrder::PassAboveFail => p >= f - tolerance,
        },
        _ => true,
    }
}

/// The result of one trip-point search.
///
/// `measurements` is the cost currency of the whole paper: §4 exists
/// because multiple-trip-point characterization multiplies measurement
/// count, and fig. 3's saving is measured in it.
///
/// # Examples
///
/// ```
/// use cichar_search::{Probe, SearchOutcome};
///
/// let outcome = SearchOutcome {
///     trip_point: Some(110.0),
///     converged: true,
///     trace: vec![(105.0, Probe::Pass), (115.0, Probe::Fail), (110.0, Probe::Pass)],
/// };
/// assert_eq!(outcome.measurements(), 3);
/// assert_eq!(outcome.passes(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The pass-side boundary value, if the search bracketed one.
    pub trip_point: Option<f64>,
    /// Whether the search actually bracketed a pass→fail transition inside
    /// its range. `false` means the device passed (or failed) across the
    /// entire searched span — §4's "easy to underestimate the range" case.
    pub converged: bool,
    /// Every probe in order: `(parameter value, verdict)`.
    pub trace: Vec<(f64, Probe)>,
}

impl SearchOutcome {
    /// A search that found nothing because the whole range had one state.
    pub fn unconverged(trace: Vec<(f64, Probe)>) -> Self {
        Self {
            trip_point: None,
            converged: false,
            trace,
        }
    }

    /// Number of device measurements consumed.
    pub fn measurements(&self) -> usize {
        self.trace.len()
    }

    /// Number of passing probes.
    pub fn passes(&self) -> usize {
        self.trace.iter().filter(|(_, p)| p.is_pass()).count()
    }

    /// Number of failing probes.
    pub fn fails(&self) -> usize {
        self.trace.iter().filter(|(_, p)| p.is_fail()).count()
    }

    /// Number of probes that returned no verdict ([`Probe::Invalid`]).
    pub fn invalids(&self) -> usize {
        self.trace.iter().filter(|(_, p)| !p.is_valid()).count()
    }

    /// `true` when at least one probe in the trace returned no verdict.
    pub fn has_invalid(&self) -> bool {
        self.trace.iter().any(|(_, p)| !p.is_valid())
    }

    /// Whether the trace respects the pass/fail ordering of `order` within
    /// `tolerance` — see [`trace_is_consistent`].
    pub fn is_consistent(&self, order: RegionOrder, tolerance: f64) -> bool {
        trace_is_consistent(&self.trace, order, tolerance)
    }

    /// The last probed value and verdict, if any probe was made.
    pub fn last_probe(&self) -> Option<(f64, Probe)> {
        self.trace.last().copied()
    }
}

impl fmt::Display for SearchOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.converged, self.trip_point) {
            (true, Some(tp)) => write!(
                f,
                "trip point {tp:.4} in {} measurements",
                self.measurements()
            ),
            _ => write!(f, "no trip point ({} measurements)", self.measurements()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> SearchOutcome {
        SearchOutcome {
            trip_point: Some(1.5),
            converged: true,
            trace: vec![(1.0, Probe::Pass), (2.0, Probe::Fail), (1.5, Probe::Pass)],
        }
    }

    #[test]
    fn counts_partition_trace() {
        let o = demo();
        assert_eq!(o.passes() + o.fails(), o.measurements());
        assert_eq!(o.passes(), 2);
        assert_eq!(o.fails(), 1);
    }

    #[test]
    fn unconverged_has_no_trip() {
        let o = SearchOutcome::unconverged(vec![(1.0, Probe::Pass)]);
        assert!(!o.converged);
        assert_eq!(o.trip_point, None);
        assert_eq!(o.measurements(), 1);
    }

    #[test]
    fn last_probe_returns_final_entry() {
        assert_eq!(demo().last_probe(), Some((1.5, Probe::Pass)));
        assert_eq!(SearchOutcome::unconverged(vec![]).last_probe(), None);
    }

    #[test]
    fn display_converged_vs_not() {
        assert!(demo().to_string().contains("trip point 1.5"));
        assert!(SearchOutcome::unconverged(vec![])
            .to_string()
            .contains("no trip point"));
    }

    #[test]
    fn probe_display_and_predicate() {
        assert!(Probe::Pass.is_pass());
        assert!(!Probe::Fail.is_pass());
        assert_eq!(Probe::Pass.to_string(), "PASS");
        assert_eq!(Probe::Fail.to_string(), "FAIL");
        assert_eq!(Probe::Invalid.to_string(), "INVALID");
        assert!(Probe::Pass.is_valid() && Probe::Fail.is_valid());
        assert!(!Probe::Invalid.is_valid());
        assert_eq!(Probe::Pass.flipped(), Probe::Fail);
        assert_eq!(Probe::Fail.flipped(), Probe::Pass);
        assert_eq!(Probe::Invalid.flipped(), Probe::Invalid);
    }

    #[test]
    fn invalid_probes_are_counted_separately() {
        let o = SearchOutcome::unconverged(vec![
            (1.0, Probe::Pass),
            (2.0, Probe::Invalid),
            (3.0, Probe::Fail),
        ]);
        assert_eq!(o.passes(), 1);
        assert_eq!(o.fails(), 1);
        assert_eq!(o.invalids(), 1);
        assert!(o.has_invalid());
        assert_eq!(o.measurements(), 3);
    }

    #[test]
    fn consistency_detects_pass_beyond_fail() {
        use crate::traits::RegionOrder;
        // eq. 3 ordering: pass below fail. A pass at 120 above a fail at
        // 110 is physically impossible for a monotone device.
        let bad = vec![(110.0, Probe::Fail), (120.0, Probe::Pass)];
        assert!(!trace_is_consistent(&bad, RegionOrder::PassBelowFail, 0.0));
        // The same trace is fine under the mirrored eq. 4 ordering.
        assert!(trace_is_consistent(&bad, RegionOrder::PassAboveFail, 0.0));
        let good = vec![(100.0, Probe::Pass), (110.0, Probe::Fail)];
        assert!(trace_is_consistent(&good, RegionOrder::PassBelowFail, 0.0));
        // Tolerance forgives boundary jitter within one step.
        let close = vec![(110.0, Probe::Fail), (110.4, Probe::Pass)];
        assert!(trace_is_consistent(&close, RegionOrder::PassBelowFail, 0.5));
        assert!(!trace_is_consistent(&close, RegionOrder::PassBelowFail, 0.1));
        // Invalid probes carry no ordering information.
        let with_invalid = vec![(130.0, Probe::Invalid), (100.0, Probe::Pass)];
        assert!(trace_is_consistent(
            &with_invalid,
            RegionOrder::PassBelowFail,
            0.0
        ));
    }
}
