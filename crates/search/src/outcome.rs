//! Search results: trip point, probe trace and measurement cost.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single pass/fail verdict from the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Probe {
    /// The device met its expected behaviour at the probed value.
    Pass,
    /// The device failed at the probed value.
    Fail,
}

impl Probe {
    /// `true` for [`Probe::Pass`].
    pub fn is_pass(self) -> bool {
        matches!(self, Probe::Pass)
    }
}

impl fmt::Display for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Probe::Pass => "PASS",
            Probe::Fail => "FAIL",
        })
    }
}

/// The result of one trip-point search.
///
/// `measurements` is the cost currency of the whole paper: §4 exists
/// because multiple-trip-point characterization multiplies measurement
/// count, and fig. 3's saving is measured in it.
///
/// # Examples
///
/// ```
/// use cichar_search::{Probe, SearchOutcome};
///
/// let outcome = SearchOutcome {
///     trip_point: Some(110.0),
///     converged: true,
///     trace: vec![(105.0, Probe::Pass), (115.0, Probe::Fail), (110.0, Probe::Pass)],
/// };
/// assert_eq!(outcome.measurements(), 3);
/// assert_eq!(outcome.passes(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The pass-side boundary value, if the search bracketed one.
    pub trip_point: Option<f64>,
    /// Whether the search actually bracketed a pass→fail transition inside
    /// its range. `false` means the device passed (or failed) across the
    /// entire searched span — §4's "easy to underestimate the range" case.
    pub converged: bool,
    /// Every probe in order: `(parameter value, verdict)`.
    pub trace: Vec<(f64, Probe)>,
}

impl SearchOutcome {
    /// A search that found nothing because the whole range had one state.
    pub fn unconverged(trace: Vec<(f64, Probe)>) -> Self {
        Self {
            trip_point: None,
            converged: false,
            trace,
        }
    }

    /// Number of device measurements consumed.
    pub fn measurements(&self) -> usize {
        self.trace.len()
    }

    /// Number of passing probes.
    pub fn passes(&self) -> usize {
        self.trace.iter().filter(|(_, p)| p.is_pass()).count()
    }

    /// Number of failing probes.
    pub fn fails(&self) -> usize {
        self.trace.len() - self.passes()
    }

    /// The last probed value and verdict, if any probe was made.
    pub fn last_probe(&self) -> Option<(f64, Probe)> {
        self.trace.last().copied()
    }
}

impl fmt::Display for SearchOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.converged, self.trip_point) {
            (true, Some(tp)) => write!(
                f,
                "trip point {tp:.4} in {} measurements",
                self.measurements()
            ),
            _ => write!(f, "no trip point ({} measurements)", self.measurements()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> SearchOutcome {
        SearchOutcome {
            trip_point: Some(1.5),
            converged: true,
            trace: vec![(1.0, Probe::Pass), (2.0, Probe::Fail), (1.5, Probe::Pass)],
        }
    }

    #[test]
    fn counts_partition_trace() {
        let o = demo();
        assert_eq!(o.passes() + o.fails(), o.measurements());
        assert_eq!(o.passes(), 2);
        assert_eq!(o.fails(), 1);
    }

    #[test]
    fn unconverged_has_no_trip() {
        let o = SearchOutcome::unconverged(vec![(1.0, Probe::Pass)]);
        assert!(!o.converged);
        assert_eq!(o.trip_point, None);
        assert_eq!(o.measurements(), 1);
    }

    #[test]
    fn last_probe_returns_final_entry() {
        assert_eq!(demo().last_probe(), Some((1.5, Probe::Pass)));
        assert_eq!(SearchOutcome::unconverged(vec![]).last_probe(), None);
    }

    #[test]
    fn display_converged_vs_not() {
        assert!(demo().to_string().contains("trip point 1.5"));
        assert!(SearchOutcome::unconverged(vec![])
            .to_string()
            .contains("no trip point"));
    }

    #[test]
    fn probe_display_and_predicate() {
        assert!(Probe::Pass.is_pass());
        assert!(!Probe::Fail.is_pass());
        assert_eq!(Probe::Pass.to_string(), "PASS");
        assert_eq!(Probe::Fail.to_string(), "FAIL");
    }
}
