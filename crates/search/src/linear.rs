//! Linear trip-point search.

use crate::outcome::{Probe, SearchOutcome};
use crate::traits::{PassFailOracle, RegionOrder};
use cichar_trace::{SpanTrace, TraceEvent};
use cichar_units::ParamRange;

/// The §1 linear search: start at one boundary and step through a
/// specified resolution until the state changes or the end boundary is
/// reached.
///
/// The paper notes its disadvantages — a small resolution makes it time
/// consuming, and drift during the long sweep corrupts the reading — which
/// is why it serves here mainly as the measurement-cost upper bound the
/// smarter searches are compared against.
///
/// The sweep starts inside the pass region (range start for
/// [`RegionOrder::PassBelowFail`], range end otherwise) and walks toward
/// the fail region.
///
/// # Examples
///
/// ```
/// use cichar_search::{FnOracle, LinearSearch, RegionOrder};
/// use cichar_units::ParamRange;
///
/// let mut oracle = FnOracle::new(|v| v <= 110.0);
/// let search = LinearSearch::new(ParamRange::new(80.0, 130.0)?, 1.0);
/// let outcome = search.run(RegionOrder::PassBelowFail, &mut oracle);
/// assert_eq!(outcome.trip_point, Some(110.0));
/// // Costly: one measurement per step from 80 to the first failure at 111.
/// assert_eq!(outcome.measurements(), 32);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSearch {
    range: ParamRange,
    step: f64,
}

impl LinearSearch {
    /// Creates a linear search over `range` with the given step size.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive finite.
    pub fn new(range: ParamRange, step: f64) -> Self {
        assert!(step.is_finite() && step > 0.0, "invalid step {step}");
        Self { range, step }
    }

    /// The searched range.
    pub fn range(&self) -> ParamRange {
        self.range
    }

    /// The step size (the search's resolution).
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Runs the sweep.
    ///
    /// Returns the last passing value as the trip point once the first
    /// failure appears. If the device never changes state across the range
    /// the outcome is unconverged.
    pub fn run<O: PassFailOracle>(&self, order: RegionOrder, oracle: O) -> SearchOutcome {
        self.run_traced(order, oracle, &SpanTrace::disabled())
    }

    /// [`run`](Self::run), emitting `SearchStarted` and `SearchFinished`
    /// into `span`.
    pub fn run_traced<O: PassFailOracle>(
        &self,
        order: RegionOrder,
        oracle: O,
        span: &SpanTrace,
    ) -> SearchOutcome {
        span.emit_with(|| TraceEvent::SearchStarted {
            strategy: String::from("linear"),
            order: String::from(order.equation_tag()),
            window: [self.range.start(), self.range.end()],
            reference: None,
            sf: None,
        });
        let outcome = self.sweep(order, oracle);
        span.emit_with(|| TraceEvent::SearchFinished {
            strategy: String::from("linear"),
            trip_point: outcome.trip_point,
            converged: outcome.converged,
            probes: outcome.measurements() as u64,
        });
        outcome
    }

    /// The sweep shared by the plain and traced entry points.
    fn sweep<O: PassFailOracle>(&self, order: RegionOrder, mut oracle: O) -> SearchOutcome {
        let dir = order.toward_fail();
        let start = match order {
            RegionOrder::PassBelowFail => self.range.start(),
            RegionOrder::PassAboveFail => self.range.end(),
        };
        let mut trace = Vec::new();
        let mut last_pass: Option<f64> = None;
        let steps = self
            .range
            .steps_at(self.step)
            .expect("step validated in constructor");
        for i in 0..=steps {
            let value = self.range.clamp(start + dir * self.step * i as f64);
            let verdict = oracle.probe(value);
            trace.push((value, verdict));
            match verdict {
                Probe::Pass => last_pass = Some(value),
                Probe::Fail => {
                    return match last_pass {
                        Some(tp) => SearchOutcome {
                            trip_point: Some(tp),
                            converged: true,
                            trace,
                        },
                        // Failing from the very first probe: the pass
                        // region lies outside the range.
                        None => SearchOutcome::unconverged(trace),
                    };
                }
                // Lost verdict mid-sweep: the state change may have hidden
                // inside the gap, so the sweep cannot be trusted.
                Probe::Invalid => return SearchOutcome::unconverged(trace),
            }
        }
        SearchOutcome::unconverged(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::FnOracle;
    use proptest::prelude::*;

    fn range() -> ParamRange {
        ParamRange::new(80.0, 130.0).expect("valid")
    }

    #[test]
    fn finds_trip_from_below() {
        let mut oracle = FnOracle::new(|v| v <= 110.0);
        let o = LinearSearch::new(range(), 1.0).run(RegionOrder::PassBelowFail, &mut oracle);
        assert_eq!(o.trip_point, Some(110.0));
        assert!(o.converged);
    }

    #[test]
    fn finds_trip_from_above() {
        // Vdd-style: passes down to 1.45 V.
        let r = ParamRange::new(1.2, 2.1).expect("valid");
        let mut oracle = FnOracle::new(|v| v >= 1.45);
        let o = LinearSearch::new(r, 0.05).run(RegionOrder::PassAboveFail, &mut oracle);
        let tp = o.trip_point.expect("converged");
        assert!((tp - 1.45).abs() < 0.05 + 1e-9, "tp = {tp}");
    }

    #[test]
    fn all_pass_range_is_unconverged() {
        let mut oracle = FnOracle::new(|_| true);
        let o = LinearSearch::new(range(), 5.0).run(RegionOrder::PassBelowFail, &mut oracle);
        assert!(!o.converged);
        assert_eq!(o.trip_point, None);
        assert_eq!(o.fails(), 0);
    }

    #[test]
    fn all_fail_range_is_unconverged() {
        let mut oracle = FnOracle::new(|_| false);
        let o = LinearSearch::new(range(), 5.0).run(RegionOrder::PassBelowFail, &mut oracle);
        assert!(!o.converged);
        assert_eq!(o.measurements(), 1, "stops at first failure");
    }

    #[test]
    fn cost_is_linear_in_resolution() {
        let cheap = LinearSearch::new(range(), 2.0)
            .run(RegionOrder::PassBelowFail, FnOracle::new(|v| v <= 110.0));
        let costly = LinearSearch::new(range(), 0.25)
            .run(RegionOrder::PassBelowFail, FnOracle::new(|v| v <= 110.0));
        assert!(costly.measurements() > 4 * cheap.measurements());
    }

    #[test]
    #[should_panic(expected = "invalid step")]
    fn rejects_nonpositive_step() {
        let _ = LinearSearch::new(range(), 0.0);
    }

    proptest! {
        #[test]
        fn trip_is_within_step_of_true_boundary(
            boundary in 81.0f64..129.0,
            step in 0.1f64..2.0,
        ) {
            let mut oracle = FnOracle::new(|v| v <= boundary);
            let o = LinearSearch::new(range(), step).run(RegionOrder::PassBelowFail, &mut oracle);
            let tp = o.trip_point.expect("boundary inside range");
            prop_assert!(tp <= boundary + 1e-9);
            prop_assert!(boundary - tp <= step + 1e-9);
        }
    }
}
