//! Binary (divide-by-two) trip-point search.

use crate::outcome::{Probe, SearchOutcome};
use crate::traits::{PassFailOracle, RegionOrder};
use cichar_trace::{SpanTrace, TraceEvent};
use cichar_units::ParamRange;

/// The §1 binary search: "the delta between the last known true and last
/// known false condition are halved until the trip point is found".
///
/// Both range endpoints are probed first (the algorithm "requires that
/// starting points be chosen on both sides of the good to bad crossover",
/// §4); if they share a state the search reports unconverged instead of
/// guessing.
///
/// # Examples
///
/// ```
/// use cichar_search::{BinarySearch, FnOracle, RegionOrder};
/// use cichar_units::ParamRange;
///
/// let mut oracle = FnOracle::new(|v| v <= 110.0);
/// let search = BinarySearch::new(ParamRange::new(80.0, 130.0)?, 0.1);
/// let outcome = search.run(RegionOrder::PassBelowFail, &mut oracle);
/// let trip = outcome.trip_point.expect("bracketed");
/// assert!((trip - 110.0).abs() <= 0.1);
/// // log2(50 / 0.1) ≈ 9 halvings plus the two endpoint checks.
/// assert!(outcome.measurements() <= 12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BinarySearch {
    range: ParamRange,
    resolution: f64,
}

impl BinarySearch {
    /// Creates a binary search over `range`, halving until the bracket is
    /// narrower than `resolution`.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not positive finite.
    pub fn new(range: ParamRange, resolution: f64) -> Self {
        assert!(
            resolution.is_finite() && resolution > 0.0,
            "invalid resolution {resolution}"
        );
        Self { range, resolution }
    }

    /// The searched range.
    pub fn range(&self) -> ParamRange {
        self.range
    }

    /// The convergence resolution.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// Runs the search. The trip point is reported on the pass side of the
    /// final bracket (fig. 1: "the trip point is a device pass").
    pub fn run<O: PassFailOracle>(&self, order: RegionOrder, oracle: O) -> SearchOutcome {
        self.run_traced(order, oracle, &SpanTrace::disabled())
    }

    /// [`run`](Self::run), emitting `SearchStarted`, the endpoint
    /// `Bracketed` pair and `SearchFinished` into `span`.
    pub fn run_traced<O: PassFailOracle>(
        &self,
        order: RegionOrder,
        oracle: O,
        span: &SpanTrace,
    ) -> SearchOutcome {
        span.emit_with(|| TraceEvent::SearchStarted {
            strategy: String::from("binary"),
            order: String::from(order.equation_tag()),
            window: [self.range.start(), self.range.end()],
            reference: None,
            sf: None,
        });
        let outcome = self.halve(order, oracle, span);
        span.emit_with(|| TraceEvent::SearchFinished {
            strategy: String::from("binary"),
            trip_point: outcome.trip_point,
            converged: outcome.converged,
            probes: outcome.measurements() as u64,
        });
        outcome
    }

    /// The halving loop shared by the plain and traced entry points.
    fn halve<O: PassFailOracle>(
        &self,
        order: RegionOrder,
        mut oracle: O,
        span: &SpanTrace,
    ) -> SearchOutcome {
        let mut trace = Vec::new();
        let (pass_end, fail_end) = match order {
            RegionOrder::PassBelowFail => (self.range.start(), self.range.end()),
            RegionOrder::PassAboveFail => (self.range.end(), self.range.start()),
        };
        let v_pass = oracle.probe(pass_end);
        trace.push((pass_end, v_pass));
        let v_fail = oracle.probe(fail_end);
        trace.push((fail_end, v_fail));
        if v_pass != Probe::Pass || v_fail != Probe::Fail {
            // No crossover inside the range.
            return SearchOutcome::unconverged(trace);
        }
        span.emit(TraceEvent::Bracketed {
            pass_value: pass_end,
            fail_value: fail_end,
        });
        let (mut lo_pass, mut hi_fail) = (pass_end, fail_end);
        while (hi_fail - lo_pass).abs() > self.resolution {
            let mid = lo_pass + (hi_fail - lo_pass) / 2.0;
            let verdict = oracle.probe(mid);
            trace.push((mid, verdict));
            match verdict {
                Probe::Pass => lo_pass = mid,
                Probe::Fail => hi_fail = mid,
                // A verdictless probe mid-bracket: abort rather than guess.
                Probe::Invalid => return SearchOutcome::unconverged(trace),
            }
        }
        SearchOutcome {
            trip_point: Some(lo_pass),
            converged: true,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::FnOracle;
    use proptest::prelude::*;

    fn range() -> ParamRange {
        ParamRange::new(80.0, 130.0).expect("valid")
    }

    #[test]
    fn converges_to_resolution() {
        let mut oracle = FnOracle::new(|v| v <= 107.3);
        let o = BinarySearch::new(range(), 0.05).run(RegionOrder::PassBelowFail, &mut oracle);
        let tp = o.trip_point.expect("bracketed");
        assert!((tp - 107.3).abs() <= 0.05, "tp = {tp}");
        assert!(tp <= 107.3, "trip point reported on the pass side");
    }

    #[test]
    fn pass_above_fail_orientation() {
        let r = ParamRange::new(1.2, 2.1).expect("valid");
        let mut oracle = FnOracle::new(|v| v >= 1.47);
        let o = BinarySearch::new(r, 0.005).run(RegionOrder::PassAboveFail, &mut oracle);
        let tp = o.trip_point.expect("bracketed");
        assert!((tp - 1.47).abs() <= 0.005, "tp = {tp}");
        assert!(tp >= 1.47, "trip point on the pass side");
    }

    #[test]
    fn measurement_cost_is_logarithmic() {
        let mut oracle = FnOracle::new(|v| v <= 110.0);
        let o = BinarySearch::new(range(), 0.1).run(RegionOrder::PassBelowFail, &mut oracle);
        // ceil(log2(50/0.1)) = 9 halvings + 2 endpoint probes.
        assert!(o.measurements() <= 11, "used {}", o.measurements());
        assert!(o.converged);
    }

    #[test]
    fn whole_range_passing_is_unconverged() {
        let o = BinarySearch::new(range(), 0.1)
            .run(RegionOrder::PassBelowFail, FnOracle::new(|_| true));
        assert!(!o.converged);
        assert_eq!(o.measurements(), 2, "only the endpoint checks");
    }

    #[test]
    fn whole_range_failing_is_unconverged() {
        let o = BinarySearch::new(range(), 0.1)
            .run(RegionOrder::PassBelowFail, FnOracle::new(|_| false));
        assert!(!o.converged);
    }

    #[test]
    #[should_panic(expected = "invalid resolution")]
    fn rejects_nan_resolution() {
        let _ = BinarySearch::new(range(), f64::NAN);
    }

    proptest! {
        #[test]
        fn bracket_always_contains_boundary(
            boundary in 81.0f64..129.0,
            resolution in 0.01f64..1.0,
        ) {
            let mut oracle = FnOracle::new(|v| v <= boundary);
            let o = BinarySearch::new(range(), resolution)
                .run(RegionOrder::PassBelowFail, &mut oracle);
            let tp = o.trip_point.expect("boundary inside range");
            prop_assert!(tp <= boundary + 1e-9);
            prop_assert!(boundary - tp <= resolution + 1e-9);
        }

        #[test]
        fn cost_beats_linear_for_fine_resolution(
            boundary in 85.0f64..125.0,
        ) {
            let resolution = 0.05;
            let binary = BinarySearch::new(range(), resolution)
                .run(RegionOrder::PassBelowFail, FnOracle::new(|v| v <= boundary));
            let linear = crate::linear::LinearSearch::new(range(), resolution)
                .run(RegionOrder::PassBelowFail, FnOracle::new(|v| v <= boundary));
            prop_assert!(binary.measurements() < linear.measurements());
        }
    }
}
