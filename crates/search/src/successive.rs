//! Drift-tolerant successive approximation.

use crate::outcome::{Probe, SearchOutcome};
use crate::traits::{BatchOracle, RegionOrder};
use cichar_trace::{SpanTrace, TraceEvent};
use cichar_units::ParamRange;

/// The §1 successive-approximation search, "recommended for device
/// performance characterization at most of the ATE today".
///
/// Like a binary search it halves a pass/fail bracket, but it additionally
/// "can sense a drifting specification parameter and make a judgment as to
/// the direction and span of the search": after the bracket converges the
/// pass side is *re-verified*. If the device meanwhile drifted (§4 names
/// device heating as the typical cause) the verification fails, and the
/// search re-opens the bracket toward the pass region and converges again,
/// up to [`Self::max_drift_retries`] times.
///
/// This is also the algorithm eq. (2) uses to establish the *reference trip
/// point* for the first test of a multiple-trip-point run.
///
/// # Examples
///
/// ```
/// use cichar_search::{FnOracle, RegionOrder, SuccessiveApproximation};
/// use cichar_units::ParamRange;
///
/// let mut oracle = FnOracle::new(|v| v <= 110.0);
/// let search = SuccessiveApproximation::new(ParamRange::new(80.0, 130.0)?, 0.1);
/// let outcome = search.run(RegionOrder::PassBelowFail, &mut oracle);
/// assert!((outcome.trip_point.expect("bracketed") - 110.0).abs() <= 0.1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SuccessiveApproximation {
    range: ParamRange,
    resolution: f64,
    max_drift_retries: usize,
    speculative: bool,
}

impl SuccessiveApproximation {
    /// Creates a search over `range` converging to `resolution`, allowing
    /// two drift-recovery rounds.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not positive finite.
    pub fn new(range: ParamRange, resolution: f64) -> Self {
        Self::with_retries(range, resolution, 2)
    }

    /// Creates a search with an explicit drift-retry budget.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not positive finite.
    pub fn with_retries(range: ParamRange, resolution: f64, max_drift_retries: usize) -> Self {
        assert!(
            resolution.is_finite() && resolution > 0.0,
            "invalid resolution {resolution}"
        );
        Self {
            range,
            resolution,
            max_drift_retries,
            speculative: false,
        }
    }

    /// Enables speculative bisection: while halving, both children of the
    /// *next* bisection level are pre-issued alongside the current midpoint
    /// as one [`BatchOracle`] batch. Whichever child the midpoint's verdict
    /// selects resolves the next level without a fresh round trip; the
    /// other half is discarded. Both children are marked speculative so a
    /// measurement ledger can keep eq. 1 probe accounting honest.
    ///
    /// Off by default: speculation trades extra (ledgered) probes for
    /// fewer oracle round trips, which only pays off when a batch is
    /// cheaper than two sequential calls.
    pub fn with_speculation(mut self) -> Self {
        self.speculative = true;
        self
    }

    /// Whether speculative bisection is enabled.
    pub fn speculative(&self) -> bool {
        self.speculative
    }

    /// The searched range.
    pub fn range(&self) -> ParamRange {
        self.range
    }

    /// The convergence resolution.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// The drift-recovery budget.
    pub fn max_drift_retries(&self) -> usize {
        self.max_drift_retries
    }

    /// Runs the search.
    pub fn run<O: BatchOracle>(&self, order: RegionOrder, oracle: O) -> SearchOutcome {
        self.run_traced(order, oracle, &SpanTrace::disabled())
    }

    /// [`run`](Self::run), emitting `SearchStarted`, the initial
    /// `Bracketed` pair and `SearchFinished` into `span`.
    pub fn run_traced<O: BatchOracle>(
        &self,
        order: RegionOrder,
        oracle: O,
        span: &SpanTrace,
    ) -> SearchOutcome {
        span.emit_with(|| TraceEvent::SearchStarted {
            strategy: String::from("successive_approximation"),
            order: String::from(order.equation_tag()),
            window: [self.range.start(), self.range.end()],
            reference: None,
            sf: None,
        });
        let outcome = self.approximate(order, oracle, span);
        span.emit_with(|| TraceEvent::SearchFinished {
            strategy: String::from("successive_approximation"),
            trip_point: outcome.trip_point,
            converged: outcome.converged,
            probes: outcome.measurements() as u64,
        });
        outcome
    }

    /// The search body shared by the plain and traced entry points.
    fn approximate<O: BatchOracle>(
        &self,
        order: RegionOrder,
        mut oracle: O,
        span: &SpanTrace,
    ) -> SearchOutcome {
        let mut trace = Vec::new();
        let (pass_end, fail_end) = match order {
            RegionOrder::PassBelowFail => (self.range.start(), self.range.end()),
            RegionOrder::PassAboveFail => (self.range.end(), self.range.start()),
        };
        let probe = |oracle: &mut O, trace: &mut Vec<(f64, Probe)>, v: f64| {
            let verdict = oracle.probe(v);
            trace.push((v, verdict));
            verdict
        };

        // Bracket-finding: boundary + halfway point, continuing to the
        // other end when both agree (the paper's phrasing of the scan).
        if probe(&mut oracle, &mut trace, pass_end) != Probe::Pass {
            return SearchOutcome::unconverged(trace);
        }
        let mid = pass_end + (fail_end - pass_end) / 2.0;
        let (mut lo_pass, mut hi_fail) = match probe(&mut oracle, &mut trace, mid) {
            Probe::Fail => (pass_end, mid),
            Probe::Pass => {
                // Same result as the boundary: continue to the other end.
                match probe(&mut oracle, &mut trace, fail_end) {
                    Probe::Fail => (mid, fail_end),
                    Probe::Pass | Probe::Invalid => return SearchOutcome::unconverged(trace),
                }
            }
            Probe::Invalid => return SearchOutcome::unconverged(trace),
        };
        span.emit(TraceEvent::Bracketed {
            pass_value: lo_pass,
            fail_value: hi_fail,
        });

        let mut retries = self.max_drift_retries;
        loop {
            // Halve until the bracket closes. With speculation on, a level
            // may pre-issue both children of the next level in the same
            // batch as its midpoint; the verdict then selects one child to
            // resolve that next level (`pending`) and discards the other.
            let mut pending: Option<(f64, Probe)> = None;
            while (hi_fail - lo_pass).abs() > self.resolution {
                let mid = lo_pass + (hi_fail - lo_pass) / 2.0;
                let next_open = (hi_fail - lo_pass).abs() / 2.0 > self.resolution;
                let (verdict, children) = match pending.take() {
                    Some((value, verdict)) if value == mid => (verdict, None),
                    _ if self.speculative && next_open => {
                        // Children mirror the next iteration's midpoint
                        // expression exactly for either verdict, so the
                        // selected child resolves it bit-for-bit.
                        let left = lo_pass + (mid - lo_pass) / 2.0;
                        let right = mid + (hi_fail - mid) / 2.0;
                        let verdicts = oracle.probe_batch_speculative(&[mid, left, right], 1);
                        trace.push((mid, verdicts[0]));
                        trace.push((left, verdicts[1]));
                        trace.push((right, verdicts[2]));
                        (verdicts[0], Some(((left, verdicts[1]), (right, verdicts[2]))))
                    }
                    _ => (probe(&mut oracle, &mut trace, mid), None),
                };
                match verdict {
                    Probe::Pass => {
                        lo_pass = mid;
                        pending = children.map(|(_, right)| right);
                    }
                    Probe::Fail => {
                        hi_fail = mid;
                        pending = children.map(|(left, _)| left);
                    }
                    Probe::Invalid => return SearchOutcome::unconverged(trace),
                }
            }
            // Drift check: the pass side must still pass. A missing verdict
            // is not drift — it is a dead channel, so give up.
            let reverify = probe(&mut oracle, &mut trace, lo_pass);
            if reverify == Probe::Invalid {
                return SearchOutcome::unconverged(trace);
            }
            if reverify == Probe::Pass {
                return SearchOutcome {
                    trip_point: Some(lo_pass),
                    converged: true,
                    trace,
                };
            }
            if retries == 0 {
                return SearchOutcome::unconverged(trace);
            }
            retries -= 1;
            // The spec drifted toward the pass region: re-open the bracket
            // by doubling spans back toward the pass end until the device
            // passes again.
            hi_fail = lo_pass;
            let dir = (pass_end - fail_end).signum();
            let mut span = self.resolution.max((hi_fail - pass_end).abs() / 8.0);
            loop {
                let candidate = self.range.clamp(hi_fail + dir * span);
                let verdict = probe(&mut oracle, &mut trace, candidate);
                if verdict == Probe::Invalid {
                    return SearchOutcome::unconverged(trace);
                }
                if verdict == Probe::Pass {
                    lo_pass = candidate;
                    break;
                }
                if (candidate - pass_end).abs() < 1e-12 {
                    // Walked all the way back without a pass.
                    return SearchOutcome::unconverged(trace);
                }
                span *= 2.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::FnOracle;
    use proptest::prelude::*;
    use std::cell::Cell;

    fn range() -> ParamRange {
        ParamRange::new(80.0, 130.0).expect("valid")
    }

    #[test]
    fn matches_binary_on_stable_device() {
        let mut oracle = FnOracle::new(|v| v <= 112.4);
        let o = SuccessiveApproximation::new(range(), 0.05)
            .run(RegionOrder::PassBelowFail, &mut oracle);
        let tp = o.trip_point.expect("bracketed");
        assert!((tp - 112.4).abs() <= 0.05, "tp = {tp}");
    }

    #[test]
    fn handles_boundary_in_first_half() {
        let mut oracle = FnOracle::new(|v| v <= 90.0);
        let o = SuccessiveApproximation::new(range(), 0.1)
            .run(RegionOrder::PassBelowFail, &mut oracle);
        let tp = o.trip_point.expect("bracketed");
        assert!((tp - 90.0).abs() <= 0.1, "tp = {tp}");
    }

    #[test]
    fn recovers_from_downward_drift() {
        // The boundary drops by 3 MHz after the 6th measurement — as if
        // the device heated up mid-search.
        let probes = Cell::new(0usize);
        let mut oracle = FnOracle::new(|v| {
            probes.set(probes.get() + 1);
            let boundary = if probes.get() <= 6 { 110.0 } else { 107.0 };
            v <= boundary
        });
        let o = SuccessiveApproximation::new(range(), 0.05)
            .run(RegionOrder::PassBelowFail, &mut oracle);
        let tp = o.trip_point.expect("recovered from drift");
        assert!((tp - 107.0).abs() <= 0.5, "tp = {tp} should track drifted spec");
    }

    #[test]
    fn gives_up_after_retry_budget() {
        // Pathological device: every re-verification fails.
        let probes = Cell::new(0usize);
        let mut oracle = FnOracle::new(|v| {
            probes.set(probes.get() + 1);
            // Boundary collapses by 10 after every few probes; it outruns
            // the search forever.
            let boundary = 110.0 - (probes.get() / 3) as f64 * 10.0;
            v <= boundary
        });
        let o = SuccessiveApproximation::with_retries(range(), 0.05, 1)
            .run(RegionOrder::PassBelowFail, &mut oracle);
        assert!(!o.converged);
    }

    #[test]
    fn pass_above_fail_orientation() {
        let r = ParamRange::new(1.2, 2.1).expect("valid");
        let mut oracle = FnOracle::new(|v| v >= 1.52);
        let o = SuccessiveApproximation::new(r, 0.01).run(RegionOrder::PassAboveFail, &mut oracle);
        let tp = o.trip_point.expect("bracketed");
        assert!((tp - 1.52).abs() <= 0.01, "tp = {tp}");
        assert!(tp >= 1.52 - 1e-9);
    }

    #[test]
    fn unconverged_when_range_misses_boundary() {
        let o = SuccessiveApproximation::new(range(), 0.1)
            .run(RegionOrder::PassBelowFail, FnOracle::new(|_| true));
        assert!(!o.converged);
        let o = SuccessiveApproximation::new(range(), 0.1)
            .run(RegionOrder::PassBelowFail, FnOracle::new(|_| false));
        assert!(!o.converged);
        assert_eq!(o.measurements(), 1, "first probe already failing");
    }

    #[test]
    fn speculation_is_off_by_default() {
        let search = SuccessiveApproximation::new(range(), 0.05);
        assert!(!search.speculative());
        assert!(search.clone().with_speculation().speculative());
    }

    #[test]
    fn speculative_matches_plain_trip_point() {
        let mut plain_oracle = FnOracle::new(|v| v <= 112.4);
        let plain = SuccessiveApproximation::new(range(), 0.05)
            .run(RegionOrder::PassBelowFail, &mut plain_oracle);
        let mut spec_oracle = FnOracle::new(|v| v <= 112.4);
        let spec = SuccessiveApproximation::new(range(), 0.05)
            .with_speculation()
            .run(RegionOrder::PassBelowFail, &mut spec_oracle);
        // On a deterministic device the selected children carry the exact
        // verdicts sequential probes would have, so the trip point is
        // bit-identical — speculation only adds discarded measurements.
        assert_eq!(spec.trip_point, plain.trip_point);
        assert!(spec.converged);
        assert!(
            spec_oracle.probes() > plain_oracle.probes(),
            "speculation must cost extra probes ({} vs {})",
            spec_oracle.probes(),
            plain_oracle.probes()
        );
    }

    #[test]
    fn speculative_recovers_from_drift_too() {
        let probes = Cell::new(0usize);
        let mut oracle = FnOracle::new(|v| {
            probes.set(probes.get() + 1);
            let boundary = if probes.get() <= 6 { 110.0 } else { 107.0 };
            v <= boundary
        });
        let o = SuccessiveApproximation::new(range(), 0.05)
            .with_speculation()
            .run(RegionOrder::PassBelowFail, &mut oracle);
        let tp = o.trip_point.expect("recovered from drift");
        assert!((tp - 107.0).abs() <= 0.5, "tp = {tp} should track drifted spec");
    }

    proptest! {
        #[test]
        fn stable_device_converges_within_resolution(
            boundary in 81.0f64..129.0,
            resolution in 0.01f64..0.5,
        ) {
            let mut oracle = FnOracle::new(|v| v <= boundary);
            let o = SuccessiveApproximation::new(range(), resolution)
                .run(RegionOrder::PassBelowFail, &mut oracle);
            let tp = o.trip_point.expect("inside range");
            prop_assert!(tp <= boundary + 1e-9);
            prop_assert!(boundary - tp <= resolution + 1e-9);
        }

        #[test]
        fn speculation_never_changes_a_stable_trip_point(
            boundary in 81.0f64..129.0,
            resolution in 0.01f64..0.5,
        ) {
            let search = SuccessiveApproximation::new(range(), resolution);
            let plain = search.run(RegionOrder::PassBelowFail, FnOracle::new(|v| v <= boundary));
            let spec = search
                .clone()
                .with_speculation()
                .run(RegionOrder::PassBelowFail, FnOracle::new(|v| v <= boundary));
            prop_assert_eq!(spec.trip_point, plain.trip_point);
        }
    }
}
