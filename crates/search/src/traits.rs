//! The oracle abstraction searches probe through.

use crate::outcome::Probe;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which side of the trip point the pass region lies on.
///
/// §4 distinguishes the two orientations with eqs. (3) and (4):
///
/// * [`RegionOrder::PassBelowFail`] — eq. (3): "the upper boundary value P
///   of the pass region is smaller than the lower boundary F of the fail
///   region", e.g. clock frequency (works up to `f_max`, fails above) or a
///   DQ strobe delay (data valid up to `t_dq`, stale after).
/// * [`RegionOrder::PassAboveFail`] — eq. (4): the pass region sits above
///   the fail region, e.g. supply voltage (works down to `vdd_min`, fails
///   below).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionOrder {
    /// Pass region at low parameter values, fail region above (eq. 3).
    PassBelowFail,
    /// Pass region at high parameter values, fail region below (eq. 4).
    PassAboveFail,
}

impl RegionOrder {
    /// Signed direction from the pass region toward the fail region:
    /// `+1.0` when failure lies at higher values, `-1.0` when lower.
    pub fn toward_fail(self) -> f64 {
        match self {
            RegionOrder::PassBelowFail => 1.0,
            RegionOrder::PassAboveFail => -1.0,
        }
    }

    /// The opposite orientation.
    pub fn flipped(self) -> Self {
        match self {
            RegionOrder::PassBelowFail => RegionOrder::PassAboveFail,
            RegionOrder::PassAboveFail => RegionOrder::PassBelowFail,
        }
    }

    /// The short tag trace events carry: `eq3` for pass-below-fail,
    /// `eq4` for pass-above-fail — the paper's two step orientations.
    pub fn equation_tag(self) -> &'static str {
        match self {
            RegionOrder::PassBelowFail => "eq3",
            RegionOrder::PassAboveFail => "eq4",
        }
    }
}

impl fmt::Display for RegionOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RegionOrder::PassBelowFail => "pass<fail (eq.3)",
            RegionOrder::PassAboveFail => "fail<pass (eq.4)",
        })
    }
}

/// Anything that can answer "does the device pass at this parameter value?".
///
/// Implemented by the ATE simulator's measurement channels; tests use
/// [`FnOracle`]. Probing is `&mut self` because real measurements have
/// side effects — they cost test time, heat the device and advance drift.
pub trait PassFailOracle {
    /// Applies the parameter value and reports the device's verdict.
    fn probe(&mut self, value: f64) -> Probe;
}

impl<T: PassFailOracle + ?Sized> PassFailOracle for &mut T {
    fn probe(&mut self, value: f64) -> Probe {
        (**self).probe(value)
    }
}

/// An oracle that can resolve many probe values in one round trip.
///
/// Naturally-batched call sites — k-of-n vote strobes, GA fitness broods,
/// speculative bisection children — hand the whole value set to
/// [`BatchOracle::probe_batch`], letting the tester amortize ledger, fault
/// and trace bookkeeping over the batch instead of paying it per probe.
///
/// # Contract
///
/// `probe_batch(values)` must return exactly `values.len()` verdicts, and
/// element `i` must be **bit-identical** to what the `i`-th of
/// `values.len()` sequential [`PassFailOracle::probe`] calls would have
/// returned on the same oracle state — including noise draws, fault
/// injection and cache hits. Batching buys bookkeeping amortization, never
/// different physics. The default implementation is the scalar loop
/// itself, so any oracle satisfies the contract trivially.
pub trait BatchOracle: PassFailOracle {
    /// Resolves every value in order, as one batch.
    fn probe_batch(&mut self, values: &[f64]) -> Vec<Probe> {
        values.iter().map(|&v| self.probe(v)).collect()
    }

    /// [`Self::probe_batch`] with values from index `first_speculative`
    /// onward marked as *speculative*: pre-issued work (e.g. both children
    /// of the next bisection level) that the caller may discard unused.
    ///
    /// Verdicts are identical to [`Self::probe_batch`]; only the
    /// accounting differs — oracles with a measurement ledger mark the
    /// speculative tail so probe-economy numbers can subtract the waste.
    /// The default ignores the marker.
    fn probe_batch_speculative(&mut self, values: &[f64], first_speculative: usize) -> Vec<Probe> {
        let _ = first_speculative;
        self.probe_batch(values)
    }
}

impl<T: BatchOracle + ?Sized> BatchOracle for &mut T {
    fn probe_batch(&mut self, values: &[f64]) -> Vec<Probe> {
        (**self).probe_batch(values)
    }

    fn probe_batch_speculative(&mut self, values: &[f64], first_speculative: usize) -> Vec<Probe> {
        (**self).probe_batch_speculative(values, first_speculative)
    }
}

/// A closure-backed oracle: `true` means pass.
///
/// # Examples
///
/// ```
/// use cichar_search::{FnOracle, PassFailOracle, Probe};
///
/// let mut oracle = FnOracle::new(|v| v >= 1.45);
/// assert_eq!(oracle.probe(1.8), Probe::Pass);
/// assert_eq!(oracle.probe(1.2), Probe::Fail);
/// assert_eq!(oracle.probes(), 2);
/// ```
#[derive(Debug)]
pub struct FnOracle<F> {
    f: F,
    probes: usize,
}

impl<F: FnMut(f64) -> bool> FnOracle<F> {
    /// Wraps a pass predicate.
    pub fn new(f: F) -> Self {
        Self { f, probes: 0 }
    }

    /// How many times the oracle has been probed.
    pub fn probes(&self) -> usize {
        self.probes
    }
}

impl<F: FnMut(f64) -> bool> PassFailOracle for FnOracle<F> {
    fn probe(&mut self, value: f64) -> Probe {
        self.probes += 1;
        if (self.f)(value) {
            Probe::Pass
        } else {
            Probe::Fail
        }
    }
}

impl<F: FnMut(f64) -> bool> BatchOracle for FnOracle<F> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toward_fail_signs() {
        assert_eq!(RegionOrder::PassBelowFail.toward_fail(), 1.0);
        assert_eq!(RegionOrder::PassAboveFail.toward_fail(), -1.0);
    }

    #[test]
    fn flipped_is_involution() {
        for order in [RegionOrder::PassBelowFail, RegionOrder::PassAboveFail] {
            assert_eq!(order.flipped().flipped(), order);
            assert_ne!(order.flipped(), order);
        }
    }

    #[test]
    fn fn_oracle_counts_probes() {
        let mut oracle = FnOracle::new(|v| v < 5.0);
        for i in 0..7 {
            let _ = oracle.probe(f64::from(i));
        }
        assert_eq!(oracle.probes(), 7);
    }

    #[test]
    fn mut_ref_is_an_oracle() {
        fn takes_oracle<O: PassFailOracle>(mut o: O) -> Probe {
            o.probe(0.0)
        }
        let mut oracle = FnOracle::new(|_| true);
        assert_eq!(takes_oracle(&mut oracle), Probe::Pass);
        assert_eq!(oracle.probes(), 1);
    }

    #[test]
    fn default_probe_batch_is_the_scalar_loop() {
        let values = [1.0, 7.0, 3.0, 9.0];
        let mut batched = FnOracle::new(|v| v < 5.0);
        let batch = batched.probe_batch(&values);
        let mut scalar = FnOracle::new(|v| v < 5.0);
        let loop_verdicts: Vec<Probe> = values.iter().map(|&v| scalar.probe(v)).collect();
        assert_eq!(batch, loop_verdicts);
        assert_eq!(batched.probes(), scalar.probes());
        // The speculative marker changes nothing for a ledger-less oracle.
        let mut spec = FnOracle::new(|v| v < 5.0);
        assert_eq!(spec.probe_batch_speculative(&values, 1), batch);
    }

    #[test]
    fn mut_ref_is_a_batch_oracle() {
        fn takes_batch<O: BatchOracle>(mut o: O) -> Vec<Probe> {
            o.probe_batch(&[0.0, 10.0])
        }
        let mut oracle = FnOracle::new(|v| v < 5.0);
        assert_eq!(takes_batch(&mut oracle), vec![Probe::Pass, Probe::Fail]);
        assert_eq!(oracle.probes(), 2);
    }

    #[test]
    fn display_names_equations() {
        assert!(RegionOrder::PassBelowFail.to_string().contains("eq.3"));
        assert!(RegionOrder::PassAboveFail.to_string().contains("eq.4"));
    }
}
