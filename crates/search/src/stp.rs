//! Search-until-trip-point — the paper's §4 contribution.

use crate::outcome::{Probe, SearchOutcome};
use crate::traits::{PassFailOracle, RegionOrder};
use cichar_trace::{SpanTrace, TraceEvent};
use cichar_units::ParamRange;

/// The search-until-trip-point (STP) algorithm of §4, eqs. (2)–(4).
///
/// Multiple-trip-point characterization repeats the trip-point measurement
/// for every random test. Re-running a full-range search each time is
/// wasteful, because "the variations of semiconductor device parameters …
/// are only expected in a very narrow range with respect to different input
/// tests if the devices are properly designed". STP therefore:
///
/// 1. takes the *reference trip point* `RTP` from the first test's
///    full-range search (eq. 2 — see
///    [`SuccessiveApproximation`](crate::SuccessiveApproximation));
/// 2. probes the new test **at** `RTP`;
/// 3. if it passes, steps toward the fail region with the growing step
///    `SF(IT) = SF·IT` — probe positions `RTP + SF·1`, `RTP + SF·1 + SF·2`,
///    … — until the first failure; if it fails, steps the other way until
///    the first pass (eq. 3; signs mirror for eq. 4's orientation);
/// 4. reports the last passing value as the trip point.
///
/// §4's "SF will further increase with IT" is read literally: the *step*
/// grows each iteration, so the walk accelerates away from `RTP`. That
/// keeps the search cheap near `RTP` (first step is just `SF`) yet still
/// converges in `O(√distance)` probes when "unexpected drift of design
/// performance" puts the new trip point far away — the flexibility §4
/// calls out, "while keeping smallest effort of searching".
///
/// An optional refinement bisects the final pass/fail pair down to
/// `resolution`, recovering full accuracy for a couple of extra probes.
///
/// # Examples
///
/// ```
/// use cichar_search::{FnOracle, RegionOrder, SearchUntilTrip};
/// use cichar_units::ParamRange;
///
/// let range = ParamRange::new(80.0, 130.0)?;
/// // RTP from a previous test was 110; this test trips slightly lower.
/// let mut oracle = FnOracle::new(|v| v <= 108.2);
/// let stp = SearchUntilTrip::new(range, 1.0).with_refinement(0.1);
/// let outcome = stp.run(110.0, RegionOrder::PassBelowFail, &mut oracle);
/// let tp = outcome.trip_point.expect("found");
/// assert!((tp - 108.2).abs() <= 0.1);
/// // Far fewer probes than a full-range binary search would need.
/// assert!(outcome.measurements() <= 9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SearchUntilTrip {
    range: ParamRange,
    /// The programmable search-factor resolution `SF` ("such as 1 MHz or
    /// 2 MHz per step").
    sf: f64,
    /// Bisect the final bracket down to this resolution; `None` reports
    /// the raw last-pass value, exactly as §4 states the algorithm.
    refine_to: Option<f64>,
    /// Safety bound on iterations (the range edge stops the search anyway).
    max_iterations: usize,
}

impl SearchUntilTrip {
    /// Creates an STP search with search factor `sf`, no refinement.
    ///
    /// # Panics
    ///
    /// Panics if `sf` is not positive finite.
    pub fn new(range: ParamRange, sf: f64) -> Self {
        assert!(sf.is_finite() && sf > 0.0, "invalid search factor {sf}");
        Self {
            range,
            sf,
            refine_to: None,
            max_iterations: 10_000,
        }
    }

    /// Enables final bisection refinement to `resolution`.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not positive finite.
    pub fn with_refinement(mut self, resolution: f64) -> Self {
        assert!(
            resolution.is_finite() && resolution > 0.0,
            "invalid resolution {resolution}"
        );
        self.refine_to = Some(resolution);
        self
    }

    /// The clamping range (the original generous range `CR`).
    pub fn range(&self) -> ParamRange {
        self.range
    }

    /// The search factor `SF`.
    pub fn sf(&self) -> f64 {
        self.sf
    }

    /// Runs STP around the reference trip point `rtp`.
    ///
    /// # Panics
    ///
    /// Panics if `rtp` lies outside the search range — the reference must
    /// come from a search over the same range.
    pub fn run<O: PassFailOracle>(&self, rtp: f64, order: RegionOrder, oracle: O) -> SearchOutcome {
        self.run_traced(rtp, order, oracle, &SpanTrace::disabled())
    }

    /// [`run`](Self::run), emitting the full event shape of the walk into
    /// `span`: a `SearchStarted` carrying the window, reference and `SF`;
    /// one `StepTaken` per eq. 3/4 iteration with the growing step factor
    /// `SF·IT` and its clamp state at the `CR` edge; a `Bracketed` on the
    /// first state change; and a closing `SearchFinished`.
    ///
    /// # Panics
    ///
    /// Panics if `rtp` lies outside the search range.
    pub fn run_traced<O: PassFailOracle>(
        &self,
        rtp: f64,
        order: RegionOrder,
        oracle: O,
        span: &SpanTrace,
    ) -> SearchOutcome {
        span.emit_with(|| TraceEvent::SearchStarted {
            strategy: String::from("stp"),
            order: String::from(order.equation_tag()),
            window: [self.range.start(), self.range.end()],
            reference: Some(rtp),
            sf: Some(self.sf),
        });
        let outcome = self.walk(rtp, order, oracle, span);
        span.emit_with(|| TraceEvent::SearchFinished {
            strategy: String::from("stp"),
            trip_point: outcome.trip_point,
            converged: outcome.converged,
            probes: outcome.measurements() as u64,
        });
        outcome
    }

    /// The eq. 3/4 window walk itself (shared by [`run`](Self::run) and
    /// [`run_traced`](Self::run_traced)).
    fn walk<O: PassFailOracle>(
        &self,
        rtp: f64,
        order: RegionOrder,
        mut oracle: O,
        span: &SpanTrace,
    ) -> SearchOutcome {
        assert!(
            self.range.contains(rtp),
            "rtp {rtp} outside range {}",
            self.range
        );
        let mut trace = Vec::new();
        let probe = |oracle: &mut O, trace: &mut Vec<(f64, Probe)>, v: f64| {
            let verdict = oracle.probe(v);
            trace.push((v, verdict));
            verdict
        };
        let toward_fail = order.toward_fail();

        let at_rtp = probe(&mut oracle, &mut trace, rtp);
        if at_rtp == Probe::Invalid {
            // No verdict at the anchor: the walk has no direction.
            return SearchOutcome::unconverged(trace);
        }
        // Walk away from RTP with the growing step SF·IT. Direction depends
        // on the verdict at RTP: passing walks toward the fail region
        // looking for the first failure, failing walks away from it looking
        // for the first pass.
        let dir = match at_rtp {
            Probe::Pass => toward_fail,
            _ => -toward_fail,
        };
        // The window growth SF(IT) = SF·IT saturates at the generous-range
        // edge: the walk never probes outside the physically meaningful
        // axis, and the edge itself is probed at most once.
        let edge = if dir > 0.0 {
            self.range.end()
        } else {
            self.range.start()
        };
        let max_offset = (edge - rtp).abs();
        let mut last = (rtp, at_rtp);
        let mut offset = 0.0;
        for it in 1..=self.max_iterations {
            offset = (offset + self.sf * it as f64).min(max_offset);
            let at_edge = offset >= max_offset;
            let value = if at_edge { edge } else { rtp + dir * offset };
            let verdict = probe(&mut oracle, &mut trace, value);
            span.emit_with(|| TraceEvent::StepTaken {
                iteration: it as u64,
                step_factor: self.sf * it as f64,
                value,
                clamped: at_edge,
                verdict: verdict.into(),
            });
            if verdict == Probe::Invalid {
                return SearchOutcome::unconverged(trace);
            }
            if verdict != at_rtp {
                // First state change: the trip point is bracketed between
                // `last` and `value`.
                let (mut pass_v, mut fail_v) = match verdict {
                    Probe::Fail => (last.0, value),
                    _ => (value, last.0),
                };
                span.emit(TraceEvent::Bracketed {
                    pass_value: pass_v,
                    fail_value: fail_v,
                });
                if let Some(resolution) = self.refine_to {
                    while (fail_v - pass_v).abs() > resolution {
                        let mid = pass_v + (fail_v - pass_v) / 2.0;
                        match probe(&mut oracle, &mut trace, mid) {
                            Probe::Pass => pass_v = mid,
                            Probe::Fail => fail_v = mid,
                            Probe::Invalid => return SearchOutcome::unconverged(trace),
                        }
                    }
                }
                return SearchOutcome {
                    trip_point: Some(pass_v),
                    converged: true,
                    trace,
                };
            }
            last = (value, verdict);
            if at_edge {
                // The whole window up to the range edge shares RTP's state.
                break;
            }
        }
        SearchOutcome::unconverged(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::BinarySearch;
    use crate::traits::FnOracle;
    use proptest::prelude::*;

    fn range() -> ParamRange {
        ParamRange::new(80.0, 130.0).expect("valid")
    }

    #[test]
    fn passing_rtp_walks_toward_fail_region() {
        // Trip slightly above RTP.
        let mut oracle = FnOracle::new(|v| v <= 112.5);
        let o = SearchUntilTrip::new(range(), 1.0).run(110.0, RegionOrder::PassBelowFail, &mut oracle);
        let tp = o.trip_point.expect("found");
        // Probes: 110 pass, 111 pass, 113 fail → trip reported at 111.
        assert!((110.0..=112.5).contains(&tp), "tp = {tp}");
        assert!(o.measurements() <= 5, "used {}", o.measurements());
    }

    #[test]
    fn failing_rtp_walks_back_toward_pass_region() {
        // The new test trips below RTP: device fails at RTP.
        let mut oracle = FnOracle::new(|v| v <= 106.0);
        let o = SearchUntilTrip::new(range(), 1.0).run(110.0, RegionOrder::PassBelowFail, &mut oracle);
        let tp = o.trip_point.expect("found");
        assert!(tp <= 106.0, "trip reported on pass side, tp = {tp}");
        assert!(o.measurements() <= 5, "used {}", o.measurements());
    }

    #[test]
    fn growing_step_reaches_distant_trip_quickly() {
        // Unexpected drift: trip point 18 units above RTP.
        let mut oracle = FnOracle::new(|v| v <= 128.0);
        let o = SearchUntilTrip::new(range(), 1.0).run(110.0, RegionOrder::PassBelowFail, &mut oracle);
        assert!(o.converged);
        // Positions visited: 111, 112, 114(≠: SF·IT = 1,2,3,…): 111,112,113,
        // …, distance grows linearly: ~6 probes to cover 18 units? SF·IT
        // reaches 18 at IT=18 linearly-spaced probes… ensure at most that.
        assert!(
            o.measurements() <= 8,
            "accelerating walk should need few probes, used {}",
            o.measurements()
        );
    }

    #[test]
    fn eq4_orientation_mirrors_directions() {
        // Vdd-style: passes above 1.5. RTP at 1.52, new test trips at 1.56.
        let r = ParamRange::new(1.2, 2.1).expect("valid");
        let mut oracle = FnOracle::new(|v| v >= 1.56);
        let o = SearchUntilTrip::new(r, 0.01).run(1.52, RegionOrder::PassAboveFail, &mut oracle);
        let tp = o.trip_point.expect("found");
        assert!(tp >= 1.56 - 1e-9, "tp = {tp} must be on the pass side");
        assert!(tp <= 1.62, "tp = {tp} near the true boundary");
    }

    #[test]
    fn refinement_recovers_fine_resolution() {
        let coarse = SearchUntilTrip::new(range(), 2.0);
        let fine = SearchUntilTrip::new(range(), 2.0).with_refinement(0.05);
        let mut o1 = FnOracle::new(|v| v <= 111.3);
        let mut o2 = FnOracle::new(|v| v <= 111.3);
        let c = coarse.run(110.0, RegionOrder::PassBelowFail, &mut o1);
        let f = fine.run(110.0, RegionOrder::PassBelowFail, &mut o2);
        let ctp = c.trip_point.expect("found");
        let ftp = f.trip_point.expect("found");
        assert!((ftp - 111.3).abs() <= 0.05, "refined tp = {ftp}");
        assert!((ctp - 111.3).abs() <= 2.0, "coarse tp = {ctp}");
        assert!(f.measurements() > c.measurements());
    }

    #[test]
    fn window_growth_clamps_at_generous_range_edge() {
        // All-pass device: the walk saturates at the range edge, probes it
        // exactly once, and gives up instead of stepping outside CR.
        let mut oracle = FnOracle::new(|_| true);
        let o =
            SearchUntilTrip::new(range(), 5.0).run(110.0, RegionOrder::PassBelowFail, &mut oracle);
        assert!(!o.converged);
        let edge_probes = o.trace.iter().filter(|(v, _)| *v == 130.0).count();
        assert_eq!(edge_probes, 1, "range edge probed exactly once");
        assert!(o.trace.iter().all(|(v, _)| range().contains(*v)));
    }

    #[test]
    fn invalid_rtp_verdict_aborts_walk() {
        let o = SearchUntilTrip::new(range(), 1.0).run(
            110.0,
            RegionOrder::PassBelowFail,
            crate::robust::ScriptedOracle::new(vec![Probe::Invalid]),
        );
        assert!(!o.converged);
        assert_eq!(o.measurements(), 1);
    }

    #[test]
    fn unconverged_when_no_boundary_in_range() {
        let o = SearchUntilTrip::new(range(), 5.0).run(
            110.0,
            RegionOrder::PassBelowFail,
            FnOracle::new(|_| true),
        );
        assert!(!o.converged);
    }

    #[test]
    #[should_panic(expected = "outside range")]
    fn rejects_rtp_outside_range() {
        let _ = SearchUntilTrip::new(range(), 1.0).run(
            200.0,
            RegionOrder::PassBelowFail,
            FnOracle::new(|_| true),
        );
    }

    #[test]
    fn stp_is_cheaper_than_full_binary_near_rtp() {
        // The fig. 3 economics: for a trip point near RTP, STP beats a
        // fresh full-range binary search.
        let boundary = 109.2;
        let stp = SearchUntilTrip::new(range(), 1.0).with_refinement(0.1);
        let bin = BinarySearch::new(range(), 0.1);
        let s = stp.run(
            110.0,
            RegionOrder::PassBelowFail,
            FnOracle::new(|v| v <= boundary),
        );
        let b = bin.run(RegionOrder::PassBelowFail, FnOracle::new(|v| v <= boundary));
        assert!(s.converged && b.converged);
        assert!(
            s.measurements() < b.measurements(),
            "stp {} vs binary {}",
            s.measurements(),
            b.measurements()
        );
    }

    /// The `StepTaken` records of a traced STP run, in emission order.
    fn steps_of(span: &SpanTrace) -> Vec<(u64, f64, f64, bool)> {
        span.events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::StepTaken {
                    iteration,
                    step_factor,
                    value,
                    clamped,
                    ..
                } => Some((iteration, step_factor, value, clamped)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn eq3_walk_grows_step_factor_linearly() {
        // Pass-below-fail, trip far above RTP: the walk must accelerate
        // with SF(IT) = SF·IT, not a constant step — check every probe
        // position of the walk, not just the final trip point.
        let span = SpanTrace::for_test(0);
        let sf = 1.5;
        let mut oracle = FnOracle::new(|v| v <= 127.0);
        let o = SearchUntilTrip::new(range(), sf).run_traced(
            100.0,
            RegionOrder::PassBelowFail,
            &mut oracle,
            &span,
        );
        assert!(o.converged);
        let steps = steps_of(&span);
        assert!(steps.len() >= 3, "distant trip needs several steps");
        let mut expected_offset = 0.0;
        for (i, (iteration, step_factor, value, clamped)) in steps.iter().enumerate() {
            let it = (i + 1) as u64;
            assert_eq!(*iteration, it, "iterations count 1, 2, 3, …");
            assert!(
                (*step_factor - sf * it as f64).abs() < 1e-12,
                "step factor must be SF·IT = {} at IT = {it}, got {step_factor}",
                sf * it as f64
            );
            expected_offset += sf * it as f64;
            if !clamped {
                assert!(
                    (*value - (100.0 + expected_offset)).abs() < 1e-9,
                    "probe {i} at RTP + ΣSF·IT, got {value}"
                );
            }
        }
        // The walk accelerates: consecutive probe spacings strictly grow.
        for w in steps.windows(2) {
            if !w[1].3 {
                assert!(w[1].2 - w[0].2 > 0.0, "eq. 3 walks upward");
            }
        }
    }

    #[test]
    fn eq4_walk_mirrors_direction_with_same_growth() {
        // Pass-above-fail (eq. 4): a passing RTP walks *down* toward the
        // fail region with the same SF·IT growth.
        let span = SpanTrace::for_test(0);
        let r = ParamRange::new(1.2, 2.1).expect("valid");
        let sf = 0.02;
        let mut oracle = FnOracle::new(|v| v >= 1.31);
        let o = SearchUntilTrip::new(r, sf).run_traced(
            1.9,
            RegionOrder::PassAboveFail,
            &mut oracle,
            &span,
        );
        assert!(o.converged);
        let steps = steps_of(&span);
        assert!(steps.len() >= 3);
        let mut expected_offset = 0.0;
        for (i, (iteration, step_factor, value, clamped)) in steps.iter().enumerate() {
            let it = (i + 1) as u64;
            assert_eq!(*iteration, it);
            assert!((*step_factor - sf * it as f64).abs() < 1e-12);
            expected_offset += sf * it as f64;
            if !clamped {
                assert!(
                    (*value - (1.9 - expected_offset)).abs() < 1e-9,
                    "eq. 4 probe {i} at RTP − ΣSF·IT, got {value}"
                );
            }
        }
        for w in steps.windows(2) {
            if !w[1].3 {
                assert!(w[1].2 - w[0].2 < 0.0, "eq. 4 walks downward");
            }
        }
    }

    #[test]
    fn failing_rtp_reverses_walk_in_step_events() {
        // Fails at RTP under eq. 3: StepTaken values must walk *down*,
        // away from the fail region, with the same growing step.
        let span = SpanTrace::for_test(0);
        let mut oracle = FnOracle::new(|v| v <= 93.0);
        let o = SearchUntilTrip::new(range(), 1.0).run_traced(
            110.0,
            RegionOrder::PassBelowFail,
            &mut oracle,
            &span,
        );
        assert!(o.converged);
        let steps = steps_of(&span);
        assert!(!steps.is_empty());
        assert!(steps[0].2 < 110.0, "first step heads back toward pass");
        for w in steps.windows(2) {
            assert!(w[1].2 < w[0].2, "reversed walk keeps heading down");
        }
    }

    #[test]
    fn clamped_step_marks_cr_edge_exactly_once() {
        // All-pass device: the final step saturates at the CR edge and is
        // flagged `clamped`; no step probes outside the range, and the
        // walk stops right after the clamped probe.
        let span = SpanTrace::for_test(0);
        let mut oracle = FnOracle::new(|_| true);
        let o = SearchUntilTrip::new(range(), 5.0).run_traced(
            110.0,
            RegionOrder::PassBelowFail,
            &mut oracle,
            &span,
        );
        assert!(!o.converged);
        let steps = steps_of(&span);
        let clamped: Vec<_> = steps.iter().filter(|s| s.3).collect();
        assert_eq!(clamped.len(), 1, "edge step flagged exactly once");
        assert_eq!(clamped[0].2, 130.0, "clamped value is the CR edge");
        assert!(
            steps.last().expect("walked").3,
            "clamped step is the last one"
        );
        assert!(steps.iter().all(|s| range().contains(s.2)));
        // Unclamped step factors still follow SF·IT right up to the edge.
        for (i, s) in steps.iter().enumerate() {
            assert!((s.1 - 5.0 * (i + 1) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn traced_walk_event_order_is_started_steps_bracket_finished() {
        let span = SpanTrace::for_test(7);
        let mut oracle = FnOracle::new(|v| v <= 112.5);
        let o = SearchUntilTrip::new(range(), 1.0).run_traced(
            110.0,
            RegionOrder::PassBelowFail,
            &mut oracle,
            &span,
        );
        assert!(o.converged);
        let events = span.events();
        assert!(
            matches!(
                &events[0],
                TraceEvent::SearchStarted { strategy, reference, sf, .. }
                    if strategy == "stp" && *reference == Some(110.0) && *sf == Some(1.0)
            ),
            "first event opens the search"
        );
        assert!(matches!(events[1], TraceEvent::StepTaken { iteration: 1, .. }));
        let bracket_at = events
            .iter()
            .position(|e| matches!(e, TraceEvent::Bracketed { .. }))
            .expect("bracket emitted");
        assert!(
            events[..bracket_at]
                .iter()
                .skip(1)
                .all(|e| matches!(e, TraceEvent::StepTaken { .. })),
            "only steps between start and bracket"
        );
        assert!(
            matches!(
                events.last(),
                Some(TraceEvent::SearchFinished { converged: true, .. })
            ),
            "last event closes the search"
        );
    }

    #[test]
    fn untraced_run_is_identical_to_traced_run() {
        let mut a = FnOracle::new(|v| v <= 112.5);
        let mut b = FnOracle::new(|v| v <= 112.5);
        let stp = SearchUntilTrip::new(range(), 1.0).with_refinement(0.1);
        let plain = stp.run(110.0, RegionOrder::PassBelowFail, &mut a);
        let traced = stp.run_traced(
            110.0,
            RegionOrder::PassBelowFail,
            &mut b,
            &SpanTrace::for_test(0),
        );
        assert_eq!(plain, traced, "tracing must not perturb the search");
    }

    proptest! {
        #[test]
        fn stp_brackets_true_boundary(
            boundary in 85.0f64..125.0,
            rtp in 85.0f64..125.0,
            sf in 0.5f64..3.0,
        ) {
            let mut oracle = FnOracle::new(|v| v <= boundary);
            let o = SearchUntilTrip::new(range(), sf)
                .with_refinement(0.05)
                .run(rtp, RegionOrder::PassBelowFail, &mut oracle);
            let tp = o.trip_point.expect("boundary inside range");
            prop_assert!(tp <= boundary + 1e-9);
            prop_assert!(boundary - tp <= 0.05 + 1e-9);
        }

        #[test]
        fn stp_never_probes_outside_range(
            boundary in 85.0f64..125.0,
            rtp in 81.0f64..129.0,
        ) {
            let mut oracle = FnOracle::new(|v| v <= boundary);
            let o = SearchUntilTrip::new(range(), 2.0)
                .run(rtp, RegionOrder::PassBelowFail, &mut oracle);
            for (v, _) in &o.trace {
                prop_assert!(range().contains(*v));
            }
        }
    }
}
