//! Fault-tolerant probing: bounded retries, exponential backoff and
//! k-of-n majority voting over any [`PassFailOracle`].
//!
//! Real ATE glitches: probe contacts drop out, strobed verdicts flip,
//! channels stick. [`RobustOracle`] wraps a raw oracle with a recovery
//! ladder so the searches above it see clean verdicts where recovery is
//! possible, and an honest [`Probe::Invalid`] where it is not:
//!
//! 1. every strobe that returns [`Probe::Invalid`] is retried up to
//!    [`RetryPolicy::max_retries`] times, waiting an exponentially growing
//!    simulated settle time before each retry;
//! 2. with voting enabled, each probe request is answered by up to `n`
//!    strobes and decided when one verdict reaches `k` agreeing strobes
//!    (`2k > n`, so at most one side can win); a tie or too many dropouts
//!    yields [`Probe::Invalid`].
//!
//! All costs are tallied in [`RecoveryStats`] so the tester's ledger can
//! charge the simulated backoff time and count the retries.

use crate::outcome::Probe;
use crate::traits::{BatchOracle, PassFailOracle};
use cichar_trace::{SpanTrace, TraceEvent};
use serde::{Deserialize, Serialize};

/// How hard a [`RobustOracle`] fights for a verdict.
///
/// The default — 3 retries, 100 µs initial backoff, no voting — recovers
/// transient dropouts while remaining bit-identical to the raw oracle on a
/// fault-free tester (one strobe per probe request, no extra randomness).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    max_retries: usize,
    backoff_base_us: f64,
    vote: Option<(usize, usize)>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::new(3, 100.0)
    }
}

impl RetryPolicy {
    /// A policy retrying each silent strobe up to `max_retries` times, the
    /// first retry after `backoff_base_us` simulated microseconds and each
    /// further retry after double the previous wait.
    ///
    /// # Panics
    ///
    /// Panics if `backoff_base_us` is negative or not finite.
    pub fn new(max_retries: usize, backoff_base_us: f64) -> Self {
        assert!(
            backoff_base_us.is_finite() && backoff_base_us >= 0.0,
            "invalid backoff base {backoff_base_us}"
        );
        Self {
            max_retries,
            backoff_base_us,
            vote: None,
        }
    }

    /// A do-nothing policy: no retries, no voting — the wrapped oracle is
    /// consulted exactly once per probe request.
    pub fn none() -> Self {
        Self::new(0, 0.0)
    }

    /// Enables k-of-n majority voting on every probe request.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= n` and `2k > n` (a strict majority, so
    /// pass and fail cannot both reach `k`).
    pub fn with_vote(mut self, k: usize, n: usize) -> Self {
        assert!(
            k >= 1 && k <= n && 2 * k > n,
            "vote {k}-of-{n} is not a strict majority"
        );
        self.vote = Some((k, n));
        self
    }

    /// The per-strobe retry budget.
    pub fn max_retries(&self) -> usize {
        self.max_retries
    }

    /// The first retry's simulated settle time, in microseconds.
    pub fn backoff_base_us(&self) -> f64 {
        self.backoff_base_us
    }

    /// The `(k, n)` voting scheme, if enabled.
    pub fn vote(&self) -> Option<(usize, usize)> {
        self.vote
    }
}

/// Cost and outcome tally of a [`RobustOracle`]'s recovery work, to be
/// charged back to the tester's measurement ledger.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Strobes re-issued after a silent (dropout) strobe.
    pub retries: u64,
    /// Extra strobes spent on majority voting beyond the first.
    pub vote_strobes: u64,
    /// Probe requests whose final answer was still [`Probe::Invalid`]
    /// after the full recovery ladder.
    pub dropouts: u64,
    /// Total simulated backoff settle time, in microseconds.
    pub backoff_us: f64,
}

impl RecoveryStats {
    /// Accumulates another tally into this one.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.retries += other.retries;
        self.vote_strobes += other.vote_strobes;
        self.dropouts += other.dropouts;
        self.backoff_us += other.backoff_us;
    }
}

/// A [`PassFailOracle`] decorator applying a [`RetryPolicy`] to every
/// probe request.
///
/// # Examples
///
/// ```
/// use cichar_search::{PassFailOracle, Probe, RetryPolicy, RobustOracle, ScriptedOracle};
///
/// // A probe contact that drops out once, then answers.
/// let flaky = ScriptedOracle::new(vec![Probe::Invalid, Probe::Pass]);
/// let mut robust = RobustOracle::new(flaky, RetryPolicy::default());
/// assert_eq!(robust.probe(1.0), Probe::Pass);
/// let stats = robust.into_stats();
/// assert_eq!(stats.retries, 1);
/// assert!(stats.backoff_us > 0.0);
/// ```
#[derive(Debug)]
pub struct RobustOracle<O> {
    inner: O,
    policy: RetryPolicy,
    stats: RecoveryStats,
    trace: SpanTrace,
}

impl<O: PassFailOracle> RobustOracle<O> {
    /// Wraps `inner` with the given recovery policy.
    pub fn new(inner: O, policy: RetryPolicy) -> Self {
        Self {
            inner,
            policy,
            stats: RecoveryStats::default(),
            trace: SpanTrace::disabled(),
        }
    }

    /// Attaches a trace span; recovery work then emits `RetryScheduled`
    /// and `VoteResolved` events into it.
    pub fn with_trace(mut self, span: SpanTrace) -> Self {
        self.trace = span;
        self
    }

    /// The recovery tally so far.
    pub fn stats(&self) -> &RecoveryStats {
        &self.stats
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Consumes the wrapper, releasing the inner oracle's borrow and
    /// returning the final recovery tally.
    pub fn into_stats(self) -> RecoveryStats {
        self.stats
    }

    /// Consumes the wrapper, returning the inner oracle and the tally.
    pub fn into_parts(self) -> (O, RecoveryStats) {
        (self.inner, self.stats)
    }

    /// Applies the retry ladder to an already-issued strobe's verdict:
    /// re-issue silent strobes up to the retry budget, doubling the
    /// simulated settle wait each time.
    fn settle(&mut self, value: f64, first: Probe) -> Probe {
        let mut verdict = first;
        let mut attempt = 0u32;
        while verdict == Probe::Invalid && (attempt as usize) < self.policy.max_retries {
            let backoff_us = self.policy.backoff_base_us * 2f64.powi(attempt.min(60) as i32);
            self.stats.backoff_us += backoff_us;
            self.stats.retries += 1;
            self.trace.emit(TraceEvent::RetryScheduled {
                attempt: u64::from(attempt) + 1,
                backoff_us,
            });
            verdict = self.inner.probe(value);
            attempt += 1;
        }
        verdict
    }

    /// One strobe through the retry ladder.
    fn strobe(&mut self, value: f64) -> Probe {
        let first = self.inner.probe(value);
        self.settle(value, first)
    }
}

impl<O: BatchOracle> PassFailOracle for RobustOracle<O> {
    fn probe(&mut self, value: f64) -> Probe {
        let verdict = match self.policy.vote {
            None => self.strobe(value),
            Some((k, n)) => {
                let (mut passes, mut fails) = (0usize, 0usize);
                let mut strobes = 0usize;
                let mut decided = Probe::Invalid;
                // No vote can resolve before min(k, n−k+1) strobes: a
                // verdict needs k agreeing strobes, and undecidability
                // needs n−k+1 silent ones. That mandatory prefix is
                // issued as one batch so the tester amortizes its
                // bookkeeping; silent strobes in the batch still run
                // their retry ladder, in strobe order, before tallying.
                let upfront = k.min(n - k + 1);
                let raw = self.inner.probe_batch(&vec![value; upfront]);
                let mut pending = raw.into_iter();
                for i in 0..n {
                    if i > 0 {
                        self.stats.vote_strobes += 1;
                    }
                    strobes += 1;
                    let verdict = match pending.next() {
                        Some(first) => self.settle(value, first),
                        None => self.strobe(value),
                    };
                    match verdict {
                        Probe::Pass => passes += 1,
                        Probe::Fail => fails += 1,
                        Probe::Invalid => {}
                    }
                    if passes >= k {
                        decided = Probe::Pass;
                        break;
                    }
                    if fails >= k {
                        decided = Probe::Fail;
                        break;
                    }
                    let remaining = n - i - 1;
                    if passes + remaining < k && fails + remaining < k {
                        // Neither side can reach k any more: tie or too
                        // many dropouts.
                        break;
                    }
                }
                self.trace.emit_with(|| TraceEvent::VoteResolved {
                    passes: passes as u64,
                    fails: fails as u64,
                    invalids: (strobes - passes - fails) as u64,
                    verdict: decided.into(),
                });
                decided
            }
        };
        if verdict == Probe::Invalid {
            self.stats.dropouts += 1;
        }
        verdict
    }
}

/// Each batched value runs the full recovery ladder in order (votes are
/// already batched internally, so the default scalar loop is exact).
impl<O: BatchOracle> BatchOracle for RobustOracle<O> {}

/// A test oracle replaying a fixed verdict script; once the script is
/// exhausted the last verdict repeats.
///
/// Used throughout the robustness tests to stage exact fault sequences —
/// something a closure-backed [`FnOracle`](crate::FnOracle) cannot express
/// because it only answers pass or fail.
#[derive(Debug, Clone)]
pub struct ScriptedOracle {
    script: Vec<Probe>,
    served: usize,
}

impl ScriptedOracle {
    /// Creates an oracle that replays `script` in order.
    ///
    /// # Panics
    ///
    /// Panics if the script is empty.
    pub fn new(script: Vec<Probe>) -> Self {
        assert!(!script.is_empty(), "scripted oracle needs at least one verdict");
        Self { script, served: 0 }
    }

    /// How many probes have been served.
    pub fn served(&self) -> usize {
        self.served
    }
}

impl PassFailOracle for ScriptedOracle {
    fn probe(&mut self, _value: f64) -> Probe {
        let verdict = *self
            .script
            .get(self.served)
            .unwrap_or_else(|| self.script.last().expect("non-empty script"));
        self.served += 1;
        verdict
    }
}

impl BatchOracle for ScriptedOracle {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::FnOracle;

    #[test]
    fn passthrough_policy_is_transparent() {
        let mut robust = RobustOracle::new(FnOracle::new(|v| v < 5.0), RetryPolicy::none());
        assert_eq!(robust.probe(1.0), Probe::Pass);
        assert_eq!(robust.probe(9.0), Probe::Fail);
        let (inner, stats) = robust.into_parts();
        assert_eq!(inner.probes(), 2, "exactly one strobe per request");
        assert_eq!(stats, RecoveryStats::default());
    }

    #[test]
    fn retry_recovers_single_dropout() {
        let flaky = ScriptedOracle::new(vec![Probe::Invalid, Probe::Fail]);
        let mut robust = RobustOracle::new(flaky, RetryPolicy::new(3, 50.0));
        assert_eq!(robust.probe(0.0), Probe::Fail);
        let stats = robust.into_stats();
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.dropouts, 0);
        assert_eq!(stats.backoff_us, 50.0);
    }

    #[test]
    fn backoff_doubles_each_retry_until_budget_exhausted() {
        let dead = ScriptedOracle::new(vec![Probe::Invalid]);
        let mut robust = RobustOracle::new(dead, RetryPolicy::new(3, 100.0));
        assert_eq!(robust.probe(0.0), Probe::Invalid);
        let stats = robust.into_stats();
        assert_eq!(stats.retries, 3);
        assert_eq!(stats.dropouts, 1, "final verdict unavailable");
        assert_eq!(stats.backoff_us, 100.0 + 200.0 + 400.0);
    }

    #[test]
    fn vote_outvotes_single_flip() {
        // 2-of-3: one flipped verdict in three strobes loses the vote.
        let flaky = ScriptedOracle::new(vec![Probe::Pass, Probe::Fail, Probe::Pass]);
        let mut robust = RobustOracle::new(flaky, RetryPolicy::none().with_vote(2, 3));
        assert_eq!(robust.probe(0.0), Probe::Pass);
        let stats = robust.into_stats();
        assert_eq!(stats.vote_strobes, 2);
        assert_eq!(stats.dropouts, 0);
    }

    #[test]
    fn vote_exits_early_once_majority_is_reached() {
        let clean = ScriptedOracle::new(vec![Probe::Fail]);
        let mut robust = RobustOracle::new(clean, RetryPolicy::none().with_vote(2, 3));
        assert_eq!(robust.probe(0.0), Probe::Fail);
        let (inner, stats) = robust.into_parts();
        assert_eq!(inner.served(), 2, "third strobe is unnecessary");
        assert_eq!(stats.vote_strobes, 1);
    }

    #[test]
    fn vote_tie_yields_invalid() {
        // Pass, fail, dropout: neither side reaches k = 2.
        let torn = ScriptedOracle::new(vec![Probe::Pass, Probe::Fail, Probe::Invalid]);
        let mut robust = RobustOracle::new(torn, RetryPolicy::none().with_vote(2, 3));
        assert_eq!(robust.probe(0.0), Probe::Invalid);
        assert_eq!(robust.into_stats().dropouts, 1);
    }

    #[test]
    fn vote_all_dropout_yields_invalid() {
        let dead = ScriptedOracle::new(vec![Probe::Invalid]);
        let mut robust = RobustOracle::new(dead, RetryPolicy::new(1, 10.0).with_vote(2, 3));
        assert_eq!(robust.probe(0.0), Probe::Invalid);
        let stats = robust.into_stats();
        assert_eq!(stats.dropouts, 1, "one unanswerable probe request");
        assert!(stats.retries >= 2, "each voting strobe ran its retry ladder");
    }

    #[test]
    fn vote_aborts_once_undecidable() {
        // First two of five strobes drop out with k = 3: still decidable.
        // After the third dropout no side can reach 3 — stop strobing.
        let dead = ScriptedOracle::new(vec![Probe::Invalid]);
        let mut robust = RobustOracle::new(dead, RetryPolicy::none().with_vote(3, 5));
        assert_eq!(robust.probe(0.0), Probe::Invalid);
        let (inner, _) = robust.into_parts();
        assert_eq!(inner.served(), 3, "stops when 3 dropouts make k unreachable");
    }

    #[test]
    #[should_panic(expected = "not a strict majority")]
    fn rejects_non_majority_vote() {
        let _ = RetryPolicy::default().with_vote(2, 4);
    }

    #[test]
    #[should_panic(expected = "not a strict majority")]
    fn rejects_zero_vote_threshold() {
        let _ = RetryPolicy::default().with_vote(0, 3);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = RecoveryStats {
            retries: 1,
            vote_strobes: 2,
            dropouts: 3,
            backoff_us: 4.0,
        };
        a.merge(&RecoveryStats {
            retries: 10,
            vote_strobes: 20,
            dropouts: 30,
            backoff_us: 40.0,
        });
        assert_eq!(a.retries, 11);
        assert_eq!(a.vote_strobes, 22);
        assert_eq!(a.dropouts, 33);
        assert_eq!(a.backoff_us, 44.0);
    }
}
