//! Trip-point search algorithms for device characterization.
//!
//! A *trip point* is the pass/fail boundary of a device parameter (fig. 1).
//! This crate implements the searches the paper surveys in §1 — [`LinearSearch`],
//! [`BinarySearch`] and drift-tolerant [`SuccessiveApproximation`] — plus its
//! §4 contribution, the [`SearchUntilTrip`] *search-until-trip-point* algorithm
//! (eqs. 2–4) that re-uses a reference trip point to avoid re-searching the
//! full "generous range" on every test.
//!
//! All algorithms speak to the device only through a [`PassFailOracle`]
//! and report a [`SearchOutcome`] carrying the trip point, the complete
//! probe trace, and — crucially for the fig. 3 reproduction — the number
//! of measurements consumed.
//!
//! # Examples
//!
//! ```
//! use cichar_search::{BinarySearch, FnOracle, RegionOrder};
//! use cichar_units::ParamRange;
//!
//! // A device that works up to 110 MHz (§4's example).
//! let mut oracle = FnOracle::new(|f| f <= 110.0);
//! let search = BinarySearch::new(ParamRange::new(80.0, 130.0)?, 0.5);
//! let outcome = search.run(RegionOrder::PassBelowFail, &mut oracle);
//! let trip = outcome.trip_point.expect("trip point in range");
//! assert!((trip - 110.0).abs() <= 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod linear;
mod outcome;
mod rebracket;
mod robust;
mod stp;
mod successive;
mod traits;
mod warm;

pub use binary::BinarySearch;
pub use linear::LinearSearch;
pub use outcome::{trace_is_consistent, Probe, SearchOutcome};
pub use rebracket::{RebracketedOutcome, RebracketingStp};
pub use robust::{RecoveryStats, RetryPolicy, RobustOracle, ScriptedOracle};
pub use stp::SearchUntilTrip;
pub use successive::SuccessiveApproximation;
pub use traits::{BatchOracle, FnOracle, PassFailOracle, RegionOrder};
pub use warm::{TripPrediction, WarmStart, WarmStartPlanner, WarmStartSource};
