//! Predicted warm starts: seeding a search-until-trip-point window from a
//! model-predicted trip point instead of the campaign's reference.
//!
//! The paper's committee (§5) predicts per-test severity, which inverts to
//! a per-test trip point — yet eq. 2 seeds every STP walk from one shared
//! reference trip point (RTP). A warm start replaces that shared seed with
//! the *test's own* predicted trip point whenever the prediction is
//! trustworthy, shrinking the SF·IT walk toward a couple of steps. The
//! fallback ladder keeps correctness independent of prediction quality:
//!
//! 1. committee trained and vote spread within band → predicted seed,
//!    clamped into the generous range CR;
//! 2. untrained committee / spread beyond the band / non-finite or
//!    out-of-band prediction → the RTP (plain eq. 2 behaviour);
//! 3. regardless of the seed's origin, a [`RebracketingStp`] wrapper's
//!    full-range fallback still guarantees the same trip point as a
//!    full-range successive approximation when the seed was wrong.
//!
//! [`RebracketingStp`]: crate::RebracketingStp

use cichar_units::ParamRange;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A model's trip-point prediction for one test, with its uncertainty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TripPrediction {
    /// The predicted trip point, in the parameter's units.
    pub trip_point: f64,
    /// Committee vote spread (standard deviation across members) mapped
    /// into the parameter's units — the planner's trust signal.
    pub spread: f64,
}

/// Where a warm start's seed came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarmStartSource {
    /// The committee's prediction was trusted (possibly clamped into CR).
    Predicted,
    /// Fell back to the reference trip point (eq. 2).
    Reference,
}

/// The planned seed for one test's STP walk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmStart {
    /// The value the STP walk starts from, always inside CR.
    pub reference: f64,
    /// Which rung of the fallback ladder produced it.
    pub source: WarmStartSource,
}

impl WarmStart {
    /// Whether the seed came from a trusted prediction.
    pub fn is_predicted(&self) -> bool {
        self.source == WarmStartSource::Predicted
    }
}

impl fmt::Display for WarmStart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.source {
            WarmStartSource::Predicted => write!(f, "predicted seed {:.4}", self.reference),
            WarmStartSource::Reference => write!(f, "reference seed {:.4}", self.reference),
        }
    }
}

/// Plans per-test STP seeds from committee predictions, with the RTP
/// fallback ladder described in the module docs.
///
/// # Examples
///
/// ```
/// use cichar_search::{TripPrediction, WarmStartPlanner};
/// use cichar_units::ParamRange;
///
/// let cr = ParamRange::new(10.0, 40.0)?;
/// let planner = WarmStartPlanner::new(cr, 1.5);
/// // A confident prediction seeds the walk directly…
/// let warm = planner.plan(
///     Some(&TripPrediction { trip_point: 31.2, spread: 0.4 }),
///     25.0,
/// );
/// assert!(warm.is_predicted());
/// assert_eq!(warm.reference, 31.2);
/// // …an uncertain one falls back to the reference trip point.
/// let cold = planner.plan(
///     Some(&TripPrediction { trip_point: 31.2, spread: 9.0 }),
///     25.0,
/// );
/// assert!(!cold.is_predicted());
/// assert_eq!(cold.reference, 25.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmStartPlanner {
    range: ParamRange,
    max_spread: f64,
}

impl WarmStartPlanner {
    /// Creates a planner over the parameter's generous range `CR`,
    /// trusting predictions whose vote spread is at most `max_spread`
    /// (in the parameter's units).
    ///
    /// # Panics
    ///
    /// Panics if `max_spread` is negative or not finite.
    pub fn new(range: ParamRange, max_spread: f64) -> Self {
        assert!(
            max_spread.is_finite() && max_spread >= 0.0,
            "invalid spread band {max_spread}"
        );
        Self { range, max_spread }
    }

    /// The generous range every seed is clamped into.
    pub fn range(&self) -> ParamRange {
        self.range
    }

    /// The largest vote spread still trusted.
    pub fn max_spread(&self) -> f64 {
        self.max_spread
    }

    /// Plans one test's seed: the committee's prediction when present,
    /// finite, and within the spread band — clamped into CR — otherwise
    /// the reference trip point `rtp` (itself clamped, so a drifted
    /// reference can never seed a walk outside the searched range).
    pub fn plan(&self, prediction: Option<&TripPrediction>, rtp: f64) -> WarmStart {
        if let Some(p) = prediction {
            let trusted = p.trip_point.is_finite()
                && p.spread.is_finite()
                && p.spread <= self.max_spread;
            if trusted {
                return WarmStart {
                    reference: self.range.clamp(p.trip_point),
                    source: WarmStartSource::Predicted,
                };
            }
        }
        WarmStart {
            reference: self.range.clamp(rtp),
            source: WarmStartSource::Reference,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> WarmStartPlanner {
        WarmStartPlanner::new(ParamRange::new(10.0, 40.0).expect("valid"), 2.0)
    }

    #[test]
    fn trusted_prediction_seeds_the_walk() {
        let warm = planner().plan(
            Some(&TripPrediction {
                trip_point: 28.0,
                spread: 0.5,
            }),
            20.0,
        );
        assert_eq!(warm.source, WarmStartSource::Predicted);
        assert_eq!(warm.reference, 28.0);
    }

    #[test]
    fn predictions_clamp_at_cr_edges() {
        let p = planner();
        let low = p.plan(
            Some(&TripPrediction {
                trip_point: -5.0,
                spread: 0.1,
            }),
            20.0,
        );
        assert_eq!(low.reference, 10.0, "clamped to CR start");
        assert!(low.is_predicted(), "a clamped prediction is still trusted");
        let high = p.plan(
            Some(&TripPrediction {
                trip_point: 1e6,
                spread: 0.1,
            }),
            20.0,
        );
        assert_eq!(high.reference, 40.0, "clamped to CR end");
    }

    #[test]
    fn missing_prediction_falls_back_to_rtp() {
        let warm = planner().plan(None, 23.5);
        assert_eq!(warm.source, WarmStartSource::Reference);
        assert_eq!(warm.reference, 23.5);
    }

    #[test]
    fn high_variance_vote_falls_back_to_rtp() {
        let warm = planner().plan(
            Some(&TripPrediction {
                trip_point: 28.0,
                spread: 2.5,
            }),
            23.5,
        );
        assert_eq!(warm.source, WarmStartSource::Reference);
        assert_eq!(warm.reference, 23.5);
    }

    #[test]
    fn spread_exactly_at_band_is_trusted() {
        let warm = planner().plan(
            Some(&TripPrediction {
                trip_point: 28.0,
                spread: 2.0,
            }),
            23.5,
        );
        assert!(warm.is_predicted());
    }

    #[test]
    fn non_finite_predictions_fall_back() {
        for bad in [f64::NAN, f64::INFINITY] {
            let warm = planner().plan(
                Some(&TripPrediction {
                    trip_point: bad,
                    spread: 0.1,
                }),
                23.5,
            );
            assert_eq!(warm.source, WarmStartSource::Reference, "{bad}");
            let warm = planner().plan(
                Some(&TripPrediction {
                    trip_point: 28.0,
                    spread: bad,
                }),
                23.5,
            );
            assert_eq!(warm.source, WarmStartSource::Reference, "{bad}");
        }
    }

    #[test]
    fn fallback_rtp_is_clamped_too() {
        let warm = planner().plan(None, 99.0);
        assert_eq!(warm.reference, 40.0);
    }

    #[test]
    #[should_panic(expected = "invalid spread band")]
    fn negative_band_rejected() {
        let _ = WarmStartPlanner::new(ParamRange::new(0.0, 1.0).expect("valid"), -1.0);
    }

    #[test]
    fn display_names_the_source() {
        let p = planner();
        assert!(p.plan(None, 20.0).to_string().contains("reference"));
        let warm = p.plan(
            Some(&TripPrediction {
                trip_point: 28.0,
                spread: 0.1,
            }),
            20.0,
        );
        assert!(warm.to_string().contains("predicted"));
    }
}
