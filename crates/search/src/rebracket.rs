//! Re-bracketing: STP with a full-range fallback.
//!
//! The §4 search-until-trip-point algorithm leans entirely on the
//! reference trip point: when the window walk fails — a dropout silenced a
//! strobe, the whole window shared one state, or the trace violates the
//! eq. 3/4 pass/fail ordering — returning the STP result would poison the
//! DSV with garbage. [`RebracketingStp`] detects those cases and falls
//! back to a fresh full-`CR` successive-approximation search (eq. 2), so
//! the caller gets either a trustworthy trip point or an honest failure,
//! plus a refreshed reference trip point to re-anchor subsequent tests.

use crate::outcome::{Probe, SearchOutcome};
use crate::stp::SearchUntilTrip;
use crate::successive::SuccessiveApproximation;
use crate::traits::{BatchOracle, RegionOrder};
use cichar_trace::SpanTrace;

/// The result of a re-bracketing search.
#[derive(Debug, Clone, PartialEq)]
pub struct RebracketedOutcome {
    /// The combined search result. The trace concatenates every probe made
    /// (STP walk first, then the fallback if one ran) so measurement cost
    /// stays honest; the trip point comes from the authoritative search.
    pub outcome: SearchOutcome,
    /// Whether the full-range fallback ran.
    pub rebracketed: bool,
    /// Index into `outcome.trace` where the authoritative probes start
    /// (`0` when the STP walk itself was trusted).
    pub authoritative_from: usize,
}

impl RebracketedOutcome {
    /// The probes of the search that produced the reported trip point.
    pub fn authoritative_trace(&self) -> &[(f64, Probe)] {
        &self.outcome.trace[self.authoritative_from..]
    }

    /// Whether the reported trip point can be trusted: the authoritative
    /// search converged and its own trace respects the region ordering.
    pub fn is_trustworthy(&self, order: RegionOrder, tolerance: f64) -> bool {
        self.outcome.converged
            && crate::outcome::trace_is_consistent(self.authoritative_trace(), order, tolerance)
    }
}

/// [`SearchUntilTrip`] wrapped with failure detection and a fresh
/// full-range [`SuccessiveApproximation`] fallback.
///
/// # Examples
///
/// ```
/// use cichar_search::{FnOracle, RebracketingStp, RegionOrder, SearchUntilTrip,
///     SuccessiveApproximation};
/// use cichar_units::ParamRange;
///
/// let range = ParamRange::new(80.0, 130.0)?;
/// let search = RebracketingStp::new(
///     SearchUntilTrip::new(range, 1.0).with_refinement(0.1),
///     SuccessiveApproximation::new(range, 0.1),
/// );
/// let mut oracle = FnOracle::new(|v| v <= 108.2);
/// let r = search.run(110.0, RegionOrder::PassBelowFail, &mut oracle);
/// assert!(!r.rebracketed, "healthy STP needs no fallback");
/// assert!((r.outcome.trip_point.expect("found") - 108.2).abs() <= 0.1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RebracketingStp {
    stp: SearchUntilTrip,
    fallback: SuccessiveApproximation,
    tolerance: f64,
}

impl RebracketingStp {
    /// Combines an STP window search with a full-range fallback. The
    /// trace-consistency tolerance defaults to the STP search factor —
    /// verdicts within one window step of each other are boundary jitter,
    /// anything beyond is a flipped verdict.
    pub fn new(stp: SearchUntilTrip, fallback: SuccessiveApproximation) -> Self {
        let tolerance = stp.sf();
        Self {
            stp,
            fallback,
            tolerance,
        }
    }

    /// Overrides the trace-consistency tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is negative or not finite.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "invalid tolerance {tolerance}"
        );
        self.tolerance = tolerance;
        self
    }

    /// The consistency tolerance in use.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The wrapped STP search.
    pub fn stp(&self) -> &SearchUntilTrip {
        &self.stp
    }

    /// The full-range fallback search.
    pub fn fallback(&self) -> &SuccessiveApproximation {
        &self.fallback
    }

    /// Whether an STP outcome warrants the full-range fallback: it failed
    /// to bracket, a probe went silent, or the trace breaks the eq. 3/4
    /// pass/fail ordering.
    pub fn needs_rebracket(&self, outcome: &SearchOutcome, order: RegionOrder) -> bool {
        !outcome.converged
            || outcome.has_invalid()
            || !outcome.is_consistent(order, self.tolerance)
    }

    /// Runs STP around `rtp`; on failure, re-brackets with a fresh
    /// full-range search over the same oracle.
    ///
    /// # Panics
    ///
    /// Panics if `rtp` lies outside the STP range (same contract as
    /// [`SearchUntilTrip::run`]).
    pub fn run<O: BatchOracle>(
        &self,
        rtp: f64,
        order: RegionOrder,
        oracle: O,
    ) -> RebracketedOutcome {
        self.run_traced(rtp, order, oracle, &SpanTrace::disabled())
    }

    /// [`run`](Self::run), emitting each constituent search's events into
    /// `span`: one `SearchStarted`/`SearchFinished` pair for the STP walk
    /// and, when the fallback runs, a second pair for it.
    ///
    /// # Panics
    ///
    /// Panics if `rtp` lies outside the STP range (same contract as
    /// [`SearchUntilTrip::run`]).
    pub fn run_traced<O: BatchOracle>(
        &self,
        rtp: f64,
        order: RegionOrder,
        mut oracle: O,
        span: &SpanTrace,
    ) -> RebracketedOutcome {
        let first = self.stp.run_traced(rtp, order, &mut oracle, span);
        if !self.needs_rebracket(&first, order) {
            return RebracketedOutcome {
                outcome: first,
                rebracketed: false,
                authoritative_from: 0,
            };
        }
        let fresh = self.fallback.run_traced(order, &mut oracle, span);
        let authoritative_from = first.trace.len();
        let mut trace = first.trace;
        trace.extend(fresh.trace);
        RebracketedOutcome {
            outcome: SearchOutcome {
                trip_point: fresh.trip_point,
                converged: fresh.converged,
                trace,
            },
            rebracketed: true,
            authoritative_from,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::FnOracle;
    use cichar_units::ParamRange;

    fn range() -> ParamRange {
        ParamRange::new(80.0, 130.0).expect("valid")
    }

    fn search() -> RebracketingStp {
        RebracketingStp::new(
            SearchUntilTrip::new(range(), 1.0).with_refinement(0.1),
            SuccessiveApproximation::new(range(), 0.1),
        )
    }

    /// Drops the first `dropouts` strobes, then answers from a boundary.
    struct FlakyContact {
        boundary: f64,
        dropouts: usize,
        calls: usize,
    }

    impl crate::traits::PassFailOracle for FlakyContact {
        fn probe(&mut self, value: f64) -> Probe {
            self.calls += 1;
            if self.calls <= self.dropouts {
                Probe::Invalid
            } else if value <= self.boundary {
                Probe::Pass
            } else {
                Probe::Fail
            }
        }
    }

    impl BatchOracle for FlakyContact {}

    #[test]
    fn healthy_stp_is_passed_through_untouched() {
        let mut a = FnOracle::new(|v| v <= 108.2);
        let mut b = FnOracle::new(|v| v <= 108.2);
        let plain = search().stp.run(110.0, RegionOrder::PassBelowFail, &mut a);
        let wrapped = search().run(110.0, RegionOrder::PassBelowFail, &mut b);
        assert!(!wrapped.rebracketed);
        assert_eq!(wrapped.outcome, plain);
        assert_eq!(wrapped.authoritative_from, 0);
        assert!(wrapped.is_trustworthy(RegionOrder::PassBelowFail, 1.0));
    }

    #[test]
    fn dropout_at_rtp_falls_back_to_full_range() {
        let mut oracle = FlakyContact {
            boundary: 112.4,
            dropouts: 1,
            calls: 0,
        };
        let r = search().run(110.0, RegionOrder::PassBelowFail, &mut oracle);
        assert!(r.rebracketed);
        assert!(r.outcome.converged);
        let tp = r.outcome.trip_point.expect("fallback brackets");
        assert!((tp - 112.4).abs() <= 0.1, "tp = {tp}");
        // The dead probe is still in the trace (cost is honest) but not in
        // the authoritative slice.
        assert_eq!(r.authoritative_from, 1);
        assert!(r.outcome.has_invalid());
        assert!(r.is_trustworthy(RegionOrder::PassBelowFail, 1.0));
    }

    #[test]
    fn whole_window_one_state_rebrackets() {
        // RTP anchored wildly wrong (device passes everywhere near it and
        // all the way up): STP cannot bracket, fallback can't either here,
        // so the failure stays honest.
        let r = search().run(110.0, RegionOrder::PassBelowFail, FnOracle::new(|_| true));
        assert!(r.rebracketed);
        assert!(!r.outcome.converged);
        assert!(!r.is_trustworthy(RegionOrder::PassBelowFail, 1.0));
    }

    #[test]
    fn inconsistent_trace_warrants_rebracket() {
        let s = search();
        // A converged outcome whose trace claims a pass two window steps
        // above a fail — physically impossible under eq. 3.
        let bad = SearchOutcome {
            trip_point: Some(112.0),
            converged: true,
            trace: vec![(110.0, Probe::Fail), (112.0, Probe::Pass)],
        };
        assert!(s.needs_rebracket(&bad, RegionOrder::PassBelowFail));
        assert!(!s.needs_rebracket(&bad, RegionOrder::PassAboveFail));
        let good = SearchOutcome {
            trip_point: Some(110.0),
            converged: true,
            trace: vec![(110.0, Probe::Pass), (111.0, Probe::Fail)],
        };
        assert!(!s.needs_rebracket(&good, RegionOrder::PassBelowFail));
    }
}
