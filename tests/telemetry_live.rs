//! Live-telemetry invariants, locked by proptest:
//!
//! - Heartbeats are paced by **simulated ledger time**, so the heartbeat
//!   sequence is bit-identical across thread counts (the PR 7 watchdog
//!   discipline, extended to observability).
//! - Resuming a journaled campaign replays chunks silently: the resumed
//!   process's heartbeats cover only live work, yet its final snapshot
//!   reconciles with both the campaign totals and the live tracer's
//!   counters.
//! - The OpenMetrics exposition (`metrics.prom`) parses back and every
//!   counter sample equals the corresponding `MetricsSnapshot` field.

use cichar::ate::{AteConfig, MeasuredParam, TesterFaultModel};
use cichar::core::dsv::SearchStrategy;
use cichar::core::wafer::{WaferConfig, WaferRunner};
use cichar::dut::Lot;
use cichar::exec::ExecPolicy;
use cichar::patterns::{random, Test, TestConditions};
use cichar::trace::{
    parse_openmetrics, AlarmRule, HeartbeatSnapshot, MetricsSnapshot, NullSink, Telemetry, Tracer,
    HEARTBEAT_FILE, METRICS_FILE,
};
use proptest::prelude::*;
use serde::{Serialize as _, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cichar_tele_live_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn campaign_inputs(seed: u64, die_count: usize) -> (Vec<cichar::dut::Die>, Vec<Test>) {
    let dies = Lot::default().sample_dies(&mut StdRng::seed_from_u64(seed ^ 0x5EED), die_count);
    let mut rng = StdRng::seed_from_u64(seed);
    let tests: Vec<Test> = (0..3)
        .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
        .collect();
    (dies, tests)
}

fn heartbeats_in(dir: &Path) -> Vec<HeartbeatSnapshot> {
    let text = std::fs::read_to_string(dir.join(HEARTBEAT_FILE)).expect("heartbeat stream");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str::<HeartbeatSnapshot>(l).expect("heartbeat line parses"))
        .collect()
}

/// Runs one telemetry-armed wafer campaign; returns the normalized
/// heartbeat sequence plus the tracer's final counter snapshot.
fn wafer_campaign(
    dir: &Path,
    seed: u64,
    die_count: usize,
    threads: usize,
    every_ms: u64,
) -> (Vec<HeartbeatSnapshot>, MetricsSnapshot) {
    let (dies, tests) = campaign_inputs(seed, die_count);
    let tracer = Tracer::new(Arc::new(NullSink));
    let telemetry = Telemetry::create_with(
        dir,
        "wafer",
        tracer.clone(),
        every_ms,
        AlarmRule::default_set(),
    )
    .expect("tmp is writable");
    let ate_config = AteConfig {
        faults: TesterFaultModel::transient(0.02, 0.01),
        seed,
        ..AteConfig::default()
    };
    WaferRunner::new(MeasuredParam::DataValidTime)
        .with_config(WaferConfig {
            sites: 2,
            ..WaferConfig::default()
        })
        .with_telemetry(telemetry.clone())
        .run_traced(
            &ate_config,
            &dies,
            &tests,
            SearchStrategy::SearchUntilTrip,
            ExecPolicy::with_threads(threads),
            &tracer,
        )
        .expect("unjournaled campaigns do no I/O");
    telemetry.finish().expect("sidecars flush");
    let beats = heartbeats_in(dir)
        .into_iter()
        .map(HeartbeatSnapshot::normalized)
        .collect();
    (beats, tracer.metrics())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn heartbeat_sequences_are_bit_identical_across_thread_counts(
        seed in 0u64..1000,
        die_count in 6usize..24,
        every_ms in 5u64..40,
    ) {
        let dir1 = tmp_dir(&format!("t1_{seed}_{die_count}_{every_ms}"));
        let dir8 = tmp_dir(&format!("t8_{seed}_{die_count}_{every_ms}"));
        let (serial, m1) = wafer_campaign(&dir1, seed, die_count, 1, every_ms);
        let (wide, m8) = wafer_campaign(&dir8, seed, die_count, 8, every_ms);
        // The sequences — cadence, counters, alarms — match snapshot for
        // snapshot once wall-clock fields are normalized away.
        prop_assert_eq!(&serial, &wide);
        prop_assert!(!serial.is_empty(), "finish() emits at least one heartbeat");
        prop_assert_eq!(m1, m8);
        // Heartbeats are strictly ordered and paced by simulated time.
        for (i, pair) in serial.windows(2).enumerate() {
            prop_assert_eq!(pair[1].seq, pair[0].seq + 1);
            prop_assert!(
                pair[1].sim_time_us >= pair[0].sim_time_us,
                "sim clock went backwards at heartbeat {i}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir8);
    }

    #[test]
    fn resumed_campaigns_heartbeat_only_live_work_yet_reconcile(
        seed in 0u64..1000,
        die_count in 8usize..24,
        kill_salt in 0usize..6,
    ) {
        let journal = tmp_dir(&format!("journal_{seed}_{die_count}_{kill_salt}"));
        let tele = tmp_dir(&format!("resume_{seed}_{die_count}_{kill_salt}"));
        let (dies, tests) = campaign_inputs(seed, die_count);
        let ate_config = AteConfig { seed, ..AteConfig::default() };
        let strategy = SearchStrategy::SearchUntilTrip;
        let shape = WaferConfig {
            sites: 2,
            chunk_touchdowns: 2,
            journal_dir: Some(journal.clone()),
            ..WaferConfig::default()
        };

        // Interrupt after a mid-campaign number of committed chunks
        // (telemetry off — the crashed process's stream is irrelevant).
        let chunk_count = die_count.div_ceil(2).div_ceil(2);
        let kill_after = 1 + kill_salt % (chunk_count - 1).max(1);
        WaferRunner::new(MeasuredParam::DataValidTime)
            .with_config(shape.clone())
            .run_prefix(&ate_config, &dies, &tests, strategy, ExecPolicy::serial(), kill_after)
            .expect("prefix run journals cleanly");

        // Resume with telemetry armed: replayed chunks must emit no live
        // heartbeats, only the live tail of the campaign does.
        let tracer = Tracer::new(Arc::new(NullSink));
        let telemetry =
            Telemetry::create_with(&tele, "wafer", tracer.clone(), 5, AlarmRule::default_set())
                .expect("tmp is writable");
        let (report, _ledger, stats) = WaferRunner::new(MeasuredParam::DataValidTime)
            .with_config(shape)
            .with_telemetry(telemetry.clone())
            .resume_traced(&ate_config, &dies, &tests, strategy, ExecPolicy::serial(), &tracer)
            .expect("resume replays the journal");
        let health = telemetry.finish().expect("sidecars flush").expect("enabled");

        let beats = heartbeats_in(&tele);
        prop_assert_eq!(beats.len() as u64, health.heartbeats);
        let last = beats.last().expect("finish() emits a final heartbeat");
        // The final snapshot reconciles with the campaign totals: every
        // (die, test) entry is accounted, replayed ones included...
        prop_assert_eq!(last.units_done, report.aggregate.entries);
        prop_assert_eq!(last.units_total, (dies.len() * tests.len()) as u64);
        prop_assert_eq!(last.touchdowns_done, report.touchdowns);
        // ...while the probe counters come from the live tracer alone
        // (replay re-emits nothing).
        let metrics = tracer.metrics();
        prop_assert_eq!(last.probes_resolved, metrics.probes_resolved);
        prop_assert_eq!(last.searches_finished, metrics.searches_finished);
        prop_assert!(
            stats.chunks_replayed >= 1,
            "the kill point must actually exercise replay"
        );
        // Every live heartbeat postdates the replayed prefix: progress
        // starts beyond what the journal already held.
        let first = &beats[0];
        prop_assert!(
            first.units_done > stats.entries_replayed.saturating_sub(1),
            "first heartbeat ({} units) predates the replayed prefix ({})",
            first.units_done,
            stats.entries_replayed
        );
        let _ = std::fs::remove_dir_all(&journal);
        let _ = std::fs::remove_dir_all(&tele);
    }
}

#[test]
fn openmetrics_file_reconciles_with_the_metrics_snapshot() {
    let dir = tmp_dir("openmetrics");
    let (_beats, metrics) = wafer_campaign(&dir, 42, 12, 4, 10);
    let text = std::fs::read_to_string(dir.join(METRICS_FILE)).expect("metrics.prom");
    let samples = parse_openmetrics(&text).expect("exposition parses");

    // Field-for-field: every counter sample in the exposition equals the
    // tracer's final snapshot value, resolved through the snapshot's own
    // serialized field names — no hand-kept name table to drift.
    let value = metrics.to_value();
    let fields = value.as_map().expect("snapshot serializes as a map");
    let mut reconciled = 0usize;
    for (name, sample) in &samples {
        let Some(field) = name
            .strip_prefix("cichar_")
            .and_then(|n| n.strip_suffix("_total"))
        else {
            continue; // histogram buckets, gauges, heartbeat meta-counter
        };
        if field == "heartbeats" {
            continue;
        }
        let snapshot_value = fields
            .iter()
            .find(|(k, _)| k == field)
            .unwrap_or_else(|| panic!("exposition counter {name} has no snapshot field"));
        match &snapshot_value.1 {
            Value::U64(v) => assert_eq!(*sample, *v as f64, "{name}"),
            Value::I64(v) => assert_eq!(*sample, *v as f64, "{name}"),
            other => panic!("counter field {field} serialized as {other:?}"),
        }
        reconciled += 1;
    }
    assert!(
        reconciled >= 20,
        "expected the full counter table in the exposition, reconciled only {reconciled}"
    );
    assert!(
        samples.contains_key("cichar_heartbeats_total"),
        "heartbeat meta-counter missing"
    );
    assert!(
        samples.contains_key("cichar_probes_per_search_bucket{le=\"+Inf\"}"),
        "histogram buckets missing"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_stays_out_of_the_normalized_event_stream() {
    // The sidecar discipline: the exact same campaign with and without
    // telemetry produces byte-identical normalized trace streams (goldens
    // and baselines never see heartbeats).
    use cichar::trace::{normalize_jsonl, JsonlSink};
    let run = |telemetry_dir: Option<PathBuf>| {
        let trace_path = std::env::temp_dir().join(format!(
            "cichar_tele_stream_{}_{}.jsonl",
            std::process::id(),
            telemetry_dir.is_some()
        ));
        let tracer = Tracer::new(Arc::new(JsonlSink::create(&trace_path).expect("writable")));
        let telemetry = match &telemetry_dir {
            Some(dir) => {
                Telemetry::create_with(dir, "wafer", tracer.clone(), 5, AlarmRule::default_set())
                    .expect("tmp is writable")
            }
            None => Telemetry::disabled(),
        };
        let (dies, tests) = campaign_inputs(7, 10);
        WaferRunner::new(MeasuredParam::DataValidTime)
            .with_config(WaferConfig {
                sites: 2,
                ..WaferConfig::default()
            })
            .with_telemetry(telemetry.clone())
            .run_traced(
                &AteConfig {
                    seed: 7,
                    ..AteConfig::default()
                },
                &dies,
                &tests,
                SearchStrategy::SearchUntilTrip,
                ExecPolicy::serial(),
                &tracer,
            )
            .expect("unjournaled campaigns do no I/O");
        telemetry.finish().expect("sidecars flush");
        tracer.finish().expect("stream commits");
        let text = std::fs::read_to_string(&trace_path).expect("stream exists");
        let _ = std::fs::remove_file(&trace_path);
        if let Some(dir) = telemetry_dir {
            let _ = std::fs::remove_dir_all(&dir);
        }
        normalize_jsonl(&text)
    };
    assert_eq!(run(None), run(Some(tmp_dir("stream_discipline"))));
}
