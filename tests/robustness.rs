//! The fault-tolerant measurement pipeline, end to end: injected tester
//! faults must not change the characterization story, and every fault
//! must be visible in the ledger.
//!
//! Acceptance criteria of the robustness PR:
//!
//! * at 2% verdict flips + 1% dropouts, a seeded DSV campaign's
//!   worst-case trip point matches the fault-free one within one search
//!   resolution step;
//! * every injected fault is accounted for in the ledger's fault
//!   columns;
//! * zero quarantined points leak into the reported DSV extremum.

use cichar::ate::{Ate, AteConfig, MeasuredParam, TesterFaultModel};
use cichar::core::dsv::{MultiTripRunner, SearchStrategy, TripStatus};
use cichar::dut::MemoryDevice;
use cichar::patterns::{random, ConditionSpace, Test};
use cichar::search::RetryPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn suite(n: usize) -> Vec<Test> {
    let space = ConditionSpace::default();
    random::random_suite(&mut StdRng::seed_from_u64(0xD5C), &space, n)
}

fn campaign(faults: TesterFaultModel, recovery: Option<RetryPolicy>) -> (Ate, MultiTripRunner) {
    let ate = Ate::with_config(
        MemoryDevice::nominal(),
        AteConfig {
            faults,
            seed: 0xFA_17,
            ..AteConfig::default()
        },
    );
    let mut runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
    if let Some(policy) = recovery {
        runner = runner.with_recovery(policy);
    }
    (ate, runner)
}

#[test]
fn faulty_campaign_matches_fault_free_worst_case_within_one_step() {
    let param = MeasuredParam::DataValidTime;
    let tests = suite(40);

    let (mut clean_ate, clean_runner) = campaign(TesterFaultModel::none(), None);
    let clean = clean_runner.run(&mut clean_ate, &tests, SearchStrategy::SearchUntilTrip);

    let (mut ate, runner) = campaign(
        TesterFaultModel::transient(0.02, 0.01),
        Some(RetryPolicy::new(4, 50.0).with_vote(2, 3)),
    );
    let faulty = runner.run(&mut ate, &tests, SearchStrategy::SearchUntilTrip);

    // The recovery ladder actually worked for its living.
    let ledger = ate.ledger();
    assert!(ledger.flips() > 0, "flips injected: {ledger}");
    assert!(ledger.dropouts() > 0, "dropouts injected: {ledger}");
    assert!(ledger.retries() > 0, "retries spent: {ledger}");
    assert!(ledger.backoff_time_us() > 0.0, "backoff charged: {ledger}");

    // The worst-case extremum survives fault injection to within one
    // search step (the binary search's own uncertainty).
    let step = param.search_factor().max(param.resolution());
    let clean_worst = clean.min().expect("clean campaign converges");
    let faulty_worst = faulty.min().expect("faulty campaign still reports");
    assert!(
        (clean_worst - faulty_worst).abs() <= step,
        "worst case moved: clean {clean_worst:.4}, faulty {faulty_worst:.4}, step {step:.4}"
    );
}

#[test]
fn every_injected_fault_is_accounted_in_the_ledger() {
    let faults = TesterFaultModel::transient(0.02, 0.01)
        .with_stuck_channels(0.002, 4)
        .with_session_aborts(0.002, 3);
    let (mut ate, runner) = campaign(faults, Some(RetryPolicy::new(4, 50.0).with_vote(2, 3)));
    let report = runner.run(&mut ate, &suite(40), SearchStrategy::SearchUntilTrip);

    let ledger = ate.ledger();
    assert!(ledger.injected_faults() > 0);
    assert_eq!(
        ledger.injected_faults(),
        ledger.dropouts() + ledger.flips() + ledger.stuck_probes() + ledger.aborts(),
        "fault columns partition the injected total"
    );
    // The quarantine column agrees with the report's classification.
    assert_eq!(ledger.quarantined(), report.quarantined() as u64);
    // Faults cost tester time, never less than the fault-free run.
    assert!(ledger.test_time_ms() > 0.0);
}

#[test]
fn quarantined_points_never_leak_into_the_extremum() {
    // Brutal dropout rate with no recovery: plenty of quarantined points.
    let (mut ate, runner) = campaign(TesterFaultModel::transient(0.0, 0.3), None);
    let report = runner.run(&mut ate, &suite(40), SearchStrategy::FullRange);
    assert!(report.quarantined() > 0, "rate high enough to quarantine");

    for entry in report.quarantined_entries() {
        assert_eq!(
            entry.trip_point, None,
            "quarantined entry {} carries no trip point",
            entry.test_name
        );
        assert!(matches!(entry.status, TripStatus::Quarantined { .. }));
    }
    // Eq. 1 extrema come from exactly the non-quarantined population.
    let trip_points = report.trip_points();
    assert_eq!(
        trip_points.len(),
        report.entries.len() - report.quarantined()
    );
    if let (Some(min), Some(max)) = (report.min(), report.max()) {
        assert!(trip_points.iter().all(|tp| (min..=max).contains(tp)));
    }
}

#[test]
fn recovery_restores_every_trip_point_on_a_noiseless_tester() {
    // With noise off, any surviving fault would shift a trip point; the
    // ladder must reproduce the fault-free answer bit for bit.
    use cichar::ate::NoiseModel;
    let tests = suite(24);
    let run = |faults: TesterFaultModel, recovery: Option<RetryPolicy>| {
        let mut ate = Ate::with_config(
            MemoryDevice::nominal(),
            AteConfig {
                noise: NoiseModel::noiseless(),
                faults,
                seed: 0xFA_17,
                ..AteConfig::default()
            },
        );
        let mut runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
        if let Some(policy) = recovery {
            runner = runner.with_recovery(policy);
        }
        runner.run(&mut ate, &tests, SearchStrategy::FullRange)
    };
    let clean = run(TesterFaultModel::none(), None);
    let recovered = run(
        TesterFaultModel::transient(0.02, 0.01),
        Some(RetryPolicy::new(8, 50.0).with_vote(2, 3)),
    );
    assert_eq!(recovered.quarantined(), 0, "ladder rides out every fault");
    for (c, r) in clean.entries.iter().zip(&recovered.entries) {
        assert_eq!(c.trip_point, r.trip_point, "{}", c.test_name);
    }
}
