//! End-to-end pipeline tests: the full figs. 4+5 flow through the public
//! umbrella API, including persistence of the worst-case database.

use cichar::ate::Ate;
use cichar::core::compare::{quick_config, Comparison};
use cichar::core::db::WorstCaseDatabase;
use cichar::core::generator::NeuralTestGenerator;
use cichar::core::wcr::WcrClass;
use cichar::dut::MemoryDevice;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_pipeline(seed: u64) -> (Comparison, Ate) {
    let mut ate = Ate::new(MemoryDevice::nominal());
    let mut rng = StdRng::seed_from_u64(seed);
    let cmp = Comparison::run(&mut ate, &quick_config(), &mut rng);
    (cmp, ate)
}

#[test]
fn table1_ordering_holds_through_public_api() {
    let (cmp, _) = run_pipeline(101);
    assert_eq!(cmp.rows.len(), 3);
    assert!(cmp.rows[2].t_dq < cmp.rows[1].t_dq, "{}", cmp.render());
    assert!(cmp.rows[1].t_dq < cmp.rows[0].t_dq, "{}", cmp.render());
    // The found worst case must sit near or inside the weakness band.
    assert!(cmp.rows[2].wcr > 0.78, "{}", cmp.render());
}

#[test]
fn learning_model_is_reusable_after_the_run() {
    let (cmp, _) = run_pipeline(102);
    // The model persists and can screen fresh candidates without any
    // further measurements.
    let generator = NeuralTestGenerator::new(&cmp.model);
    let mut rng = StdRng::seed_from_u64(103);
    let picks = generator.propose(100, 5, None, &mut rng);
    assert_eq!(picks.len(), 5);
    for pair in picks.windows(2) {
        assert!(pair[0].predicted_severity >= pair[1].predicted_severity);
    }
}

#[test]
fn worst_case_database_survives_disk_round_trip() {
    let (cmp, _) = run_pipeline(104);
    let db = &cmp.optimization.database;
    assert!(!db.is_empty());

    let dir = std::env::temp_dir().join("cichar_e2e");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("worst_case.json");
    db.save(&path).expect("save");
    let loaded = WorstCaseDatabase::load(&path).expect("load");
    assert_eq!(loaded.entries(), db.entries());

    // The stored tests replay to the same trip point on a fresh tester.
    let worst = loaded.worst().expect("non-empty");
    let mut ate = Ate::noiseless(MemoryDevice::nominal());
    use cichar::ate::MeasuredParam;
    use cichar::search::BinarySearch;
    let param = MeasuredParam::DataValidTime;
    let replayed = BinarySearch::new(param.generous_range(), param.resolution())
        .run(param.region_order(), ate.trip_oracle(&worst.test, param))
        .trip_point
        .expect("converged");
    assert!(
        (replayed - worst.trip_point).abs() < 0.3,
        "stored {} vs replayed {replayed}",
        worst.trip_point
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn database_entries_are_all_classified_and_sorted() {
    let (cmp, _) = run_pipeline(105);
    let db = &cmp.optimization.database;
    for pair in db.entries().windows(2) {
        assert!(pair[0].wcr >= pair[1].wcr);
    }
    for entry in db.entries() {
        assert_ne!(entry.class, WcrClass::Fail, "fails go to the failure store");
        assert_eq!(entry.class, WcrClass::from_wcr(entry.wcr));
    }
    for failure in db.failures() {
        assert_eq!(failure.class, WcrClass::Fail);
        assert!(failure.wcr > 1.0);
    }
}

#[test]
fn ate_cost_is_fully_attributed() {
    let (cmp, ate) = run_pipeline(106);
    let attributed: u64 = cmp.rows.iter().map(|r| r.measurements).sum();
    assert_eq!(
        attributed,
        ate.ledger().measurements(),
        "every measurement belongs to exactly one technique"
    );
}
