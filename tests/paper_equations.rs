//! The paper's numbered equations and named numbers, verified through the
//! public API.

use cichar::ate::{Ate, MeasuredParam};
use cichar::core::dsv::{MultiTripRunner, SearchStrategy};
use cichar::core::wcr::{CharacterizationObjective, WcrClass};
use cichar::dut::MemoryDevice;
use cichar::patterns::{march, random, Test, TestConditions};
use cichar::search::RegionOrder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Eq. (1): the design specification becomes the *set* of trip points over
/// N tests, not a single number.
#[test]
fn eq1_dsv_is_a_set_over_tests() {
    let mut rng = StdRng::seed_from_u64(1);
    let tests: Vec<Test> = (0..10)
        .map(|_| random::random_test_at(&mut rng, TestConditions::nominal()))
        .collect();
    let mut ate = Ate::noiseless(MemoryDevice::nominal());
    let report = MultiTripRunner::new(MeasuredParam::DataValidTime).run(
        &mut ate,
        &tests,
        SearchStrategy::SearchUntilTrip,
    );
    let dsv = report.trip_points();
    assert_eq!(dsv.len(), 10, "one TPV per test");
    let distinct = {
        let mut v = dsv.clone();
        v.sort_by(f64::total_cmp);
        v.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        v.len()
    };
    assert!(distinct >= 5, "trip points differ across tests: {dsv:?}");
}

/// Eq. (2): the first test's trip point becomes the reference (RTP).
#[test]
fn eq2_first_trip_point_is_the_reference() {
    let tests: Vec<Test> = march::standard_suite()
        .into_iter()
        .map(|(n, p)| Test::deterministic(n, p))
        .collect();
    let mut ate = Ate::noiseless(MemoryDevice::nominal());
    let report = MultiTripRunner::new(MeasuredParam::DataValidTime).run(
        &mut ate,
        &tests,
        SearchStrategy::SearchUntilTrip,
    );
    assert_eq!(report.reference_trip_point, report.entries[0].trip_point);
}

/// Eqs. (3)/(4): both region orientations are explicitly modelled and
/// mapped to the right parameters.
#[test]
fn eq3_eq4_orientations() {
    assert_eq!(
        MeasuredParam::MaxFrequency.region_order(),
        RegionOrder::PassBelowFail,
        "eq. 3: P < F for frequency"
    );
    assert_eq!(
        MeasuredParam::MinVoltage.region_order(),
        RegionOrder::PassAboveFail,
        "eq. 4: P > F for supply voltage"
    );
    assert_eq!(
        RegionOrder::PassBelowFail.flipped(),
        RegionOrder::PassAboveFail
    );
}

/// §4's worked example: spec 100 MHz, generous range 80–130 MHz, CR = 50.
#[test]
fn section4_frequency_example_numbers() {
    let range = MeasuredParam::MaxFrequency.generous_range();
    assert_eq!((range.start(), range.end()), (80.0, 130.0));
    assert_eq!(range.width(), 50.0);

    // And the simulated device actually fails somewhere inside that range
    // above its spec, like the paper's "fail if … above 110 MHz" device.
    let test = Test::deterministic("march_c-", march::march_c_minus(64));
    let mut ate = Ate::noiseless(MemoryDevice::nominal());
    let report = MultiTripRunner::new(MeasuredParam::MaxFrequency).run(
        &mut ate,
        std::slice::from_ref(&test),
        SearchStrategy::FullRange,
    );
    let f_max = report.entries[0].trip_point.expect("in range");
    assert!((100.0..120.0).contains(&f_max), "f_max = {f_max}");
}

/// Eqs. (5)/(6) and fig. 6: WCR values and classes for the paper's own
/// Table 1 numbers.
#[test]
fn eq5_eq6_and_fig6_reference_numbers() {
    let eq6 = CharacterizationObjective::drift_to_minimum(20.0);
    for (t_dq, wcr, class) in [
        (32.3, 0.619, WcrClass::Pass),
        (28.5, 0.701, WcrClass::Pass),
        (22.1, 0.904, WcrClass::Weakness),
    ] {
        assert!((eq6.wcr(t_dq) - wcr).abs() < 0.001, "t_dq {t_dq}");
        assert_eq!(eq6.classify(t_dq), class, "t_dq {t_dq}");
    }
    let eq5 = CharacterizationObjective::drift_to_maximum(110.0);
    assert_eq!(eq5.classify(95.0), WcrClass::Weakness); // 0.86
    assert_eq!(eq5.classify(120.0), WcrClass::Fail);
    assert_eq!(eq5.classify(80.0), WcrClass::Pass); // 0.72
}

/// §6: the T_DQ spec constant is 20 ns and the nominal corner is 1.8 V.
#[test]
fn section6_experiment_constants() {
    assert_eq!(cichar::dut::T_DQ_SPEC.value(), 20.0);
    assert_eq!(TestConditions::nominal().vdd.value(), 1.8);
}

/// §3: patterns are 100–1000 vector cycles.
#[test]
fn section3_pattern_window() {
    assert_eq!(cichar::patterns::MIN_PATTERN_LEN, 100);
    assert_eq!(cichar::patterns::MAX_PATTERN_LEN, 1000);
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..50 {
        let n = random::random_test_at(&mut rng, TestConditions::nominal())
            .pattern()
            .len();
        assert!((100..=1000).contains(&n));
    }
}
