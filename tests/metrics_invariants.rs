//! Property tests on the metrics registry: whatever fault mix, recovery
//! policy, seed and thread count a campaign runs with, the final
//! [`MetricsSnapshot`] must satisfy the accounting invariants and be
//! independent of the execution schedule.

use cichar::ate::{AteConfig, MeasuredParam, ParallelAte, TesterFaultModel};
use cichar::core::dsv::{MultiTripRunner, SearchStrategy};
use cichar::dut::MemoryDevice;
use cichar::exec::ExecPolicy;
use cichar::patterns::{random, ConditionSpace, Test};
use cichar::search::RetryPolicy;
use cichar::trace::{MetricsSnapshot, NullSink, Tracer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn suite(seed: u64, n: usize) -> Vec<Test> {
    let space = ConditionSpace::default();
    random::random_suite(&mut StdRng::seed_from_u64(seed), &space, n)
}

/// Runs a multi-trip campaign against a null-sink tracer (metrics still
/// accumulate) and returns the final snapshot.
fn campaign_metrics(
    campaign_seed: u64,
    suite_seed: u64,
    faults: TesterFaultModel,
    recovery: Option<RetryPolicy>,
    strategy: SearchStrategy,
    threads: usize,
) -> MetricsSnapshot {
    let blueprint = ParallelAte::new(
        MemoryDevice::nominal(),
        AteConfig {
            faults,
            seed: campaign_seed,
            ..AteConfig::default()
        },
    );
    let mut runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
    if let Some(policy) = recovery {
        runner = runner.with_recovery(policy);
    }
    let tracer = Tracer::new(Arc::new(NullSink));
    runner.run_parallel_traced(
        &blueprint,
        &suite(suite_seed, 16),
        strategy,
        ExecPolicy::with_threads(threads),
        &tracer,
    );
    tracer.metrics()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every completed campaign satisfies the registry's accounting
    /// invariants: `probes_resolved == probes_cached + probes_issued`,
    /// and every histogram's observation count and sum reconcile with the
    /// matching counters (`searches_finished`, `search_steps`, `retries`).
    #[test]
    fn snapshots_satisfy_the_accounting_invariants(
        campaign_seed in 0u64..=u64::from(u32::MAX),
        suite_seed in 0u64..1000,
        flip_rate in 0.0f64..0.05,
        dropout_rate in 0.0f64..0.05,
    ) {
        let faults = TesterFaultModel::transient(flip_rate, dropout_rate);
        let recovery = Some(RetryPolicy::new(3, 50.0).with_vote(2, 3));
        for strategy in [SearchStrategy::FullRange, SearchStrategy::SearchUntilTrip] {
            let m = campaign_metrics(
                campaign_seed, suite_seed, faults, recovery, strategy, 4,
            );
            prop_assert_eq!(m.check_invariants(), None);
            prop_assert_eq!(m.probes_resolved, m.probes_cached + m.probes_issued);
            prop_assert_eq!(m.searches_finished, m.hist_probes_per_search.count);
            prop_assert_eq!(m.search_steps, m.hist_search_steps.sum);
            prop_assert_eq!(m.retries, m.hist_retry_depth.count);
            prop_assert!(m.searches_converged <= m.searches_finished);
            prop_assert!(m.probes_resolved > 0, "a 16-test campaign probes");
        }
    }

    /// `threads = 1` and `threads = 8` merge to the same snapshot —
    /// metrics shards combine like ledgers, by plain integer sums over
    /// per-index deterministic work.
    #[test]
    fn snapshots_merge_identically_across_thread_counts(
        campaign_seed in 0u64..=u64::from(u32::MAX),
        suite_seed in 0u64..1000,
        dropout_rate in 0.0f64..0.05,
    ) {
        let faults = TesterFaultModel::transient(0.01, dropout_rate);
        let recovery = Some(RetryPolicy::new(3, 50.0).with_vote(2, 3));
        for strategy in [SearchStrategy::FullRange, SearchStrategy::SearchUntilTrip] {
            let serial = campaign_metrics(
                campaign_seed, suite_seed, faults, recovery, strategy, 1,
            );
            let threaded = campaign_metrics(
                campaign_seed, suite_seed, faults, recovery, strategy, 8,
            );
            prop_assert_eq!(serial, threaded);
        }
    }

    /// Under a dropout-only fault model with recovery armed, a point can
    /// only be quarantined after the retry ladder was exhausted — so the
    /// retry counter always dominates the quarantine counter. (Flip
    /// faults break this: a flipped verdict can quarantine a search as
    /// inconsistent without a single silent strobe.)
    #[test]
    fn dropout_only_recovery_retries_dominate_quarantines(
        campaign_seed in 0u64..=u64::from(u32::MAX),
        suite_seed in 0u64..1000,
        dropout_rate in 0.01f64..0.2,
        retries in 1usize..4,
    ) {
        let faults = TesterFaultModel::transient(0.0, dropout_rate);
        let recovery = Some(RetryPolicy::new(retries, 50.0));
        let m = campaign_metrics(
            campaign_seed,
            suite_seed,
            faults,
            recovery,
            SearchStrategy::SearchUntilTrip,
            4,
        );
        prop_assert!(
            m.retries >= m.quarantined,
            "retries {} < quarantined {}",
            m.retries,
            m.quarantined
        );
        prop_assert_eq!(m.check_invariants(), None);
        prop_assert_eq!(m.faults_flip, 0);
    }
}
