//! Reproducibility: every stochastic stage is seed-deterministic, end to
//! end — a hard requirement for a characterization tool whose findings
//! must be replayable on demand.

use cichar::ate::{Ate, AteConfig, MeasuredParam};
use cichar::core::learning::{LearningConfig, LearningScheme};
use cichar::core::optimization::{OptimizationConfig, OptimizationScheme};
use cichar::dut::{Lot, MemoryDevice};
use cichar::genetic::GaConfig;
use cichar::neural::TrainConfig;
use cichar::patterns::{random, ConditionSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn random_test_generation_is_seed_stable() {
    let space = ConditionSpace::default();
    let a = random::random_suite(&mut StdRng::seed_from_u64(5), &space, 10);
    let b = random::random_suite(&mut StdRng::seed_from_u64(5), &space, 10);
    assert_eq!(a, b);
}

#[test]
fn lot_sampling_is_seed_stable() {
    let lot = Lot::default();
    let a = lot.sample_dies(&mut StdRng::seed_from_u64(6), 20);
    let b = lot.sample_dies(&mut StdRng::seed_from_u64(6), 20);
    assert_eq!(a, b);
}

#[test]
fn noisy_ate_sessions_replay_exactly() {
    let run = || {
        let mut ate = Ate::with_config(MemoryDevice::nominal(), AteConfig::default());
        let test = cichar::patterns::Test::deterministic(
            "m",
            cichar::patterns::march::march_c_minus(64),
        );
        (0..30)
            .map(|i| {
                ate.measure(&test, MeasuredParam::DataValidTime, 31.9 + 0.01 * f64::from(i))
                    .is_pass()
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn learning_scheme_is_seed_stable() {
    let config = LearningConfig {
        tests_per_round: 40,
        max_rounds: 1,
        committee_size: 2,
        hidden: vec![8],
        train: TrainConfig {
            epochs: 60,
            ..TrainConfig::default()
        },
        ..LearningConfig::default()
    };
    let run = || {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(7);
        LearningScheme::new(config.clone()).run(&mut ate, &mut rng)
    };
    let a = run();
    let b = run();
    assert_eq!(a.committee, b.committee, "identical weight files");
    assert_eq!(a.reference_trip_point, b.reference_trip_point);
    assert_eq!(a.measurements_used, b.measurements_used);
}

#[test]
fn optimization_scheme_is_seed_stable() {
    let config = OptimizationConfig {
        ga: GaConfig {
            population_size: 10,
            islands: 1,
            generations: 5,
            ..GaConfig::default()
        },
        ..OptimizationConfig::default()
    };
    let run = || {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(8);
        OptimizationScheme::new(config.clone()).run(&mut ate, &[], Some(31.0), &mut rng)
    };
    let a = run();
    let b = run();
    assert_eq!(a.best.trip_point, b.best.trip_point);
    assert_eq!(a.ga.evaluations, b.ga.evaluations);
    assert_eq!(a.measurements_used, b.measurements_used);
}

#[test]
fn different_seeds_explore_differently() {
    let space = ConditionSpace::default();
    let a = random::random_suite(&mut StdRng::seed_from_u64(1), &space, 5);
    let b = random::random_suite(&mut StdRng::seed_from_u64(2), &space, 5);
    assert_ne!(a, b, "seeds must actually matter");
}

/// The batched oracle path's contract: element `i` of a batch is
/// bit-identical to the `i`-th sequential scalar call — same noise draws,
/// same injected faults, same ledger — so batching is a pure bookkeeping
/// optimization that can never change a characterization result.
mod batch_scalar_parity {
    use cichar::ate::{Ate, AteConfig, MeasuredParam, NoiseModel, TesterFaultModel};
    use cichar::dut::MemoryDevice;
    use cichar::patterns::{random, ConditionSpace, PatternFeatures};
    use cichar::search::{BatchOracle, PassFailOracle, Probe, RetryPolicy};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn device_batch_matches_scalar_evaluations(
            suite_seed in 0u64..1000,
            n in 1usize..32,
        ) {
            let mut rng = StdRng::seed_from_u64(suite_seed);
            let space = ConditionSpace::default();
            let conditions_seed = space.sample(&mut rng);
            let test = random::random_test_at(&mut rng, conditions_seed);
            let features = PatternFeatures::extract(&test.pattern());
            let conditions: Vec<_> = (0..n).map(|_| space.sample(&mut rng)).collect();
            let device = MemoryDevice::nominal();
            let batch = device.evaluate_batch(&features, &conditions);
            let scalar: Vec<_> = conditions
                .iter()
                .map(|c| device.evaluate_features(&features, c))
                .collect();
            prop_assert_eq!(batch, scalar);
        }

        #[test]
        fn oracle_batch_matches_scalar_probes_under_faults(
            campaign_seed in 0u64..=u64::from(u32::MAX),
            suite_seed in 0u64..1000,
        ) {
            let config = AteConfig {
                noise: NoiseModel::new(0.05, 0.1, 0.01),
                faults: TesterFaultModel::transient(0.02, 0.01),
                seed: campaign_seed,
                ..AteConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(suite_seed);
            let space = ConditionSpace::default();
            let at = space.sample(&mut rng);
            let test = random::random_test_at(&mut rng, at);
            let values: Vec<f64> = (0..24).map(|i| 26.0 + 0.35 * f64::from(i)).collect();
            let param = MeasuredParam::DataValidTime;

            let mut a = Ate::with_config(MemoryDevice::nominal(), config.clone());
            let scalar: Vec<Probe> = {
                let mut oracle = a.trip_oracle(&test, param);
                values.iter().map(|&v| oracle.probe(v)).collect()
            };
            let mut b = Ate::with_config(MemoryDevice::nominal(), config.clone());
            let batch = b.trip_oracle(&test, param).probe_batch(&values);
            prop_assert_eq!(batch, scalar);
            prop_assert_eq!(a.ledger(), b.ledger());

            // The k-of-n voting wrapper batches its strobes too; the
            // retry/vote decisions must come out identical.
            let policy = RetryPolicy::new(3, 50.0).with_vote(2, 3);
            let mut a = Ate::with_config(MemoryDevice::nominal(), config.clone());
            let (robust_scalar, stats_scalar) = {
                let mut oracle = a.robust_oracle(&test, param, policy);
                let probes: Vec<Probe> = values.iter().map(|&v| oracle.probe(v)).collect();
                (probes, oracle.into_stats())
            };
            let mut b = Ate::with_config(MemoryDevice::nominal(), config);
            let (robust_batch, stats_batch) = {
                let mut oracle = b.robust_oracle(&test, param, policy);
                (oracle.probe_batch(&values), oracle.into_stats())
            };
            prop_assert_eq!(robust_batch, robust_scalar);
            prop_assert_eq!(stats_batch, stats_scalar);
            prop_assert_eq!(a.ledger(), b.ledger());
        }
    }
}

/// The parallel layer's contract: `threads = 1` and `threads = 8` produce
/// bit-identical results for every campaign seed, because each work item's
/// random stream is a pure function of (campaign seed, item index) and
/// outputs merge by index, never by completion order.
mod parallel_bit_identity {
    use cichar::ate::{AteConfig, MeasuredParam, ParallelAte, ShmooPlot};
    use cichar::core::dsv::{MultiTripRunner, SearchStrategy};
    use cichar::dut::MemoryDevice;
    use cichar::exec::ExecPolicy;
    use cichar::genetic::{GaConfig, GaEngine, GenomeSpec, Individual, ParallelFitness, SpeciesLayout};
    use cichar::patterns::{random, ConditionSpace, Test};
    use cichar::units::{Axis, ParamKind};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_tests(seed: u64, n: usize) -> Vec<Test> {
        let space = ConditionSpace::default();
        random::random_suite(&mut StdRng::seed_from_u64(seed), &space, n)
    }

    fn weight(individual: &Individual) -> f64 {
        individual.chromosome(0).iter().map(|&g| f64::from(g)).sum()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn dsv_results_match_across_thread_counts(
            campaign_seed in 0u64..=u64::from(u32::MAX),
            suite_seed in 0u64..1000,
        ) {
            // The default tester config injects noise, so this also proves
            // the per-test seed-derivation rule, not just pure-math replay.
            let blueprint = ParallelAte::new(
                MemoryDevice::nominal(),
                AteConfig { seed: campaign_seed, ..AteConfig::default() },
            );
            let tests = random_tests(suite_seed, 24);
            let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
            for strategy in [SearchStrategy::FullRange, SearchStrategy::SearchUntilTrip] {
                let serial =
                    runner.run_parallel(&blueprint, &tests, strategy, ExecPolicy::serial());
                let threaded =
                    runner.run_parallel(&blueprint, &tests, strategy, ExecPolicy::with_threads(8));
                prop_assert_eq!(serial, threaded);
            }
        }

        #[test]
        fn faulty_dsv_results_match_across_thread_counts(
            campaign_seed in 0u64..=u64::from(u32::MAX),
            suite_seed in 0u64..1000,
        ) {
            // Fault injection and the recovery ladder must obey the same
            // seed-derivation rule as noise: retries, votes, and
            // quarantine decisions are all per-index deterministic.
            use cichar::ate::TesterFaultModel;
            use cichar::search::RetryPolicy;
            let blueprint = ParallelAte::new(
                MemoryDevice::nominal(),
                AteConfig {
                    faults: TesterFaultModel::transient(0.02, 0.01),
                    seed: campaign_seed,
                    ..AteConfig::default()
                },
            );
            let tests = random_tests(suite_seed, 24);
            let runner = MultiTripRunner::new(MeasuredParam::DataValidTime)
                .with_recovery(RetryPolicy::new(3, 50.0).with_vote(2, 3));
            for strategy in [SearchStrategy::FullRange, SearchStrategy::SearchUntilTrip] {
                let (serial, serial_ledger) =
                    runner.run_parallel(&blueprint, &tests, strategy, ExecPolicy::serial());
                let (threaded, threaded_ledger) =
                    runner.run_parallel(&blueprint, &tests, strategy, ExecPolicy::with_threads(8));
                prop_assert_eq!(&serial, &threaded);
                prop_assert_eq!(serial_ledger, threaded_ledger);
                prop_assert_eq!(
                    serial_ledger.quarantined(),
                    serial.quarantined() as u64
                );
            }
        }

        #[test]
        fn speculative_and_warm_paths_match_across_thread_counts(
            campaign_seed in 0u64..=u64::from(u32::MAX),
            suite_seed in 0u64..1000,
        ) {
            // The probe-economy paths (speculative batched bisection and
            // committee-seeded warm starts) must honor the same
            // per-index seed-derivation rule as the plain runner, even
            // with fault injection and the recovery ladder engaged.
            use cichar::ate::TesterFaultModel;
            use cichar::search::{RetryPolicy, TripPrediction, WarmStartPlanner};
            let param = MeasuredParam::DataValidTime;
            let blueprint = ParallelAte::new(
                MemoryDevice::nominal(),
                AteConfig {
                    faults: TesterFaultModel::transient(0.02, 0.01),
                    seed: campaign_seed,
                    ..AteConfig::default()
                },
            );
            let tests = random_tests(suite_seed, 24);
            let runner = MultiTripRunner::new(param)
                .with_recovery(RetryPolicy::new(3, 50.0).with_vote(2, 3))
                .with_speculation();
            let serial = runner.run_parallel(
                &blueprint, &tests, SearchStrategy::FullRange, ExecPolicy::serial());
            let threaded = runner.run_parallel(
                &blueprint, &tests, SearchStrategy::FullRange, ExecPolicy::with_threads(8));
            prop_assert_eq!(&serial, &threaded);

            // Warm starts: alternate trusted predictions with missing
            // slots so the fan-out exercises both rungs of the fallback
            // ladder at every thread count.
            let planner = WarmStartPlanner::new(param.generous_range(), 1.0);
            let predictions: Vec<Option<TripPrediction>> = serial.0.entries.iter()
                .enumerate()
                .map(|(i, e)| {
                    if i % 2 == 0 {
                        e.trip_point.map(|tp| TripPrediction { trip_point: tp, spread: 0.1 })
                    } else {
                        None
                    }
                })
                .collect();
            let warm_serial = runner.run_parallel_warm(
                &blueprint, &tests, &predictions, &planner, ExecPolicy::serial());
            let warm_threaded = runner.run_parallel_warm(
                &blueprint, &tests, &predictions, &planner, ExecPolicy::with_threads(8));
            prop_assert_eq!(warm_serial, warm_threaded);
        }

        #[test]
        fn shmoo_grids_match_across_thread_counts(
            campaign_seed in 0u64..=u64::from(u32::MAX),
            suite_seed in 0u64..1000,
        ) {
            let blueprint = ParallelAte::new(
                MemoryDevice::nominal(),
                AteConfig { seed: campaign_seed, ..AteConfig::default() },
            );
            let test = &random_tests(suite_seed, 1)[0];
            let x = Axis::new(ParamKind::StrobeDelay, 16.0, 36.0, 21).expect("static axis");
            let y = Axis::new(ParamKind::SupplyVoltage, 1.5, 2.1, 7).expect("static axis");
            let serial = ShmooPlot::capture_parallel(
                &blueprint, test, x.clone(), y.clone(), ExecPolicy::serial());
            let threaded = ShmooPlot::capture_parallel(
                &blueprint, test, x, y, ExecPolicy::with_threads(8));
            prop_assert_eq!(serial, threaded);
        }

        #[test]
        fn ga_runs_match_across_thread_counts(ga_seed in 0u64..=u64::from(u32::MAX)) {
            let engine = GaEngine::new(
                GaConfig {
                    population_size: 12,
                    islands: 2,
                    generations: 8,
                    ..GaConfig::default()
                },
                SpeciesLayout::new(vec![GenomeSpec::uniform(8, 0, 50)]),
            );
            let sequential = engine.run(weight, &mut StdRng::seed_from_u64(ga_seed));
            for threads in [1, 8] {
                let mut eval = ParallelFitness::new(
                    ExecPolicy::with_threads(threads),
                    |_, individual: &Individual| weight(individual),
                );
                let parallel = engine.run_with(&mut eval, &mut StdRng::seed_from_u64(ga_seed));
                prop_assert_eq!(&parallel, &sequential);
            }
        }

        #[test]
        fn journaled_wafer_resume_is_bit_identical(
            campaign_seed in 0u64..=u64::from(u32::MAX),
            die_count in 6usize..40,
            sites in 1usize..5,
            chunk in 1usize..5,
            kill_salt in 0usize..8,
        ) {
            // Interrupt a journaled campaign after a random number of
            // committed chunks, resume at 8 threads, and demand the
            // exact report and ledger an uninterrupted serial run
            // produces — the tentpole durability invariant, fuzzed
            // over campaign shape and kill point.
            use cichar::ate::TesterFaultModel;
            use cichar::core::wafer::{WaferConfig, WaferRunner};
            use cichar::dut::Lot;

            let dies = Lot::default()
                .sample_dies(&mut StdRng::seed_from_u64(campaign_seed ^ 0x5EED), die_count);
            let tests = random_tests(campaign_seed % 1000, 3);
            let ate_config = AteConfig {
                faults: TesterFaultModel::transient(0.02, 0.01),
                seed: campaign_seed,
                ..AteConfig::default()
            };
            let strategy = SearchStrategy::SearchUntilTrip;
            let shape = |journal_dir| WaferConfig {
                sites,
                chunk_touchdowns: chunk,
                journal_dir,
                ..WaferConfig::default()
            };
            let plain = WaferRunner::new(MeasuredParam::DataValidTime)
                .with_config(shape(None))
                .run(&ate_config, &dies, &tests, strategy, ExecPolicy::serial())
                .expect("unjournaled campaigns do no I/O");

            let dir = std::env::temp_dir().join(format!(
                "cichar_prop_resume_{campaign_seed}_{die_count}_{sites}_{chunk}_{kill_salt}"
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let journaled = WaferRunner::new(MeasuredParam::DataValidTime)
                .with_config(shape(Some(dir.clone())));
            let chunk_count = die_count.div_ceil(sites).div_ceil(chunk);
            let kill_after = kill_salt % chunk_count;
            let committed = journaled
                .run_prefix(&ate_config, &dies, &tests, strategy, ExecPolicy::serial(), kill_after)
                .expect("prefix run journals cleanly");
            prop_assert_eq!(committed, kill_after as u64);

            let (report, ledger, stats) = journaled
                .resume(&ate_config, &dies, &tests, strategy, ExecPolicy::with_threads(8))
                .expect("resume replays the journal");
            prop_assert_eq!(&report, &plain.0);
            prop_assert_eq!(&ledger, &plain.1);
            prop_assert_eq!(stats.chunks_replayed, kill_after as u64);
            prop_assert_eq!(stats.chunks_total, chunk_count as u64);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
