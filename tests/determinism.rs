//! Reproducibility: every stochastic stage is seed-deterministic, end to
//! end — a hard requirement for a characterization tool whose findings
//! must be replayable on demand.

use cichar::ate::{Ate, AteConfig, MeasuredParam};
use cichar::core::learning::{LearningConfig, LearningScheme};
use cichar::core::optimization::{OptimizationConfig, OptimizationScheme};
use cichar::dut::{Lot, MemoryDevice};
use cichar::genetic::GaConfig;
use cichar::neural::TrainConfig;
use cichar::patterns::{random, ConditionSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn random_test_generation_is_seed_stable() {
    let space = ConditionSpace::default();
    let a = random::random_suite(&mut StdRng::seed_from_u64(5), &space, 10);
    let b = random::random_suite(&mut StdRng::seed_from_u64(5), &space, 10);
    assert_eq!(a, b);
}

#[test]
fn lot_sampling_is_seed_stable() {
    let lot = Lot::default();
    let a = lot.sample_dies(&mut StdRng::seed_from_u64(6), 20);
    let b = lot.sample_dies(&mut StdRng::seed_from_u64(6), 20);
    assert_eq!(a, b);
}

#[test]
fn noisy_ate_sessions_replay_exactly() {
    let run = || {
        let mut ate = Ate::with_config(MemoryDevice::nominal(), AteConfig::default());
        let test = cichar::patterns::Test::deterministic(
            "m",
            cichar::patterns::march::march_c_minus(64),
        );
        (0..30)
            .map(|i| {
                ate.measure(&test, MeasuredParam::DataValidTime, 31.9 + 0.01 * f64::from(i))
                    .is_pass()
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn learning_scheme_is_seed_stable() {
    let config = LearningConfig {
        tests_per_round: 40,
        max_rounds: 1,
        committee_size: 2,
        hidden: vec![8],
        train: TrainConfig {
            epochs: 60,
            ..TrainConfig::default()
        },
        ..LearningConfig::default()
    };
    let run = || {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(7);
        LearningScheme::new(config.clone()).run(&mut ate, &mut rng)
    };
    let a = run();
    let b = run();
    assert_eq!(a.committee, b.committee, "identical weight files");
    assert_eq!(a.reference_trip_point, b.reference_trip_point);
    assert_eq!(a.measurements_used, b.measurements_used);
}

#[test]
fn optimization_scheme_is_seed_stable() {
    let config = OptimizationConfig {
        ga: GaConfig {
            population_size: 10,
            islands: 1,
            generations: 5,
            ..GaConfig::default()
        },
        ..OptimizationConfig::default()
    };
    let run = || {
        let mut ate = Ate::noiseless(MemoryDevice::nominal());
        let mut rng = StdRng::seed_from_u64(8);
        OptimizationScheme::new(config.clone()).run(&mut ate, &[], Some(31.0), &mut rng)
    };
    let a = run();
    let b = run();
    assert_eq!(a.best.trip_point, b.best.trip_point);
    assert_eq!(a.ga.evaluations, b.ga.evaluations);
    assert_eq!(a.measurements_used, b.measurements_used);
}

#[test]
fn different_seeds_explore_differently() {
    let space = ConditionSpace::default();
    let a = random::random_suite(&mut StdRng::seed_from_u64(1), &space, 5);
    let b = random::random_suite(&mut StdRng::seed_from_u64(2), &space, 5);
    assert_ne!(a, b, "seeds must actually matter");
}
