//! Cross-crate invariants: the search layer, the ATE simulator and the
//! device model must agree with each other.

use cichar::ate::{Ate, MeasuredParam, ShmooPlot};
use cichar::dut::{Die, MemoryDevice, ProcessCorner};
use cichar::patterns::{march, PatternFeatures, Test, TestConditions};
use cichar::search::{BinarySearch, RegionOrder, SearchUntilTrip, SuccessiveApproximation};
use cichar::units::{Axis, ParamKind};

fn march_test() -> Test {
    Test::deterministic("march_c-", march::march_c_minus(64))
}

/// A noiseless searched trip point must equal the device's true parametric
/// value within the search resolution — for every parameter and both
/// region orientations.
#[test]
fn searched_trip_points_match_device_truth() {
    let device = MemoryDevice::nominal();
    let test = march_test();
    let features = PatternFeatures::extract(&test.pattern());
    let truth = device.evaluate_features(&features, test.conditions());
    let mut ate = Ate::noiseless(device);

    for (param, expected) in [
        (MeasuredParam::DataValidTime, truth.t_dq.value()),
        (MeasuredParam::MaxFrequency, truth.f_max.value()),
        (MeasuredParam::MinVoltage, truth.vdd_min.value()),
    ] {
        let outcome = BinarySearch::new(param.generous_range(), param.resolution())
            .run(param.region_order(), ate.trip_oracle(&test, param));
        let tp = outcome.trip_point.expect("trip in range");
        assert!(
            (tp - expected).abs() <= param.resolution(),
            "{param}: searched {tp} vs truth {expected}"
        );
    }
}

/// All three search algorithms agree on the same (noiseless) device.
#[test]
fn search_algorithms_agree() {
    let test = march_test();
    let param = MeasuredParam::DataValidTime;
    let mut ate = Ate::noiseless(MemoryDevice::nominal());
    let binary = BinarySearch::new(param.generous_range(), param.resolution())
        .run(param.region_order(), ate.trip_oracle(&test, param));
    let successive = SuccessiveApproximation::new(param.generous_range(), param.resolution())
        .run(param.region_order(), ate.trip_oracle(&test, param));
    let b = binary.trip_point.expect("converged");
    let s = successive.trip_point.expect("converged");
    assert!((b - s).abs() <= 2.0 * param.resolution(), "{b} vs {s}");

    let stp = SearchUntilTrip::new(param.generous_range(), param.search_factor())
        .with_refinement(param.resolution())
        .run(b, param.region_order(), ate.trip_oracle(&test, param));
    let t = stp.trip_point.expect("converged");
    assert!((b - t).abs() <= 2.0 * param.resolution(), "{b} vs {t}");
}

/// The shmoo row at nominal Vdd must place its boundary where the search
/// places the trip point (within one grid step).
#[test]
fn shmoo_boundary_matches_search() {
    let test = march_test();
    let param = MeasuredParam::DataValidTime;
    let mut ate = Ate::noiseless(MemoryDevice::nominal());
    let searched = BinarySearch::new(param.generous_range(), param.resolution())
        .run(param.region_order(), ate.trip_oracle(&test, param))
        .trip_point
        .expect("converged");

    let x = Axis::new(ParamKind::StrobeDelay, 16.0, 36.0, 81).expect("valid");
    let y = Axis::new(ParamKind::SupplyVoltage, 1.7, 1.9, 3).expect("valid");
    let plot = ShmooPlot::capture(&mut ate, &test, x.clone(), y);
    let row_boundary = plot
        .row_boundary(1, RegionOrder::PassBelowFail) // middle row = 1.8 V
        .expect("boundary on axis");
    assert!(
        (row_boundary - searched).abs() <= x.step() + param.resolution(),
        "shmoo {row_boundary} vs search {searched}"
    );
}

/// Process corners order consistently through the whole stack: a fast die
/// trips later than a slow die when measured through the full ATE+search
/// path.
#[test]
fn corner_ordering_survives_the_measurement_path() {
    let test = march_test();
    let param = MeasuredParam::DataValidTime;
    let measure = |corner: ProcessCorner| {
        let mut ate = Ate::noiseless(MemoryDevice::new(Die::at_corner(corner)));
        BinarySearch::new(param.generous_range(), param.resolution())
            .run(param.region_order(), ate.trip_oracle(&test, param))
            .trip_point
            .expect("converged")
    };
    let fast = measure(ProcessCorner::Fast);
    let typical = measure(ProcessCorner::Typical);
    let slow = measure(ProcessCorner::Slow);
    assert!(fast > typical && typical > slow, "{fast} > {typical} > {slow}");
}

/// The ledger sees every probe that any search issues, and test time grows
/// monotonically with measurements.
#[test]
fn ledger_accounts_every_probe() {
    let test = march_test();
    let param = MeasuredParam::DataValidTime;
    let mut ate = Ate::noiseless(MemoryDevice::nominal());
    assert_eq!(ate.ledger().measurements(), 0);
    let outcome = BinarySearch::new(param.generous_range(), param.resolution())
        .run(param.region_order(), ate.trip_oracle(&test, param));
    assert_eq!(ate.ledger().measurements(), outcome.measurements() as u64);
    assert_eq!(
        ate.ledger().cycles(),
        outcome.measurements() as u64 * test.pattern().len() as u64
    );
    let t1 = ate.ledger().test_time_ms();
    let _ = ate.measure(&test, param, 20.0);
    assert!(ate.ledger().test_time_ms() > t1);
}

/// Conditions flow end to end: forcing Vdd through the test's own
/// conditions and through the shmoo's forced axis must agree.
#[test]
fn forced_and_owned_conditions_agree() {
    let param = MeasuredParam::DataValidTime;
    let starved = march_test()
        .with_conditions(TestConditions::nominal().with_vdd(cichar::units::Volts::new(1.6)));
    let mut ate = Ate::noiseless(MemoryDevice::nominal());
    let via_conditions = BinarySearch::new(param.generous_range(), param.resolution())
        .run(param.region_order(), ate.trip_oracle(&starved, param))
        .trip_point
        .expect("converged");

    let x = Axis::new(ParamKind::StrobeDelay, 16.0, 36.0, 161).expect("valid");
    let y = Axis::new(ParamKind::SupplyVoltage, 1.6, 1.8, 2).expect("valid");
    let nominal_test = march_test();
    let plot = ShmooPlot::capture(&mut ate, &nominal_test, x.clone(), y);
    let via_force = plot
        .row_boundary(0, RegionOrder::PassBelowFail)
        .expect("boundary on axis");
    assert!(
        (via_conditions - via_force).abs() <= x.step() + param.resolution(),
        "{via_conditions} vs {via_force}"
    );
}
