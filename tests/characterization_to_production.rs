//! The full industrial arc through the public API: characterize a lot,
//! hunt the worst case, analyze it, derive the production program, screen
//! devices — §1's description of how characterization feeds manufacturing.

use cichar::ate::{Ate, MeasuredParam};
use cichar::core::analysis::WeaknessAnalyzer;
use cichar::core::compare::{quick_config, Comparison};
use cichar::core::production::{Bin, ProductionProgram};
use cichar::core::sample::{corner_grid, SampleCharacterization};
use cichar::core::wcr::CharacterizationObjective;
use cichar::dut::{Lot, MemoryDevice};
use cichar::patterns::{march, Test};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn objective() -> CharacterizationObjective {
    CharacterizationObjective::drift_to_minimum(20.0)
}

#[test]
fn lot_campaign_produces_consistent_population_statistics() {
    let campaign = SampleCharacterization::new(
        MeasuredParam::DataValidTime,
        objective(),
        corner_grid(&[1.65, 1.95], &[25.0]),
    );
    let tests = vec![
        Test::deterministic("march_c-", march::march_c_minus(64)),
        Test::deterministic("checkerboard", march::checkerboard(128)),
    ];
    let mut rng = StdRng::seed_from_u64(501);
    let report = campaign.run(&Lot::default(), 6, &tests, &mut rng);

    assert_eq!(report.dies.len(), 6);
    let worst = report.population_worst().expect("measured");
    let mean = report.population_mean().expect("measured");
    assert!(worst <= mean);
    assert!(report.spec_margin().expect("measured") > 0.0);
    // Every die's worst corner is at the starved supply.
    for die in &report.dies {
        let best_corner = die
            .corners
            .iter()
            .min_by(|a, b| {
                a.worst_trip_point
                    .unwrap_or(f64::INFINITY)
                    .total_cmp(&b.worst_trip_point.unwrap_or(f64::INFINITY))
            })
            .expect("corners");
        assert_eq!(best_corner.conditions.vdd.value(), 1.65);
    }
}

#[test]
fn worst_case_database_drives_a_working_production_program() {
    // Characterize on the golden die.
    let mut ate = Ate::new(MemoryDevice::nominal());
    let mut rng = StdRng::seed_from_u64(502);
    let comparison = Comparison::run(&mut ate, &quick_config(), &mut rng);

    let program = ProductionProgram::from_worst_cases(
        &comparison.optimization.database,
        MeasuredParam::DataValidTime,
        objective(),
        1.0,
        3,
    );
    assert!(program.steps().len() <= 3 && !program.steps().is_empty());
    // Limits sit on the pass side of the spec.
    for step in program.steps() {
        assert_eq!(step.limit, 21.0);
    }

    // The golden die passes its own program.
    let mut golden = Ate::noiseless(MemoryDevice::nominal());
    assert_eq!(program.screen(&mut golden), Bin::Good);
    assert_eq!(
        golden.ledger().measurements(),
        program.steps().len() as u64,
        "production economics: one measurement per step"
    );

    // A healthy lot yields mostly good parts.
    let mut rng = StdRng::seed_from_u64(503);
    let mut testers: Vec<Ate> = Lot::default()
        .sample_dies(&mut rng, 40)
        .into_iter()
        .map(|die| Ate::noiseless(MemoryDevice::new(die)))
        .collect();
    let (good, total) = program.screen_batch(testers.iter_mut());
    assert_eq!(total, 40);
    assert!(good >= 30, "healthy lot yield {good}/{total}");
}

#[test]
fn weakness_analysis_explains_the_found_worst_case() {
    let mut ate = Ate::new(MemoryDevice::nominal());
    let mut rng = StdRng::seed_from_u64(504);
    let comparison = Comparison::run(&mut ate, &quick_config(), &mut rng);
    let worst = comparison.optimization.database.worst().expect("found");

    let analyzer = WeaknessAnalyzer::new();
    let march_report =
        analyzer.analyze(&Test::deterministic("march", march::march_c_minus(64)));
    let worst_report = analyzer.analyze(&worst.test);
    assert!(
        worst_report.proximity > march_report.proximity,
        "the found worst case must out-score the benign baseline: {} vs {}",
        worst_report.proximity,
        march_report.proximity
    );
    assert!(worst_report.dominant_cause().is_some());
}

#[test]
fn multi_param_campaign_through_public_api() {
    use cichar::core::learning::LearningConfig;
    use cichar::core::multi::{AnalysisTask, MultiParamCampaign};
    use cichar::core::optimization::OptimizationConfig;
    use cichar::genetic::GaConfig;
    use cichar::neural::TrainConfig;

    let campaign = MultiParamCampaign::new(
        AnalysisTask::data_sheet(),
        LearningConfig {
            tests_per_round: 40,
            max_rounds: 1,
            committee_size: 2,
            hidden: vec![8],
            train: TrainConfig {
                epochs: 60,
                ..TrainConfig::default()
            },
            ..LearningConfig::default()
        },
        OptimizationConfig {
            ga: GaConfig {
                population_size: 10,
                islands: 1,
                generations: 4,
                target_fitness: Some(1.0),
                ..GaConfig::default()
            },
            ..OptimizationConfig::default()
        },
    )
    .with_screening(100, 4);
    let mut ate = Ate::noiseless(MemoryDevice::nominal());
    let mut rng = StdRng::seed_from_u64(505);
    let report = campaign.run(&mut ate, &mut rng);
    assert_eq!(report.worst_case_suite().len(), 3);
    assert_eq!(report.total_measurements, ate.ledger().measurements());
}
