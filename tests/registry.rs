//! Registry edge cases that cross crate boundaries: schema persistence
//! through the artifact store, and the wafer journal's refusal to resume
//! a campaign under a different device backend.
//!
//! (The registry's own parse/validate/create edge cases live as unit
//! tests in `cichar-dut`; this file covers the seams.)

use cichar::ate::{AteConfig, MeasuredParam};
use cichar::core::db::{load_artifact, save_artifact};
use cichar::core::dsv::SearchStrategy;
use cichar::core::wafer::{WaferConfig, WaferRunner};
use cichar::dut::{BackendSchema, DeviceSpec, Lot, Registry};
use cichar::exec::ExecPolicy;
use cichar::patterns::{random, ConditionSpace, Test};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;

fn suite(n: usize) -> Vec<Test> {
    let space = ConditionSpace::default();
    random::random_suite(&mut StdRng::seed_from_u64(0x9E61), &space, n)
}

#[test]
fn every_schema_round_trips_through_the_artifact_store() {
    let registry = Registry::builtin();
    let dir = std::env::temp_dir().join("cichar_registry_schema_roundtrip");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    for schema in registry.schemas() {
        let path = dir.join(format!("{}.json", schema.name));
        save_artifact(schema, &path).expect("schema serializes");
        let loaded: BackendSchema = load_artifact(&path).expect("schema deserializes");
        assert_eq!(&loaded, schema, "schema for `{}` mutated in flight", schema.name);
        // A reloaded schema still validates overrides exactly like the
        // original — persistence must not loosen the parameter ranges.
        for spec in &loaded.params {
            assert!(loaded.resolve(&[(spec.name.to_string(), spec.default)]).is_ok());
            let err = loaded
                .resolve(&[(spec.name.to_string(), spec.max + 1.0)])
                .expect_err("out-of-range override still rejected after reload");
            assert!(err.contains(spec.name.as_str()), "error names the parameter: {err}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_registration_is_rejected_and_builtin_creates_validate() {
    let mut registry = Registry::builtin();
    let schema = registry.schema("memory").expect("memory registered").clone();
    let err = registry
        .register(schema, |_| Registry::builtin().create("memory", &[]).unwrap())
        .expect_err("second `memory` registration must fail");
    assert!(err.contains("memory"), "error names the duplicate: {err}");

    let registry = Registry::builtin();
    assert!(registry.create("vaporware", &[]).is_err(), "unknown backend rejected");
    assert!(
        registry.create("netlist", &[("levels".into(), 1e9)]).is_err(),
        "out-of-range parameter rejected at create"
    );
    assert!(
        registry.create("netlist", &[("no_such_knob".into(), 1.0)]).is_err(),
        "unknown parameter rejected at create"
    );
}

#[test]
fn device_specs_round_trip_through_display() {
    for raw in ["memory", "netlist", "netlist:levels=16,jitter=0.2", "logic:depth=12"] {
        let spec: DeviceSpec = raw.parse().expect("valid spec");
        let reparsed: DeviceSpec = spec.to_string().parse().expect("display re-parses");
        assert_eq!(spec, reparsed, "round trip for `{raw}`");
        Registry::builtin()
            .create_from_spec(&spec)
            .unwrap_or_else(|e| panic!("spec `{raw}` creates: {e}"));
    }
}

/// The journal fingerprint includes the device descriptor: an interrupted
/// `memory` campaign must refuse to resume under `logic` (or even under
/// `memory` with different parameters) with `InvalidData`, while the
/// matching runner resumes cleanly.
#[test]
fn journal_resume_refuses_a_different_backend() {
    let registry = Registry::builtin();
    let dir = std::env::temp_dir().join("cichar_registry_journal_xbackend");
    let _ = std::fs::remove_dir_all(&dir);

    let config = WaferConfig {
        sites: 2,
        chunk_touchdowns: 1,
        journal_dir: Some(dir.clone()),
        ..WaferConfig::default()
    };
    let runner_for = |name: &str| {
        WaferRunner::new(MeasuredParam::DataValidTime)
            .with_config(config.clone())
            .with_device(registry.create(name, &[]).unwrap())
    };

    let mut rng = StdRng::seed_from_u64(0xD1E);
    let dies = Lot::default().sample_dies(&mut rng, 4);
    let tests = suite(3);
    let ate_config = AteConfig::default();
    let strategy = SearchStrategy::SearchUntilTrip;

    // Interrupt a journaled memory campaign after its first chunk (4 dies
    // at 2 sites and 1 touchdown/chunk = 2 chunks, so 1 is incomplete).
    let committed = runner_for("memory")
        .run_prefix(&ate_config, &dies, &tests, strategy, ExecPolicy::serial(), 1)
        .expect("prefix run commits");
    assert_eq!(committed, 1, "campaign interrupted mid-journal");

    // A different backend must not adopt the orphaned journal.
    let err = runner_for("logic")
        .resume(&ate_config, &dies, &tests, strategy, ExecPolicy::serial())
        .expect_err("cross-backend resume must fail");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData, "got: {err}");

    // Same family, different parameters: also a different campaign (the
    // descriptor carries the overrides).
    let err = WaferRunner::new(MeasuredParam::DataValidTime)
        .with_config(config.clone())
        .with_device(registry.create("netlist", &[("levels".into(), 16.0)]).unwrap())
        .resume(&ate_config, &dies, &tests, strategy, ExecPolicy::serial())
        .expect_err("parameterized backend is a different campaign too");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData, "got: {err}");

    // The rightful owner resumes and completes.
    let (report, _ledger, stats) = runner_for("memory")
        .resume(&ate_config, &dies, &tests, strategy, ExecPolicy::serial())
        .expect("matching backend resumes");
    assert!(stats.chunks_replayed >= 1, "resume replayed the committed prefix");
    assert_eq!(report.dies as usize, dies.len());

    let _ = std::fs::remove_dir_all(&dir);
}
