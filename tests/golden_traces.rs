//! Golden-trace locks on the observability layer: seeded mini versions of
//! the fig. 2, fig. 3 and Table 1 campaigns are replayed through a
//! [`RingBufferSink`], normalized (timestamps stripped), and diffed against
//! checked-in JSONL fixtures under `tests/goldens/`.
//!
//! Two properties are locked down at once:
//!
//! * **Thread invariance** — `threads = 1` and `threads = 8` must produce
//!   byte-identical normalized event streams and equal metrics snapshots,
//!   because spans are absorbed in input-index order with sequence numbers
//!   assigned at absorb time.
//! * **Stream stability** — the stream matches the checked-in golden, so
//!   any change to event taxonomy, ordering, or the machinery that emits
//!   them shows up as a reviewable fixture diff.
//!
//! Regenerate fixtures after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test golden_traces
//! ```

use cichar::ate::{Ate, AteConfig, MeasuredParam, ParallelAte};
use cichar::core::compare::{CompareConfig, Comparison};
use cichar::core::dsv::{MultiTripRunner, SearchStrategy};
use cichar::core::learning::LearningConfig;
use cichar::core::optimization::OptimizationConfig;
use cichar::dut::MemoryDevice;
use cichar::exec::ExecPolicy;
use cichar::genetic::GaConfig;
use cichar::neural::TrainConfig;
use cichar::patterns::{random, ConditionSpace, Test};
use cichar::trace::{normalize_jsonl, MetricsSnapshot, RingBufferSink, TimedTracer, TraceSink, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

/// Seed shared by all golden campaigns (distinct from the repro binaries'
/// seed so fixture churn never couples to `EXPERIMENTS.md` numbers).
const GOLD_SEED: u64 = 0x601D_DA7E;

/// Runs `campaign` against a fresh ring-buffer tracer and returns the
/// normalized JSONL stream plus the final metrics snapshot.
fn capture(campaign: impl FnOnce(&Tracer)) -> (String, MetricsSnapshot) {
    let sink = Arc::new(RingBufferSink::unbounded());
    let tracer = Tracer::new(sink.clone());
    campaign(&tracer);
    let mut out = String::new();
    for record in sink.records() {
        out.push_str(&serde_json::to_string(&record.normalized()).expect("record serializes"));
        out.push('\n');
    }
    (out, tracer.metrics())
}

/// The invariant harness: runs `campaign` at 1 and 8 threads, asserts the
/// normalized streams and metrics snapshots are identical, then diffs the
/// stream against `tests/goldens/<name>.jsonl` (or regenerates it when
/// `UPDATE_GOLDENS=1`).
fn check_golden(name: &str, campaign: impl Fn(ExecPolicy, &Tracer)) {
    let (serial, serial_metrics) = capture(|t| campaign(ExecPolicy::with_threads(1), t));
    let (threaded, threaded_metrics) = capture(|t| campaign(ExecPolicy::with_threads(8), t));
    assert_eq!(
        serial, threaded,
        "{name}: threads=1 and threads=8 normalized event streams must be byte-identical"
    );
    assert_eq!(
        serial_metrics, threaded_metrics,
        "{name}: metrics snapshots must merge identically across thread counts"
    );
    assert!(
        !serial.is_empty(),
        "{name}: the campaign must actually emit events"
    );
    // And at the environment's width: CI replays this suite under a
    // CICHAR_THREADS ∈ {1, 4} matrix, so the same fixtures lock every
    // deployed parallelism, not just the two pinned widths above.
    let (env_stream, _) = capture(|t| campaign(ExecPolicy::from_env(), t));
    assert_eq!(
        env_stream, serial,
        "{name}: the stream must not depend on CICHAR_THREADS"
    );

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.jsonl"));
    if std::env::var("UPDATE_GOLDENS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("goldens dir")).expect("create goldens dir");
        std::fs::write(&path, &serial).expect("write golden fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\nregenerate with: UPDATE_GOLDENS=1 cargo test --test golden_traces",
            path.display()
        )
    });
    // Normalize the fixture as well, so a stale timestamp in a hand-edited
    // fixture can never mask (or fake) a diff.
    assert_eq!(
        normalize_jsonl(&golden),
        serial,
        "{name}: event stream diverged from the golden fixture; if intentional, \
         regenerate with UPDATE_GOLDENS=1 cargo test --test golden_traces"
    );
}

fn gold_tests(n: usize) -> Vec<Test> {
    let space = ConditionSpace::default();
    random::random_suite(&mut StdRng::seed_from_u64(GOLD_SEED), &space, n)
}

/// Mini fig. 2: search-until-trip-point over a seeded random suite on the
/// default (noisy) tester, so the golden also locks the per-test noise
/// seed-derivation rule.
#[test]
fn fig2_campaign_trace_is_golden() {
    check_golden("fig2", |policy, tracer| {
        let blueprint = ParallelAte::new(
            MemoryDevice::nominal(),
            AteConfig {
                seed: GOLD_SEED,
                ..AteConfig::default()
            },
        );
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
        tracer.phase("dsv");
        runner.run_parallel_traced(
            &blueprint,
            &gold_tests(12),
            SearchStrategy::SearchUntilTrip,
            policy,
            tracer,
        );
    });
}

/// The fig. 2 campaign again, on the registry's `netlist` backend: locks
/// the gate-level device's seeded synthesis, its trip physics *and* the
/// registry construction path into a byte-stable fixture. A drift in any
/// netlist constant, the splitmix gate draws or the schema defaults shows
/// up here as a diff.
#[test]
fn fig2_netlist_campaign_trace_is_golden() {
    check_golden("fig2_netlist", |policy, tracer| {
        let device = cichar::dut::Registry::builtin()
            .create("netlist", &[])
            .expect("netlist backend registered");
        let blueprint = ParallelAte::new(
            device,
            AteConfig {
                seed: GOLD_SEED,
                ..AteConfig::default()
            },
        );
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
        tracer.phase("dsv");
        runner.run_parallel_traced(
            &blueprint,
            &gold_tests(12),
            SearchStrategy::SearchUntilTrip,
            policy,
            tracer,
        );
    });
}

/// Mini fig. 3: the same suite measured with full-range searches and with
/// STP, as two phases of one trace.
#[test]
fn fig3_campaign_trace_is_golden() {
    check_golden("fig3", |policy, tracer| {
        let blueprint = ParallelAte::new(
            MemoryDevice::nominal(),
            AteConfig {
                seed: GOLD_SEED,
                ..AteConfig::default()
            },
        );
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
        let tests = gold_tests(8);
        tracer.phase("full_range");
        runner.run_parallel_traced(&blueprint, &tests, SearchStrategy::FullRange, policy, tracer);
        tracer.phase("stp");
        runner.run_parallel_traced(
            &blueprint,
            &tests,
            SearchStrategy::SearchUntilTrip,
            policy,
            tracer,
        );
    });
}

/// A Table 1 comparison small enough for a test but exercising all three
/// phases (march / random / nnga), including committee training (the
/// learning round measures 12 tests, comfortably above the 8 converged
/// inputs training needs) and the GA.
fn mini_table1_config() -> CompareConfig {
    CompareConfig {
        random_tests: 8,
        learning: LearningConfig {
            tests_per_round: 12,
            max_rounds: 1,
            committee_size: 2,
            hidden: vec![6],
            train: TrainConfig {
                epochs: 20,
                ..TrainConfig::default()
            },
            ..LearningConfig::default()
        },
        nn_candidates: 60,
        nn_seeds: 3,
        optimization: OptimizationConfig {
            ga: GaConfig {
                population_size: 8,
                islands: 1,
                generations: 3,
                ..GaConfig::default()
            },
            ..OptimizationConfig::default()
        },
        ..CompareConfig::default()
    }
}

/// Mini Table 1: every event family in one trace — probes, searches,
/// phase changes, committee epochs, GA generations.
#[test]
fn table1_campaign_trace_is_golden() {
    check_golden("table1", |policy, tracer| {
        let mut ate = Ate::with_config(
            MemoryDevice::nominal(),
            AteConfig {
                seed: GOLD_SEED,
                ..AteConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(GOLD_SEED);
        Comparison::run_parallel_traced(&mut ate, &mini_table1_config(), policy, &mut rng, tracer);
    });
}

/// The wall-clock timing sidecar must stay OUT of the event stream: the
/// same campaign run through a plain [`Tracer`] and through a
/// [`TimedTracer`] produces byte-identical normalized streams — only the
/// side-channel snapshot differs. This is what lets every golden fixture
/// stay valid whether or not `--timings` is on.
#[test]
fn timed_tracer_leaves_the_normalized_stream_byte_identical() {
    let run = |timed: bool| -> (String, bool) {
        let sink = Arc::new(RingBufferSink::unbounded());
        let tracer = if timed {
            TimedTracer::new(sink.clone() as Arc<dyn TraceSink>)
                .tracer()
                .clone()
        } else {
            Tracer::new(sink.clone())
        };
        let blueprint = ParallelAte::new(
            MemoryDevice::nominal(),
            AteConfig {
                seed: GOLD_SEED,
                ..AteConfig::default()
            },
        );
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
        tracer.phase("dsv");
        runner.run_parallel_traced(
            &blueprint,
            &gold_tests(12),
            SearchStrategy::SearchUntilTrip,
            ExecPolicy::with_threads(8),
            &tracer,
        );
        let mut out = String::new();
        for record in sink.records() {
            out.push_str(&serde_json::to_string(&record.normalized()).expect("record serializes"));
            out.push('\n');
        }
        let has_timings = tracer.timings().is_some_and(|t| t.spans() > 0);
        (out, has_timings)
    };

    let (plain_stream, plain_timed) = run(false);
    let (timed_stream, timed_timed) = run(true);
    assert_eq!(
        plain_stream, timed_stream,
        "arming the timing sidecar must not change a single byte of the \
         normalized event stream"
    );
    assert!(!plain_timed, "a plain tracer has no timing sidecar");
    assert!(timed_timed, "the timed tracer captured span durations");
    // And the timed stream still matches the checked-in fig2 golden.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/fig2.jsonl");
    if let Ok(golden) = std::fs::read_to_string(&path) {
        assert_eq!(
            normalize_jsonl(&golden),
            timed_stream,
            "timed stream diverged from the fig2 golden fixture"
        );
    }
}

/// The trace streams carry every event family the taxonomy defines for
/// these campaigns — a canary against silently dropping instrumentation.
#[test]
fn golden_fixtures_cover_the_event_taxonomy() {
    if std::env::var("UPDATE_GOLDENS").as_deref() == Ok("1") {
        // Regeneration runs concurrently with the campaign tests that
        // write the fixtures; check coverage on the next plain run.
        return;
    }
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    let read = |name: &str| {
        std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| {
            panic!("missing fixture {name}: {e}; run UPDATE_GOLDENS=1 cargo test --test golden_traces")
        })
    };
    let fig3 = read("fig3.jsonl");
    for event in [
        "ProbeIssued",
        "ProbeResolved",
        "SearchStarted",
        "StepTaken",
        "Bracketed",
        "SearchFinished",
        "CampaignPhaseChanged",
    ] {
        assert!(fig3.contains(event), "fig3 golden lacks {event}");
    }
    let table1 = read("table1.jsonl");
    for event in [
        "CampaignPhaseChanged",
        "CommitteeEpochFinished",
        "GaGenerationEvaluated",
    ] {
        assert!(table1.contains(event), "table1 golden lacks {event}");
    }
    for phase in ["march", "random", "nnga"] {
        assert!(
            table1.contains(&format!("\"phase\":\"{phase}\"")),
            "table1 golden lacks phase {phase}"
        );
    }
}
