//! The backend conformance battery: every registered device backend must
//! satisfy the same physical and operational contract the rest of the
//! stack assumes of `memory`.
//!
//! The battery runs against **all** builtin backends by default; set
//! `CICHAR_DEVICE=<name>` to restrict it to one (the CI matrix runs one
//! job per backend this way). Each test loops over the selected backends
//! so a failure names the offender.
//!
//! Layers covered, bottom to top:
//!
//! 1. device physics — `cichar::dut::conformance::verify_device` (bounds,
//!    single-crossing monotonicity, stress hoist, batch parity, seeded
//!    sampling, corner ordering);
//! 2. the tester — every `MeasuredParam` search brackets exactly one
//!    pass/fail transition inside its §4 characterization range, and the
//!    batched hot path is bit-identical to the scalar path;
//! 3. sessions — same seed, same probe stream;
//! 4. the parallel DSV engine — threads 1 vs 8 produce bit-identical
//!    reports and ledgers;
//! 5. fault injection — the recovery ladder's accounting identities hold
//!    for every backend, not just the one it was written against.

use cichar::ate::{Ate, AteConfig, MeasuredParam, ParallelAte, TesterFaultModel};
use cichar::core::dsv::{MultiTripRunner, SearchStrategy};
use cichar::dut::{conformance, Device, Registry};
use cichar::exec::ExecPolicy;
use cichar::patterns::{march, random, ConditionSpace, PatternFeatures, Test};
use cichar::search::{BinarySearch, Probe, RetryPolicy};
use cichar::units::ParamKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0xC0F0_2005;

/// The backends under test: `CICHAR_DEVICE` selects one, default is every
/// registered backend (each with its default parameters).
fn backends() -> Vec<(String, Device)> {
    let registry = Registry::builtin();
    let names: Vec<String> = match std::env::var("CICHAR_DEVICE") {
        Ok(name) if !name.trim().is_empty() => vec![name.trim().to_string()],
        _ => registry.names().iter().map(|n| (*n).to_string()).collect(),
    };
    names
        .into_iter()
        .map(|name| {
            let device = registry
                .create(&name, &[])
                .unwrap_or_else(|err| panic!("create {name}: {err}"));
            (name, device)
        })
        .collect()
}

fn march_test() -> Test {
    Test::deterministic("conformance_march_c-", march::march_c_minus(64))
}

fn suite(n: usize) -> Vec<Test> {
    let space = ConditionSpace::default();
    random::random_suite(&mut StdRng::seed_from_u64(SEED), &space, n)
}

#[test]
fn every_backend_passes_the_device_battery() {
    let patterns = conformance::reference_patterns();
    for (name, device) in backends() {
        conformance::verify_device(&device, &patterns)
            .unwrap_or_else(|err| panic!("backend `{name}` fails the device battery: {err}"));
    }
}

/// §4's central premise, per backend and per parameter: swept across the
/// generous characterization range with the other axes relaxed, the
/// noiseless verdict sequence crosses pass→fail (in the parameter's
/// region order) **exactly once**, and a binary search brackets that
/// crossing inside the range.
#[test]
fn trip_searches_bracket_one_crossing_inside_the_cr() {
    let test = march_test();
    for (name, device) in backends() {
        for param in MeasuredParam::ALL {
            let mut ate = Ate::noiseless(device.clone());
            let range = param.generous_range();
            let steps = 80usize;
            let verdicts: Vec<Probe> = (0..=steps)
                .map(|i| {
                    let v = range.lerp(i as f64 / steps as f64);
                    ate.measure(&test, param, v)
                })
                .collect();
            assert!(
                verdicts.iter().all(|p| p.is_valid()),
                "`{name}` {param}: noiseless sweep produced invalid probes"
            );
            // Orient so the sweep should read pass…pass fail…fail.
            let oriented: Vec<bool> = match param.region_order().toward_fail() {
                f if f > 0.0 => verdicts.iter().map(|p| p.is_pass()).collect(),
                _ => verdicts.iter().rev().map(|p| p.is_pass()).collect(),
            };
            let transitions = oriented.windows(2).filter(|w| w[0] != w[1]).count();
            assert_eq!(
                transitions, 1,
                "`{name}` {param}: expected exactly one pass/fail crossing \
                 across {:?}, saw {transitions}",
                range
            );
            assert!(
                oriented[0] && !oriented[steps],
                "`{name}` {param}: crossing not oriented pass→fail toward the fail region"
            );

            let outcome = BinarySearch::new(range, param.resolution())
                .run(param.region_order(), ate.trip_oracle(&test, param));
            assert!(
                outcome.converged,
                "`{name}` {param}: binary search did not bracket a trip point"
            );
            let trip = outcome.trip_point.expect("converged search carries a trip point");
            assert!(
                range.contains(trip),
                "`{name}` {param}: trip {trip} outside CR {range:?}"
            );
        }
    }
}

/// The batched hot path must be bit-identical to the scalar path for
/// every backend — same verdicts, same ledger — under the default noisy
/// configuration (drift and RNG streams advance identically).
#[test]
fn batched_hot_path_matches_scalar_probes() {
    let test = march_test();
    let pattern = test.pattern();
    let features = PatternFeatures::extract(&pattern);
    let cycles = pattern.len() as u64;
    let base = MeasuredParam::DataValidTime.relax_forces().to_vec();
    let values: Vec<f64> = (0..48).map(|i| 20.0 + 0.35 * f64::from(i)).collect();
    for (name, device) in backends() {
        let config = AteConfig {
            seed: SEED,
            ..AteConfig::default()
        };
        let mut scalar = Ate::with_config(device.clone(), config.clone());
        let scalar_verdicts: Vec<Probe> = values
            .iter()
            .map(|&v| {
                let mut forces = base.clone();
                forces.push((ParamKind::StrobeDelay, v));
                scalar.measure_features(&features, cycles, &test, &forces)
            })
            .collect();

        let mut batched = Ate::with_config(device.clone(), config);
        let batch = batched.measure_features_batch(
            &features,
            cycles,
            &test,
            &base,
            ParamKind::StrobeDelay,
            &values,
        );
        assert_eq!(batch, scalar_verdicts, "`{name}`: batch diverges from scalar");
        assert_eq!(
            *batched.ledger(),
            *scalar.ledger(),
            "`{name}`: batch ledger diverges from scalar"
        );
    }
}

/// Two sessions with the same seed replay the same probe stream — noise,
/// drift and fault RNGs are all functions of the config seed, never of
/// wall-clock state, for every backend.
#[test]
fn seeded_sessions_reproduce_probe_streams() {
    let tests = suite(6);
    for (name, device) in backends() {
        let run = || {
            let mut ate = Ate::with_config(
                device.clone(),
                AteConfig {
                    seed: SEED,
                    ..AteConfig::default()
                },
            );
            let mut probes = Vec::new();
            for test in &tests {
                for param in MeasuredParam::ALL {
                    let mid = param.generous_range().midpoint();
                    probes.push(ate.measure(test, param, mid));
                }
            }
            (probes, *ate.ledger())
        };
        let (first, first_ledger) = run();
        let (second, second_ledger) = run();
        assert_eq!(first, second, "`{name}`: seeded sessions diverge");
        assert_eq!(first_ledger, second_ledger, "`{name}`: seeded ledgers diverge");
    }
}

/// A mini DSV campaign through the parallel engine is bit-identical at 1
/// and 8 worker threads: same report (entries in test order, same trip
/// points, same statuses) and same merged ledger.
#[test]
fn mini_dsv_is_thread_count_invariant() {
    let tests = suite(8);
    for (name, device) in backends() {
        let blueprint = ParallelAte::new(
            device.clone(),
            AteConfig {
                seed: SEED,
                ..AteConfig::default()
            },
        );
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime);
        let (report_1, ledger_1) = runner.run_parallel(
            &blueprint,
            &tests,
            SearchStrategy::SearchUntilTrip,
            ExecPolicy::with_threads(1),
        );
        let (report_8, ledger_8) = runner.run_parallel(
            &blueprint,
            &tests,
            SearchStrategy::SearchUntilTrip,
            ExecPolicy::with_threads(8),
        );
        assert_eq!(report_1, report_8, "`{name}`: DSV report depends on thread count");
        assert_eq!(ledger_1, ledger_8, "`{name}`: merged ledger depends on thread count");
        assert_eq!(report_1.entries.len(), tests.len(), "`{name}`: entry per test");
    }
}

/// Fault injection and recovery accounting hold per backend: the fault
/// columns partition the injected total, quarantine agrees between the
/// ledger and the report, and quarantined entries never carry trip
/// points.
#[test]
fn fault_recovery_accounting_holds_for_every_backend() {
    let tests = suite(16);
    for (name, device) in backends() {
        let mut ate = Ate::with_config(
            device.clone(),
            AteConfig {
                faults: TesterFaultModel::transient(0.02, 0.01),
                seed: SEED,
                ..AteConfig::default()
            },
        );
        let runner = MultiTripRunner::new(MeasuredParam::DataValidTime)
            .with_recovery(RetryPolicy::new(4, 50.0).with_vote(2, 3));
        let report = runner.run(&mut ate, &tests, SearchStrategy::SearchUntilTrip);

        let ledger = ate.ledger();
        assert!(ledger.injected_faults() > 0, "`{name}`: rates high enough to inject");
        assert_eq!(
            ledger.injected_faults(),
            ledger.dropouts() + ledger.flips() + ledger.stuck_probes() + ledger.aborts(),
            "`{name}`: fault columns must partition the injected total"
        );
        assert_eq!(
            ledger.quarantined(),
            report.quarantined() as u64,
            "`{name}`: ledger and report disagree on quarantine"
        );
        for entry in report.quarantined_entries() {
            assert_eq!(
                entry.trip_point, None,
                "`{name}`: quarantined entry {} carries a trip point",
                entry.test_name
            );
        }
        // Whatever recovered must have cost retries.
        if report.recovered() > 0 {
            assert!(ledger.retries() > 0, "`{name}`: recovery without retries");
        }
    }
}
