//! # cichar — computational-intelligence device characterization
//!
//! A from-scratch Rust reproduction of *"Computational Intelligence
//! Characterization Method of Semiconductor Device"* (Liau &
//! Schmitt-Landsiedel, DATE 2005): multiple-trip-point characterization,
//! the search-until-trip-point algorithm, and neural-network + fuzzy +
//! genetic-algorithm worst-case test generation — running against a
//! simulated 140 nm-class memory device on a simulated industrial ATE.
//!
//! This crate is the umbrella: it re-exports every workspace crate under
//! one namespace. Depend on the individual `cichar-*` crates if you only
//! need one layer.
//!
//! | module | contents |
//! |---|---|
//! | [`units`] | typed quantities (ns, V, MHz, degC), ranges, axes |
//! | [`patterns`] | test vectors, ALPG programs, March/random generators, stress features |
//! | [`dut`] | the behavioral device model and process variation |
//! | [`ate`] | the tester simulator: oracles, ledger, noise, drift, shmoo |
//! | [`search`] | linear / binary / successive-approximation / search-until-trip-point |
//! | [`exec`] | deterministic parallel fan-out: thread policy, indexed par-map, seed derivation |
//! | [`neural`] | MLPs, committees with voting, learnability checks |
//! | [`fuzzy`] | membership functions, Mamdani inference, WCR coding |
//! | [`genetic`] | the two-species multi-population GA |
//! | [`core`] | the paper's schemes: DSV, WCR, learning, optimization, Table 1 |
//! | [`trace`] | structured tracing: events, metrics registry, run manifests, span timing |
//! | [`report`] | trace analytics: search anatomy, Perfetto export, manifest diff gate |
//!
//! # Quickstart
//!
//! Measure a trip point the way fig. 1 does:
//!
//! ```
//! use cichar::ate::{Ate, MeasuredParam};
//! use cichar::dut::MemoryDevice;
//! use cichar::patterns::{march, Test};
//! use cichar::search::BinarySearch;
//!
//! let mut ate = Ate::noiseless(MemoryDevice::nominal());
//! let test = Test::deterministic("march_c-", march::march_c_minus(64));
//! let param = MeasuredParam::DataValidTime;
//! let outcome = BinarySearch::new(param.generous_range(), param.resolution())
//!     .run(param.region_order(), ate.trip_oracle(&test, param));
//! let t_dq = outcome.trip_point.expect("trip point in range");
//! assert!(t_dq > 20.0, "March leaves margin to the 20 ns spec");
//! ```
//!
//! Run the examples for the full flows:
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example multi_trip_point
//! cargo run --release --example shmoo_plot
//! cargo run --release --example worst_case_hunt
//! cargo run --release --example frequency_characterization
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cichar_ate as ate;
pub use cichar_bench as bench;
pub use cichar_core as core;
pub use cichar_dut as dut;
pub use cichar_exec as exec;
pub use cichar_fuzzy as fuzzy;
pub use cichar_genetic as genetic;
pub use cichar_neural as neural;
pub use cichar_patterns as patterns;
pub use cichar_report as report;
pub use cichar_search as search;
pub use cichar_trace as trace;
pub use cichar_units as units;
