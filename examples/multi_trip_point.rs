//! Multiple-trip-point characterization (§3): measure the `T_DQ` trip
//! point of the deterministic suite plus many random tests and show how
//! test-dependent the "specification" really is — fig. 2's message.
//!
//! ```text
//! cargo run --release --example multi_trip_point
//! cargo run --release --example multi_trip_point -- --device netlist
//! ```

use cichar::ate::{Ate, MeasuredParam};
use cichar::core::dsv::{MultiTripRunner, SearchStrategy};
use cichar::core::report::render_multi_trip;
use cichar::core::wcr::CharacterizationObjective;
use cichar::patterns::{march, random, Test, TestConditions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let device = cichar::dut::device_from_args(std::env::args().skip(1)).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(2);
    });
    // The test population: the full deterministic suite plus 20 random
    // tests at the same nominal corner.
    let mut rng = StdRng::seed_from_u64(2005);
    let mut tests: Vec<Test> = march::standard_suite()
        .into_iter()
        .map(|(name, p)| Test::deterministic(name, p))
        .collect();
    tests.extend((0..20).map(|_| random::random_test_at(&mut rng, TestConditions::nominal())));

    let mut ate = Ate::new(device.clone());
    let param = MeasuredParam::DataValidTime;
    let runner = MultiTripRunner::new(param);
    let report = runner.run(&mut ate, &tests, SearchStrategy::SearchUntilTrip);

    println!("multiple trip point characterization of {param}\n");
    print!("{}", render_multi_trip(&report, param.kind().unit_symbol()));

    // Eq. 1's DSV, summarized, plus the worst case per eq. 6.
    let objective = CharacterizationObjective::drift_to_minimum(20.0);
    let trip_points = report.trip_points();
    let (worst_idx, worst_wcr) = objective
        .worst_case(trip_points.iter())
        .expect("trip points converged");
    println!("\nDSV statistics:");
    println!("  reference trip point (eq. 2): {:.3} ns", report.reference_trip_point.expect("converged"));
    println!(
        "  mean {:.3} ns, std {:.3} ns",
        report.mean().expect("converged"),
        report.std_dev().expect("n >= 2")
    );
    println!(
        "  worst case: {} at {:.3} ns, WCR {:.3} ({})",
        report.entries[worst_idx].test_name,
        trip_points[worst_idx],
        worst_wcr,
        objective.classify(trip_points[worst_idx])
    );
    println!(
        "\na single pre-defined test would have reported only its own row —\n\
         the {:.1} ns band across tests is invisible to the single-trip-point flow.",
        report.spread().expect("converged")
    );
    println!("\n{}", ate.ledger());
}
