//! From characterization to manufacturing test (§1): hunt the worst case
//! with the NN+GA pipeline, derive a go/no-go production program from the
//! worst-case database, and show that it catches marginal dies the
//! deterministic-only program lets escape.
//!
//! ```text
//! cargo run --release --example production_screen
//! cargo run --release --example production_screen -- --device netlist
//! ```

use cichar::ate::{Ate, MeasuredParam};
use cichar::core::compare::{quick_config, Comparison};
use cichar::core::db::{WorstCaseDatabase, WorstCaseTest};
use cichar::core::production::{Bin, ProductionProgram};
use cichar::core::wcr::CharacterizationObjective;
use cichar::dut::Lot;
use cichar::patterns::{march, Test};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let device = cichar::dut::device_from_args(std::env::args().skip(1)).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(2);
    });
    let objective = CharacterizationObjective::drift_to_minimum(20.0);

    // Characterization phase: find the worst-case tests (figs. 4+5).
    println!("characterizing on the golden die...");
    let mut ate = Ate::new(device.clone());
    let mut rng = StdRng::seed_from_u64(9001);
    let comparison = Comparison::run(&mut ate, &quick_config(), &mut rng);
    println!("{}", comparison.render());

    // Derive the two rival production programs with the same guard band.
    let guard_band = 1.5;
    let worst_case_program = ProductionProgram::from_worst_cases(
        &comparison.optimization.database,
        MeasuredParam::DataValidTime,
        objective,
        guard_band,
        3,
    );
    let march_only = {
        let march_row = &comparison.rows[0];
        let mut db = WorstCaseDatabase::new(1);
        db.insert(WorstCaseTest {
            test: Test::deterministic("March Test", march::march_c_minus(64)),
            trip_point: march_row.t_dq,
            wcr: march_row.wcr,
            class: march_row.class,
            predicted_severity: None,
        });
        ProductionProgram::from_worst_cases(
            &db,
            MeasuredParam::DataValidTime,
            objective,
            guard_band,
            1,
        )
    };
    println!("worst-case-derived {worst_case_program}");
    println!("deterministic-only {march_only}");

    // Production phase: screen a simulated lot with both programs.
    let lot = Lot::default();
    let mut rng = StdRng::seed_from_u64(77);
    let dies = lot.sample_dies(&mut rng, 200);
    let mut march_good = 0;
    let mut wc_good = 0;
    let mut escapes = 0;
    for die in &dies {
        let mut ate_a = Ate::noiseless(device.for_die(*die));
        let mut ate_b = Ate::noiseless(device.for_die(*die));
        let a = march_only.screen(&mut ate_a);
        let b = worst_case_program.screen(&mut ate_b);
        march_good += usize::from(a.is_good());
        wc_good += usize::from(b.is_good());
        if a.is_good() && !b.is_good() {
            escapes += 1;
            if escapes <= 3 {
                if let Bin::Reject { test_name, .. } = &b {
                    println!(
                        "  escape candidate: die#{} (speed {:.3}, sens {:.3}) passes March, \
                         rejected by {test_name}",
                        die.id(),
                        die.speed(),
                        die.stress_sensitivity()
                    );
                }
            }
        }
    }
    println!("\nscreened {} dies with a {guard_band} ns guard band:", dies.len());
    println!("  deterministic-only program: {march_good} good");
    println!("  worst-case-derived program: {wc_good} good");
    println!(
        "  test escapes prevented: {escapes} dies pass the March screen but violate\n\
         the guard-banded spec under the true worst-case stimulus — §1's motivating\n\
         failure mode, closed by characterization-driven test development."
    );
}
