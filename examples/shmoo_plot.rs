//! Shmoo plotting: rasterize Vdd × strobe-delay pass/fail maps for
//! individual tests and overlay them fig. 8 style.
//!
//! ```text
//! cargo run --release --example shmoo_plot
//! cargo run --release --example shmoo_plot -- --device netlist
//! ```

use cichar::ate::{Ate, OverlayShmoo, ShmooPlot};
use cichar::patterns::{march, random, Test, TestConditions};
use cichar::search::RegionOrder;
use cichar::units::{Axis, ParamKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let device = cichar::dut::device_from_args(std::env::args().skip(1)).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(2);
    });
    let mut ate = Ate::new(device.clone());
    let x = Axis::new(ParamKind::StrobeDelay, 16.0, 36.0, 41).expect("static axis");
    let y = Axis::new(ParamKind::SupplyVoltage, 1.5, 2.1, 13).expect("static axis");

    // One test's shmoo: the classic tester artifact.
    let march = Test::deterministic("march_c-", march::march_c_minus(64));
    let plot = ShmooPlot::capture(&mut ate, &march, x.clone(), y.clone());
    println!("March C- shmoo (Y: Vdd, X: T_DQ strobe; '*' pass, '.' fail):\n");
    print!("{plot}");
    println!(
        "\npass cells: {}/{}\n",
        plot.pass_count(),
        x.len() * y.len()
    );

    // Overlay 60 random tests: the trip point becomes a *band*.
    let mut rng = StdRng::seed_from_u64(88);
    let mut overlay = OverlayShmoo::new(x.clone(), y.clone(), RegionOrder::PassBelowFail);
    overlay.add(&plot);
    for _ in 0..60 {
        let test = random::random_test_at(&mut rng, TestConditions::nominal());
        overlay.add(&ShmooPlot::capture(&mut ate, &test, x.clone(), y.clone()));
    }
    println!("61 tests overlaid ('*' all pass, '.' none pass, digits = decile):\n");
    print!("{overlay}");
    if let Some((vdd, lo, hi)) = overlay.worst_spread() {
        println!(
            "\nworst-case parameter variation: {:.2} ns at Vdd {vdd:.2} V ([{lo:.2}, {hi:.2}])",
            hi - lo
        );
    }

    // CSV export for external plotting.
    let csv = plot.to_csv();
    println!(
        "\nCSV export of the March shmoo: {} rows (write it to disk with your own I/O)",
        csv.lines().count() - 1
    );
    println!("\n{}", ate.ledger());
}
