//! Quickstart: measure one device's `T_DQ` trip point with all four
//! search algorithms and compare their measurement cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --device netlist
//! ```

use cichar::ate::{Ate, MeasuredParam};
use cichar::dut::T_DQ_SPEC;
use cichar::patterns::{march, Test};
use cichar::search::{BinarySearch, LinearSearch, SearchUntilTrip, SuccessiveApproximation};

fn main() {
    let device = cichar::dut::device_from_args(std::env::args().skip(1)).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(2);
    });
    // Load a nominal die on the tester and pick the production test.
    let mut ate = Ate::new(device.clone());
    let test = Test::deterministic("march_c-", march::march_c_minus(64));
    let param = MeasuredParam::DataValidTime;
    let range = param.generous_range();
    let resolution = param.resolution();

    println!("characterizing {param}");
    println!(
        "generous range {range} {}, resolution {resolution} {}\n",
        param.kind().unit_symbol(),
        param.kind().unit_symbol()
    );

    // 1. Linear search: the §1 brute-force baseline.
    let linear = LinearSearch::new(range, 0.25).run(param.region_order(), ate.trip_oracle(&test, param));
    report("linear (0.25 ns steps)", &linear);

    // 2. Binary search: divide and conquer.
    let binary =
        BinarySearch::new(range, resolution).run(param.region_order(), ate.trip_oracle(&test, param));
    report("binary", &binary);

    // 3. Successive approximation: the drift-tolerant ATE standard.
    let successive = SuccessiveApproximation::new(range, resolution)
        .run(param.region_order(), ate.trip_oracle(&test, param));
    report("successive approximation", &successive);

    // 4. Search-until-trip-point: the paper's §4 method, re-using the
    //    binary result as the reference trip point.
    let rtp = binary.trip_point.expect("trip point in range");
    let stp = SearchUntilTrip::new(range, param.search_factor())
        .with_refinement(resolution)
        .run(rtp, param.region_order(), ate.trip_oracle(&test, param));
    report("search-until-trip-point", &stp);

    let t_dq = stp.trip_point.expect("trip point in range");
    println!(
        "\nmeasured T_DQ = {t_dq:.2} ns vs spec {} -> {}",
        T_DQ_SPEC,
        if t_dq >= T_DQ_SPEC.value() {
            "PASS"
        } else {
            "SPEC VIOLATION"
        }
    );
    println!("tester session total: {}", ate.ledger());
}

fn report(name: &str, outcome: &cichar::search::SearchOutcome) {
    match outcome.trip_point {
        Some(tp) => println!(
            "{name:<26} trip point {tp:>7.3} ns in {:>3} measurements",
            outcome.measurements()
        ),
        None => println!("{name:<26} did not converge"),
    }
}
