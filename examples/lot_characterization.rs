//! Characterize a statistically significant device sample (§1): sampled
//! dies × environmental corner grid × the deterministic suite, with
//! population statistics and the final-spec margin.
//!
//! ```text
//! cargo run --release --example lot_characterization
//! cargo run --release --example lot_characterization -- --threads 4
//! cargo run --release --example lot_characterization -- --device netlist
//! ```
//!
//! Each die is characterized on its own tester session, so the per-die
//! sweeps fan out across `--threads` workers with bit-identical results.

use cichar::core::sample::{corner_grid, SampleCharacterization};
use cichar::core::wcr::CharacterizationObjective;
use cichar::ate::MeasuredParam;
use cichar::dut::Lot;
use cichar::patterns::{march, Test};
use cichar_bench::thread_policy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let policy = thread_policy();
    let device = cichar::dut::device_from_args(std::env::args().skip(1)).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(2);
    });
    let tests: Vec<Test> = march::standard_suite()
        .into_iter()
        .map(|(name, p)| Test::deterministic(name, p))
        .collect();
    let corners = corner_grid(&[1.65, 1.8, 1.95], &[-40.0, 25.0, 85.0]);
    let campaign = SampleCharacterization::new(
        MeasuredParam::DataValidTime,
        CharacterizationObjective::drift_to_minimum(20.0),
        corners,
    )
    .with_device(device);

    let mut rng = StdRng::seed_from_u64(1405);
    let report = campaign.run_parallel(&Lot::default(), 12, &tests, policy, &mut rng);

    println!(
        "== lot characterization: 12 dies x 9 corners x 5 tests ({} threads) ==\n",
        policy.threads()
    );
    println!("die  | speed  | sens   | worst T_DQ | WCR   | class");
    println!("-----+--------+--------+------------+-------+------");
    for d in &report.dies {
        println!(
            "{:>4} | {:.3}  | {:.3}  | {:>7.2} ns | {:.3} | {}",
            d.die.id(),
            d.die.speed(),
            d.die.stress_sensitivity(),
            d.worst_trip_point.unwrap_or(f64::NAN),
            d.worst_wcr.unwrap_or(f64::NAN),
            d.class().map_or("?".into(), |c| c.to_string()),
        );
    }
    println!("\npopulation:");
    println!(
        "  worst {:.2} ns | mean {:.2} ns | std {:.3} ns",
        report.population_worst().expect("measured"),
        report.population_mean().expect("measured"),
        report.population_std().expect("n >= 2"),
    );
    println!(
        "  spec margin (vs 20 ns): {:.2} ns | failing dies: {}",
        report.spec_margin().expect("measured"),
        report.failing_dies().len()
    );
    println!(
        "  total measurements: {} (search-until-trip-point across the whole campaign)",
        report.total_measurements
    );
    if let Some(spec) = report.suggest_spec(3.0) {
        println!(
            "\nsuggested data-sheet limit (worst case - 3 sigma): T_DQ >= {spec:.2} ns\n\
             (the paper's \"define the final device specification\" step)"
        );
    }
}
