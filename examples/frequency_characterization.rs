//! §4's worked example, in the eq. (3) orientation: characterize the
//! maximum operating frequency over the generous range S1 = 80 MHz to
//! S2 = 130 MHz, then demonstrate the eq. (4) orientation on `Vdd_min`.
//!
//! ```text
//! cargo run --release --example frequency_characterization
//! cargo run --release --example frequency_characterization -- --device netlist
//! ```

use cichar::ate::{Ate, MeasuredParam};
use cichar::core::dsv::{MultiTripRunner, SearchStrategy};
use cichar::core::wcr::CharacterizationObjective;
use cichar::patterns::{march, random, Test, TestConditions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let device = cichar::dut::device_from_args(std::env::args().skip(1)).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(2);
    });
    let mut rng = StdRng::seed_from_u64(80);
    let mut tests: Vec<Test> = march::standard_suite()
        .into_iter()
        .map(|(name, p)| Test::deterministic(name, p))
        .collect();
    tests.extend((0..12).map(|_| random::random_test_at(&mut rng, TestConditions::nominal())));

    // --- eq. (3): pass region below the fail region (f_max) ---
    let mut ate = Ate::new(device.clone());
    let param = MeasuredParam::MaxFrequency;
    println!(
        "== f_max characterization (eq. 3 orientation: {}) ==",
        param.region_order()
    );
    println!(
        "generous range {} MHz (the paper's S1 = 80, S2 = 130, CR = 50)\n",
        param.generous_range()
    );
    let report = MultiTripRunner::new(param).run(&mut ate, &tests, SearchStrategy::SearchUntilTrip);
    for entry in &report.entries {
        match entry.trip_point {
            Some(tp) => println!(
                "  {:<20} f_max {tp:>7.2} MHz  ({} measurements)",
                entry.test_name, entry.measurements
            ),
            None => println!("  {:<20} did not converge", entry.test_name),
        }
    }
    // Specification check: does every test keep the device above the
    // 100 MHz operating point?
    let objective = CharacterizationObjective::drift_to_maximum(100.0);
    let worst = report.min().expect("converged");
    println!(
        "\n  worst f_max = {worst:.2} MHz; at the 100 MHz spec the margin-consuming\n\
         WCR (eq. 5 with the spec as reference) is {:.3} -> {}",
        100.0 / worst,
        if worst >= 100.0 { "device holds spec for every test" } else { "SPEC VIOLATION" }
    );
    let _ = objective;

    // --- eq. (4): pass region above the fail region (Vdd_min) ---
    let param = MeasuredParam::MinVoltage;
    println!(
        "\n== Vdd_min characterization (eq. 4 orientation: {}) ==\n",
        param.region_order()
    );
    let report = MultiTripRunner::new(param).run(&mut ate, &tests, SearchStrategy::SearchUntilTrip);
    for entry in &report.entries {
        if let Some(tp) = entry.trip_point {
            println!("  {:<20} vdd_min {tp:>6.3} V", entry.test_name);
        }
    }
    println!(
        "\n  vdd_min band across tests: [{:.3}, {:.3}] V — the same STP machinery\n\
         works in both region orientations.",
        report.min().expect("converged"),
        report.max().expect("converged")
    );
    println!("\n{}", ate.ledger());
}
