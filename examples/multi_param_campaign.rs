//! Multi-parameter campaign (§5): one NN + GA pipeline per data-sheet
//! parameter, merged into a final worst-case suite "covering all
//! considered fitness variables" — with a fuzzy weakness analysis of each
//! finding.
//!
//! ```text
//! cargo run --release --example multi_param_campaign
//! cargo run --release --example multi_param_campaign -- --threads 4
//! cargo run --release --example multi_param_campaign -- --trace campaign.jsonl --manifest campaign.json
//! cargo run --release --example multi_param_campaign -- --device netlist
//! ```
//!
//! Each parameter's GA fitness evaluation fans out across `--threads`
//! workers; the learning rounds stay on the shared session.

use cichar::ate::Ate;
use cichar::core::analysis::WeaknessAnalyzer;
use cichar::core::learning::LearningConfig;
use cichar::core::multi::{AnalysisTask, MultiParamCampaign};
use cichar::core::optimization::OptimizationConfig;
use cichar::genetic::GaConfig;
use cichar::neural::TrainConfig;
use cichar::trace::RunManifest;
use cichar_bench::{thread_policy, trace_outputs};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let device = cichar::dut::device_from_args(std::env::args().skip(1)).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(2);
    });
    let policy = thread_policy();
    let outputs = trace_outputs();
    let tracer = outputs.tracer();
    let campaign = MultiParamCampaign::new(
        AnalysisTask::data_sheet(),
        LearningConfig {
            tests_per_round: 80,
            max_rounds: 2,
            committee_size: 3,
            hidden: vec![12],
            train: TrainConfig {
                epochs: 150,
                ..TrainConfig::default()
            },
            ..LearningConfig::default()
        },
        OptimizationConfig {
            ga: GaConfig {
                population_size: 20,
                islands: 2,
                generations: 15,
                target_fitness: Some(1.0),
                ..GaConfig::default()
            },
            ..OptimizationConfig::default()
        },
    )
    .with_screening(500, 12);

    let mut ate = Ate::new(device.clone());
    let mut rng = StdRng::seed_from_u64(3);
    println!(
        "running the figs. 4+5 pipeline once per data-sheet parameter ({} threads)...\n",
        policy.threads()
    );
    let report = campaign.run_parallel_traced(&mut ate, policy, &mut rng, &tracer);
    print!("{report}");

    println!("\nfinal worst-case suite with fuzzy weakness analysis (§5):");
    let analyzer = WeaknessAnalyzer::new();
    for (param, wc) in report.worst_case_suite() {
        println!("\n--- {param}: {} ---", wc);
        print!("{}", analyzer.analyze(&wc.test));
    }
    println!(
        "\nfindings requiring detailed analysis: {}",
        if report.has_findings() { "YES" } else { "none" }
    );

    if outputs.enabled() {
        let manifest = RunManifest::new("multi_param_campaign", 3, policy.threads())
            .with_config("parameters", report.worst_case_suite().len())
            .capture(&tracer);
        println!("\n{}", manifest.render());
        if let Err(err) = outputs.commit(&tracer, &manifest) {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
