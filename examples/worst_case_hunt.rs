//! The full intelligent characterization pipeline (figs. 4 + 5):
//! learn the device from random tests, screen candidates with the
//! fuzzy-neural generator, optimize with the two-species GA, and print the
//! Table 1 comparison plus the worst-case database.
//!
//! ```text
//! cargo run --release --example worst_case_hunt
//! cargo run --release --example worst_case_hunt -- --fault-rate 0.02
//! cargo run --release --example worst_case_hunt -- --trace hunt.jsonl --manifest hunt.json --timings
//! cargo run --release --example worst_case_hunt -- --device netlist
//! ```

use cichar::ate::{Ate, AteConfig};
use cichar::bench::{robustness, thread_policy, trace_outputs};
use cichar::core::compare::{quick_config, Comparison};
use cichar::core::report::render_timing_diagram;
use cichar::dut::T_DQ_SPEC;
use cichar::trace::RunManifest;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let device = cichar::dut::device_from_args(std::env::args().skip(1)).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(2);
    });
    let robustness = robustness();
    let policy = thread_policy();
    let outputs = trace_outputs();
    let tracer = outputs.tracer();
    let mut ate = Ate::with_config(
        device.clone(),
        AteConfig {
            faults: robustness.faults,
            ..AteConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(0xDA7E);
    let mut config = quick_config();
    config.optimization.recovery = robustness.recovery;

    println!("== intelligent worst-case hunt (figs. 4-5) ==\n");
    if !robustness.faults.is_none() {
        println!(
            "injecting tester faults: {:.1}% verdict flips, {:.1}% dropouts; \
             recovery ladder {} retries\n",
            100.0 * robustness.faults.flip_rate(),
            100.0 * robustness.faults.dropout_rate(),
            robustness.recovery.map_or(0, |p| p.max_retries()),
        );
    }
    let comparison = Comparison::run_parallel_traced(&mut ate, &config, policy, &mut rng, &tracer);

    println!("learning phase:     {}", comparison.model);
    println!(
        "optimization phase: {}\n",
        comparison.optimization
    );
    println!("{}", comparison.render());

    let winner = comparison.winner();
    println!(
        "verdict: the {} provokes T_DQ = {:.2} ns (WCR {:.3}, {}),\n\
         a drift no deterministic or random test exposed.\n",
        winner.test_name, winner.t_dq, winner.wcr, winner.class
    );

    println!("worst-case database (fig. 5's final artifact):");
    print!("{}", comparison.optimization.database);
    if !comparison.optimization.database.failures().is_empty() {
        println!("\nfunctional failures found (stored separately per fig. 5):");
        for f in comparison.optimization.database.failures() {
            println!("  {f}");
        }
    }

    println!("\ntiming diagram of the found worst case (fig. 7's view):");
    print!(
        "{}",
        render_timing_diagram(winner.t_dq, T_DQ_SPEC.value(), 60.0)
    );

    // §5's fuzzy analysis of WHY the worst case is bad — the stand-in for
    // fig. 5's "analyze the potential design weaknesses … in detail".
    if let Some(worst) = comparison.optimization.database.worst() {
        println!("\nfuzzy weakness analysis of {}:", worst.test.name());
        print!(
            "{}",
            cichar::core::analysis::WeaknessAnalyzer::new().analyze(&worst.test)
        );
    }
    println!("\n{}", ate.ledger());

    if outputs.enabled() {
        let trips: Vec<f64> = comparison.rows.iter().map(|r| r.t_dq).collect();
        let mut manifest = RunManifest::new("worst_case_hunt", 0xDA7E, policy.threads())
            .with_config("random_tests", config.random_tests)
            .with_config("fault_rate", robustness.faults.flip_rate());
        if let Some(min) = trips.iter().copied().reduce(f64::min) {
            manifest = manifest
                .with_config("trip_min", min)
                .with_config("trip_max", trips.iter().copied().fold(min, f64::max));
        }
        let manifest = manifest.capture(&tracer);
        println!("\n{}", manifest.render());
        if let Err(err) = outputs.commit(&tracer, &manifest) {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
